//! Theorem 1 in action: on nested "harpoon" trees the best postorder needs
//! arbitrarily more memory than the optimal traversal.
//!
//! Run with:
//! ```text
//! cargo run --release --example harpoon_worst_case
//! ```

use treemem::gadgets::{
    harpoon_optimal_peak, harpoon_postorder_peak, harpoon_tower, harpoon_tower_postorder_peak,
};
use treemem_repro::prelude::*;

fn main() {
    let branches = 4;
    let big = 100_000;
    let eps = 1;

    println!("harpoon towers with {branches} branches, big file {big}, small file {eps}\n");
    println!(
        "{:>7} {:>9} {:>14} {:>14} {:>8}",
        "levels", "nodes", "postorder", "optimal", "ratio"
    );
    let engine = Engine::new();
    for levels in 1..=5 {
        let tree = harpoon_tower(branches, big, eps, levels);
        let plan = engine
            .plan(&EngineConfig::prebuilt(tree))
            .expect("prebuilt trees always plan");
        let (postorder, _) = plan.solve(&engine, "postorder").unwrap();
        let (optimal, _) = plan.solve(&engine, "minmem").unwrap();
        println!(
            "{levels:>7} {:>9} {:>14} {:>14} {:>8.3}",
            plan.tree().len(),
            postorder.peak,
            optimal.peak,
            postorder.peak as f64 / optimal.peak as f64
        );
        // The closed forms of the gadget module predict both the single-level
        // values and the tower postorder peak.
        assert_eq!(
            postorder.peak,
            harpoon_tower_postorder_peak(branches, big, eps, levels)
        );
        if levels == 1 {
            assert_eq!(postorder.peak, harpoon_postorder_peak(branches, big, eps));
            assert_eq!(optimal.peak, harpoon_optimal_peak(branches, big, eps));
        }
    }
    println!("\nThe ratio keeps growing with the number of levels: a postorder-based solver");
    println!("can be forced to use arbitrarily more memory than an optimal traversal");
    println!("(Theorem 1 of the paper), even though on real assembly trees the best");
    println!("postorder is usually optimal or very close to it (Table I).");
}
