//! Quickstart: build a small tree workflow by hand, run it through the
//! `engine` facade, compare the MinMemory solvers on it, and schedule an
//! out-of-core execution when the memory is too small.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use treemem::TreeBuilder;
use treemem_repro::prelude::*;

fn main() {
    // A small workflow: the root produces two files and each branch expands
    // into a large temporary file before shrinking again.  Sizes are
    // arbitrary units (think megabytes).
    let mut builder = TreeBuilder::new();
    let root = builder.add_root(0, 0);
    let left = builder.add_child(root, 10, 2);
    let left_mid = builder.add_child(left, 60, 4);
    builder.add_child(left_mid, 8, 1);
    builder.add_child(left_mid, 12, 1);
    let right = builder.add_child(root, 25, 3);
    let right_mid = builder.add_child(right, 50, 3);
    for size in [15, 18, 9] {
        builder.add_child(right_mid, size, 1);
    }
    let tree = builder.build().expect("hand-built tree is valid");

    // One engine, one plan: the tree is handed to the facade as a prebuilt
    // problem source, and every schedule below reuses the same plan.
    let engine = Engine::new();
    let plan = engine
        .plan(&EngineConfig::prebuilt(tree))
        .expect("prebuilt trees always plan");
    println!(
        "tree with {} nodes, largest single-node requirement {}",
        plan.tree().len(),
        plan.tree().max_mem_req()
    );

    // 1. MinMemory: how much main memory does an in-core execution need?
    // Solver results are cached per plan, so each solver runs exactly once.
    for solver in ["natural", "postorder", "liu", "minmem"] {
        let (result, _) = plan.solve(&engine, solver).expect("registered solver");
        println!("{solver:10} peak: {}", result.peak);
    }
    let (optimal, _) = plan.solve(&engine, "minmem").unwrap();
    let (liu, _) = plan.solve(&engine, "liu").unwrap();
    assert_eq!(optimal.peak, liu.peak);
    println!("optimal traversal      : {:?}", optimal.traversal.order());

    // 2. MinIO: with less memory than the optimum (but still enough for the
    // largest single node), how much data must be written to secondary
    // storage?  Fraction 0.0 of the way from max MemReq to the peak is the
    // hardest feasible budget.
    assert!(
        plan.tree().max_mem_req() < optimal.peak,
        "this workflow needs more than its largest node"
    );
    for policy in ["FirstFit", "LSNF"] {
        let schedule = plan
            .schedule_with(
                &engine,
                ScheduleSpec::default()
                    .policy(policy)
                    .memory(MemoryBudget::FractionOfPeak(0.0)),
            )
            .expect("memory is above the largest single-node requirement");
        println!(
            "with memory {} and policy {policy}: {} units written out in {} file(s)",
            schedule.memory_budget(),
            schedule.io_volume(),
            schedule.io_run().files_written
        );
    }

    // 3. The whole configuration round-trips through JSON, so the same run
    // can be shipped to `factor_cli` or a batch server.
    let config = EngineConfig::generated(ProblemKind::Grid2d, 400, 42)
        .with_policy("FirstFit")
        .with_memory(MemoryBudget::FractionOfPeak(0.0));
    let parsed = EngineConfig::from_json(&config.to_json()).unwrap();
    assert_eq!(parsed, config);
    let report = engine.run(&config).unwrap();
    println!(
        "\ngrid2d-400 through the facade: peak {}, I/O {} (config {})",
        report.solver_peak, report.io_volume, report.config_hash
    );
}
