//! Quickstart: build a small tree workflow by hand, compare the MinMemory
//! algorithms on it, and schedule an out-of-core execution when the memory is
//! too small.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use minio::{schedule_io, EvictionPolicy};
use treemem::liu::liu_exact;
use treemem::minmem::min_mem;
use treemem::postorder::{best_postorder, natural_postorder};
use treemem::TreeBuilder;

fn main() {
    // A small workflow: the root produces two files and each branch expands
    // into a large temporary file before shrinking again.  Sizes are
    // arbitrary units (think megabytes).
    let mut builder = TreeBuilder::new();
    let root = builder.add_root(0, 0);
    let left = builder.add_child(root, 10, 2);
    let left_mid = builder.add_child(left, 60, 4);
    builder.add_child(left_mid, 8, 1);
    builder.add_child(left_mid, 12, 1);
    let right = builder.add_child(root, 25, 3);
    let right_mid = builder.add_child(right, 50, 3);
    for size in [15, 18, 9] {
        builder.add_child(right_mid, size, 1);
    }
    let tree = builder.build().expect("hand-built tree is valid");

    println!(
        "tree with {} nodes, largest single-node requirement {}",
        tree.len(),
        tree.max_mem_req()
    );

    // 1. MinMemory: how much main memory does an in-core execution need?
    let natural = natural_postorder(&tree);
    let postorder = best_postorder(&tree);
    let liu = liu_exact(&tree);
    let minmem = min_mem(&tree);
    println!("natural postorder peak : {}", natural.peak);
    println!("best postorder peak    : {}", postorder.peak);
    println!("Liu exact optimum      : {}", liu.peak);
    println!("MinMem exact optimum   : {}", minmem.peak);
    assert_eq!(liu.peak, minmem.peak);
    println!("optimal traversal      : {:?}", minmem.traversal.order());

    // 2. MinIO: with less memory than the optimum (but still enough for the
    // largest single node), how much data must be written to secondary
    // storage?
    let memory = tree.max_mem_req();
    assert!(
        memory < minmem.peak,
        "this workflow needs more than its largest node"
    );
    for policy in [
        EvictionPolicy::FirstFit,
        EvictionPolicy::LastScheduledNodeFirst,
    ] {
        let run = schedule_io(&tree, &minmem.traversal, memory, policy)
            .expect("memory is above the largest single-node requirement");
        println!(
            "with memory {memory} and policy {policy}: {} units written out in {} file(s)",
            run.io_volume, run.files_written
        );
    }
}
