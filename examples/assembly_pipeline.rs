//! The full sparse-factorization pipeline of the paper, end to end:
//!
//! 1. generate a sparse SPD matrix (a 2-D grid Laplacian);
//! 2. compute a fill-reducing ordering (minimum degree);
//! 3. build the elimination tree, the column counts and the assembly tree
//!    (with relaxed amalgamation);
//! 4. compare the best postorder with the optimal traversal on the assembly
//!    tree;
//! 5. run the *numeric* multifrontal factorization along both traversals and
//!    verify that the measured memory matches the model.
//!
//! Run with:
//! ```text
//! cargo run --release --example assembly_pipeline
//! ```

use multifrontal::memory::per_column_model;
use multifrontal::numeric::SymbolicStructure;
use multifrontal::{instrumented_factorization, solve};
use ordering::OrderingMethod;
use sparsemat::gen::{grid2d_matrix, ProblemKind};
use symbolic::{assembly_tree_for, column_counts, elimination_tree};
use treemem::minmem::min_mem;
use treemem::postorder::best_postorder;

fn main() {
    // 1. The matrix: a 30 x 30 grid Laplacian (900 unknowns).
    let pattern = ProblemKind::Grid2d.generate(900, 42);
    println!("matrix: n = {}, nnz = {}", pattern.n(), pattern.nnz());

    // 2-3. Ordering, elimination tree, column counts, assembly tree.
    let ordering = OrderingMethod::MinimumDegree;
    let perm = ordering.order(&pattern);
    let permuted = perm.apply(&pattern);
    let etree = elimination_tree(&permuted);
    let counts = column_counts(&permuted, &etree);
    println!(
        "factor: {} nonzeros, elimination tree height {}",
        counts.iter().sum::<usize>(),
        etree.height()
    );
    for allowance in [1usize, 4, 16] {
        let assembly = assembly_tree_for(&pattern, ordering, allowance);
        println!(
            "assembly tree with allowance {allowance:2}: {} nodes (compression {:.2})",
            assembly.len(),
            assembly.compression()
        );
    }

    // 4. MinMemory on the assembly tree.
    let assembly = assembly_tree_for(&pattern, ordering, 4);
    let tree = &assembly.tree;
    let postorder = best_postorder(tree);
    let optimal = min_mem(tree);
    println!(
        "\nassembly tree ({} nodes): best postorder peak {}, optimal peak {} (ratio {:.3})",
        tree.len(),
        postorder.peak,
        optimal.peak,
        postorder.peak as f64 / optimal.peak as f64
    );

    // 5. Numeric factorization along both traversals, with instrumentation.
    let matrix = grid2d_matrix(30, 30, 42);
    let structure = SymbolicStructure::from_pattern(&matrix.pattern());
    let model = per_column_model(&structure);
    let postorder_order: Vec<usize> = best_postorder(&model).traversal.reversed().into_order();
    let optimal_order: Vec<usize> = min_mem(&model).traversal.reversed().into_order();
    let po_run = instrumented_factorization(&matrix, Some(&postorder_order)).unwrap();
    let opt_run = instrumented_factorization(&matrix, Some(&optimal_order)).unwrap();
    println!("\nnumeric multifrontal factorization (per-column fronts, peaks in matrix entries):");
    println!(
        "  best postorder : measured {} / model {}",
        po_run.measured_peak_entries, po_run.model_peak_entries
    );
    println!(
        "  optimal        : measured {} / model {}",
        opt_run.measured_peak_entries, opt_run.model_peak_entries
    );
    assert_eq!(
        po_run.measured_peak_entries as i64,
        po_run.model_peak_entries
    );
    assert_eq!(
        opt_run.measured_peak_entries as i64,
        opt_run.model_peak_entries
    );

    // And the factorization actually solves linear systems.
    let expected: Vec<f64> = (0..matrix.n()).map(|i| (i % 5) as f64).collect();
    let rhs = matrix.multiply(&expected);
    let solution = solve(&opt_run.factor, &rhs);
    let error = solution
        .iter()
        .zip(&expected)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nsolve check: max error {error:.2e}");
    assert!(error < 1e-8);
}
