//! The full sparse-factorization pipeline of the paper, end to end, through
//! the `engine` facade:
//!
//! 1. generate a sparse SPD matrix (a 2-D grid Laplacian);
//! 2. compute a fill-reducing ordering (minimum degree);
//! 3. build the elimination tree, the column counts and the assembly tree
//!    (with relaxed amalgamation) — all of which `Engine::plan` does in one
//!    call, with `Plan::reamalgamate` deriving the allowance sweep;
//! 4. compare the best postorder with the optimal traversal on the assembly
//!    tree;
//! 5. run the *numeric* multifrontal factorization along both traversals and
//!    verify that the measured memory matches the model.
//!
//! Run with:
//! ```text
//! cargo run --release --example assembly_pipeline
//! ```

use treemem_repro::prelude::*;

fn main() {
    let engine = Engine::new();

    // 1-3. Matrix, ordering, elimination tree, column counts, assembly tree:
    // one plan call; the numeric stage is enabled for step 5.
    let config = EngineConfig::generated(ProblemKind::Grid2d, 900, 42)
        .with_ordering(OrderingMethod::MinimumDegree)
        .with_amalgamation(4)
        .with_numeric(true);
    let plan = engine.plan(&config).expect("valid configuration");
    let pattern = plan.permuted_pattern().expect("matrix source");
    println!("matrix: n = {}, nnz = {}", pattern.n(), pattern.nnz());

    for allowance in [1usize, 4, 16] {
        let sibling = plan.reamalgamate(allowance).expect("matrix source");
        let assembly = sibling.assembly().expect("matrix source");
        println!(
            "assembly tree with allowance {allowance:2}: {} nodes (compression {:.2})",
            assembly.len(),
            assembly.compression()
        );
    }

    // 4. MinMemory on the assembly tree: one plan, two solvers (both cached).
    let (postorder, _) = plan.solve(&engine, "postorder").unwrap();
    let (optimal, _) = plan.solve(&engine, "minmem").unwrap();
    println!(
        "\nassembly tree ({} nodes): best postorder peak {}, optimal peak {} (ratio {:.3})",
        plan.tree().len(),
        postorder.peak,
        optimal.peak,
        postorder.peak as f64 / optimal.peak as f64
    );

    // 5. Numeric factorization along both traversals, with instrumentation:
    // `execute` runs the multifrontal Cholesky on the per-column model and
    // reports measured vs predicted peaks plus a solve check.
    println!("\nnumeric multifrontal factorization (per-column fronts, peaks in matrix entries):");
    for solver in ["postorder", "minmem"] {
        let report = plan
            .schedule_with(&engine, ScheduleSpec::default().solver(solver))
            .unwrap()
            .execute(&engine)
            .unwrap();
        let numeric = report.numeric.expect("numeric stage enabled");
        println!(
            "  {solver:10}: measured {} / model {} (factor nnz {}, solve error {:.2e})",
            numeric.measured_peak_entries,
            numeric.model_peak_entries,
            numeric.factor_nnz,
            numeric.solve_error
        );
        assert_eq!(
            numeric.measured_peak_entries as i64,
            numeric.model_peak_entries
        );
        assert!(numeric.solve_error < 1e-8);
    }

    // The whole run is also available as one serializable report.
    let report = engine.run(&config).expect("valid configuration");
    println!(
        "\nreport: config {}, stages (ordering {:.1} ms, solver {:.1} ms, numeric {:.1} ms)",
        report.config_hash,
        report.timings.ordering_seconds * 1e3,
        report.timings.solver_seconds * 1e3,
        report.timings.numeric_seconds * 1e3
    );
}
