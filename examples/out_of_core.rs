//! Out-of-core planning through the `engine` facade: when the main memory is
//! smaller than the MinMemory value, compare **every registered eviction
//! policy** (the six paper heuristics plus the cache-inspired ones) over a
//! sweep of memory sizes, and every registered solver's traversal under
//! First Fit — all from one reusable plan.
//!
//! Run with:
//! ```text
//! cargo run --release --example out_of_core
//! ```

use treemem_repro::prelude::*;

fn main() {
    // An assembly tree of a banded matrix ordered with nested dissection and
    // no amalgamation: the separators keep many contribution blocks alive at
    // once, so the optimal peak is well above the largest single front and
    // the out-of-core regime is interesting.
    let engine = Engine::new();
    let config = EngineConfig::generated(ProblemKind::Banded, 900, 17)
        .with_ordering(OrderingMethod::NestedDissection)
        .with_amalgamation(1)
        .with_solver("minmem");
    let plan = engine.plan(&config).expect("valid configuration");

    let (optimal, _) = plan.solve(&engine, "minmem").unwrap();
    println!(
        "assembly tree: {} nodes, max MemReq {}, optimal peak {}",
        plan.tree().len(),
        plan.tree().max_mem_req(),
        optimal.peak,
    );

    // Sweep the memory from the hardest feasible budget (max MemReq) towards
    // the optimal peak, for every registered policy.  The plan caches the
    // solver traversal, so each cell only pays for the simulation.
    let policies = engine.policies().names();
    println!("\nI/O volume written to secondary memory (MinMem traversal):");
    print!("{:>10}", "memory");
    for policy in &policies {
        print!("{policy:>11}");
    }
    println!("{:>11}", "divisible");
    for step in 0..5 {
        let fraction = step as f64 / 5.0;
        let mut memory = 0;
        let mut bound = 0;
        let mut volumes = Vec::with_capacity(policies.len());
        for policy in &policies {
            let schedule = plan
                .schedule_with(
                    &engine,
                    ScheduleSpec::default()
                        .policy(policy.as_str())
                        .memory(MemoryBudget::FractionOfPeak(fraction)),
                )
                .unwrap();
            memory = schedule.memory_budget();
            bound = schedule.divisible_bound();
            volumes.push(schedule.io_volume());
        }
        print!("{memory:>10}");
        for volume in volumes {
            print!("{volume:>11}");
        }
        println!("{bound:>11}");
    }

    // Compare every solver's traversal under the First Fit policy at the
    // hardest budget, as in Figure 8 of the paper.
    let lower = plan.tree().max_mem_req();
    println!("\nI/O volume at memory = max MemReq ({lower}) with First Fit:");
    for solver in engine.solvers().iter().filter(|s| s.supports(plan.tree())) {
        let schedule = plan
            .schedule_with(
                &engine,
                ScheduleSpec::default()
                    .solver(solver.name())
                    .policy("FirstFit")
                    .memory(MemoryBudget::Absolute(lower)),
            )
            .unwrap();
        println!(
            "  {:15}: {:8} units in {:4} files",
            solver.name(),
            schedule.io_volume(),
            schedule.io_run().files_written
        );
    }
}
