//! Out-of-core planning: when the main memory is smaller than the MinMemory
//! value, compare the six eviction heuristics of the paper over a sweep of
//! memory sizes and traversals.
//!
//! Run with:
//! ```text
//! cargo run --release --example out_of_core
//! ```

use minio::{divisible_lower_bound, schedule_io, ALL_POLICIES};
use ordering::OrderingMethod;
use sparsemat::gen::ProblemKind;
use symbolic::assembly_tree_for;
use treemem::liu::liu_exact;
use treemem::minmem::min_mem;
use treemem::postorder::best_postorder;

fn main() {
    // An assembly tree of a banded matrix ordered with nested dissection and
    // no amalgamation: the separators keep many contribution blocks alive at
    // once, so the optimal peak is well above the largest single front and
    // the out-of-core regime is interesting.
    let pattern = ProblemKind::Banded.generate(900, 17);
    let assembly = assembly_tree_for(&pattern, OrderingMethod::NestedDissection, 1);
    let tree = &assembly.tree;

    let postorder = best_postorder(tree);
    let liu = liu_exact(tree);
    let optimal = min_mem(tree);
    println!(
        "assembly tree: {} nodes, max MemReq {}, optimal peak {}, postorder peak {}",
        tree.len(),
        tree.max_mem_req(),
        optimal.peak,
        postorder.peak
    );

    // Sweep the memory from the hardest feasible budget (max MemReq) towards
    // the optimal peak.
    println!("\nI/O volume written to secondary memory (MinMem traversal):");
    print!("{:>10}", "memory");
    for policy in ALL_POLICIES {
        print!("{:>11}", policy.name());
    }
    println!("{:>11}", "divisible");
    let lower = tree.max_mem_req();
    for step in 0..5 {
        let memory = lower + (optimal.peak - lower) * step / 5;
        print!("{memory:>10}");
        for policy in ALL_POLICIES {
            let run = schedule_io(tree, &optimal.traversal, memory, policy).unwrap();
            print!("{:>11}", run.io_volume);
        }
        let bound = divisible_lower_bound(tree, &optimal.traversal, memory).unwrap();
        println!("{bound:>11}");
    }

    // Compare the three traversals under the First Fit policy at the hardest
    // budget, as in Figure 8 of the paper.
    println!("\nI/O volume at memory = max MemReq ({lower}) with First Fit:");
    for (name, traversal) in [
        ("best postorder", &postorder.traversal),
        ("Liu", &liu.traversal),
        ("MinMem", &optimal.traversal),
    ] {
        let run = schedule_io(tree, traversal, lower, minio::EvictionPolicy::FirstFit).unwrap();
        println!("  {name:15}: {:8} units in {:4} files", run.io_volume, run.files_written);
    }
}
