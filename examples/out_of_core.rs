//! Out-of-core planning: when the main memory is smaller than the MinMemory
//! value, compare **every registered eviction policy** (the six paper
//! heuristics plus the cache-inspired ones) over a sweep of memory sizes,
//! and every registered solver's traversal under First Fit.
//!
//! Run with:
//! ```text
//! cargo run --release --example out_of_core
//! ```

use minio::{divisible_lower_bound, schedule_io_with, PolicyRegistry};
use ordering::OrderingMethod;
use sparsemat::gen::ProblemKind;
use symbolic::assembly_tree_for;
use treemem::minmem::min_mem;
use treemem::solver::SolverRegistry;

fn main() {
    // An assembly tree of a banded matrix ordered with nested dissection and
    // no amalgamation: the separators keep many contribution blocks alive at
    // once, so the optimal peak is well above the largest single front and
    // the out-of-core regime is interesting.
    let pattern = ProblemKind::Banded.generate(900, 17);
    let assembly = assembly_tree_for(&pattern, OrderingMethod::NestedDissection, 1);
    let tree = &assembly.tree;

    let solvers = SolverRegistry::with_builtin();
    let policies = PolicyRegistry::with_builtin();
    let optimal = min_mem(tree);
    println!(
        "assembly tree: {} nodes, max MemReq {}, optimal peak {}",
        tree.len(),
        tree.max_mem_req(),
        optimal.peak,
    );

    // Sweep the memory from the hardest feasible budget (max MemReq) towards
    // the optimal peak, for every registered policy.
    println!("\nI/O volume written to secondary memory (MinMem traversal):");
    print!("{:>10}", "memory");
    for policy in policies.iter() {
        print!("{:>11}", policy.name());
    }
    println!("{:>11}", "divisible");
    let lower = tree.max_mem_req();
    for step in 0..5 {
        let memory = lower + (optimal.peak - lower) * step / 5;
        print!("{memory:>10}");
        for policy in policies.iter() {
            let run = schedule_io_with(tree, &optimal.traversal, memory, policy).unwrap();
            print!("{:>11}", run.io_volume);
        }
        let bound = divisible_lower_bound(tree, &optimal.traversal, memory).unwrap();
        println!("{bound:>11}");
    }

    // Compare every solver's traversal under the First Fit policy at the
    // hardest budget, as in Figure 8 of the paper.
    let first_fit = policies.get("FirstFit").expect("built-in policy");
    println!("\nI/O volume at memory = max MemReq ({lower}) with First Fit:");
    for solver in solvers.iter().filter(|s| s.supports(tree)) {
        let traversal = solver.solve(tree).traversal;
        let run = schedule_io_with(tree, &traversal, lower, first_fit).unwrap();
        println!(
            "  {:15}: {:8} units in {:4} files",
            solver.name(),
            run.io_volume,
            run.files_written
        );
    }
}
