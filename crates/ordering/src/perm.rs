//! Permutations in new-to-old convention.

use sparsemat::SparsePattern;

/// A permutation of `0..n` in *new-to-old* convention: `perm[k]` is the
/// original index placed at (eliminated at) position `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_to_old: Vec<usize>,
    old_to_new: Vec<usize>,
}

impl Permutation {
    /// Wrap an explicit new-to-old map.
    ///
    /// # Panics
    /// Panics if `new_to_old` is not a permutation of `0..n`.
    pub fn from_new_to_old(new_to_old: Vec<usize>) -> Self {
        let n = new_to_old.len();
        let mut old_to_new = vec![usize::MAX; n];
        for (new, &old) in new_to_old.iter().enumerate() {
            assert!(old < n, "index {old} out of range");
            assert!(old_to_new[old] == usize::MAX, "duplicate index {old}");
            old_to_new[old] = new;
        }
        Permutation {
            new_to_old,
            old_to_new,
        }
    }

    /// The identity permutation.
    pub fn identity(n: usize) -> Self {
        Permutation {
            new_to_old: (0..n).collect(),
            old_to_new: (0..n).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// Original index of the vertex at new position `k`.
    pub fn new_to_old(&self, k: usize) -> usize {
        self.new_to_old[k]
    }

    /// New position of original vertex `i`.
    pub fn old_to_new(&self, i: usize) -> usize {
        self.old_to_new[i]
    }

    /// The full new-to-old map.
    pub fn as_new_to_old(&self) -> &[usize] {
        &self.new_to_old
    }

    /// The full old-to-new map.
    pub fn as_old_to_new(&self) -> &[usize] {
        &self.old_to_new
    }

    /// Apply the permutation to a symmetric pattern (relabel vertex
    /// `perm[k]` as `k`).
    pub fn apply(&self, pattern: &SparsePattern) -> SparsePattern {
        pattern.permute(&self.new_to_old)
    }

    /// Compose with another permutation applied *after* this one:
    /// `(self.then(other))[k] = self[other[k]]`.
    pub fn then(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len());
        let new_to_old = other
            .new_to_old
            .iter()
            .map(|&mid| self.new_to_old[mid])
            .collect();
        Permutation::from_new_to_old(new_to_old)
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            new_to_old: self.old_to_new.clone(),
            old_to_new: self.new_to_old.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen::grid2d_5pt;

    #[test]
    fn identity_and_inverse() {
        let p = Permutation::identity(4);
        assert_eq!(p.len(), 4);
        assert_eq!(p.new_to_old(2), 2);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn roundtrip_maps() {
        let p = Permutation::from_new_to_old(vec![2, 0, 3, 1]);
        for k in 0..4 {
            assert_eq!(p.old_to_new(p.new_to_old(k)), k);
        }
        let inv = p.inverse();
        for k in 0..4 {
            assert_eq!(inv.new_to_old(k), p.old_to_new(k));
            assert_eq!(inv.old_to_new(k), p.new_to_old(k));
        }
    }

    #[test]
    fn composition() {
        let p = Permutation::from_new_to_old(vec![2, 0, 3, 1]);
        let q = Permutation::from_new_to_old(vec![1, 3, 0, 2]);
        let composed = p.then(&q);
        for k in 0..4 {
            assert_eq!(composed.new_to_old(k), p.new_to_old(q.new_to_old(k)));
        }
    }

    #[test]
    fn apply_keeps_the_edge_count() {
        let pattern = grid2d_5pt(3, 3);
        let p = Permutation::from_new_to_old(vec![8, 7, 6, 5, 4, 3, 2, 1, 0]);
        let permuted = p.apply(&pattern);
        assert_eq!(permuted.nnz(), pattern.nnz());
        assert!(permuted.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "duplicate index")]
    fn rejects_non_permutations() {
        Permutation::from_new_to_old(vec![0, 0, 1]);
    }
}
