//! Recursive nested dissection with BFS level-set separators.
//!
//! This is the algorithm family of MeTiS (which the paper uses through the
//! MeshPart toolbox): recursively find a small vertex separator, order the
//! two halves first and the separator last.  Separators are taken as a middle
//! BFS level from a pseudo-peripheral vertex — simpler than multilevel
//! partitioning but it produces the same kind of bushy, balanced elimination
//! trees on discretisation meshes, which is what matters for the shape of the
//! assembly trees.

use sparsemat::SparsePattern;

use crate::mindeg::minimum_degree_with_stop;
use crate::perm::Permutation;
use crate::rcm::{bfs_levels, pseudo_peripheral};

/// Subgraphs smaller than this are ordered directly with minimum degree.
const DISSECTION_CUTOFF: usize = 32;

/// Compute a nested-dissection ordering of `pattern`.
pub fn nested_dissection(pattern: &SparsePattern) -> Permutation {
    nested_dissection_with_stop(pattern, None).expect("no stop probe, cannot be cancelled")
}

/// [`nested_dissection`] with a cooperative stop probe, checked at every
/// recursion step and inside the leaf minimum-degree orderings.  Returns
/// `None` — discarding all partial work — as soon as the probe fires.
pub fn nested_dissection_with_stop(
    pattern: &SparsePattern,
    stop: Option<&dyn Fn() -> bool>,
) -> Option<Permutation> {
    let n = pattern.n();
    let mut order = Vec::with_capacity(n);
    let mut active = vec![true; n];
    let all: Vec<usize> = (0..n).collect();
    dissect(pattern, &all, &mut active, &mut order, stop)?;
    debug_assert_eq!(order.len(), n);
    Some(Permutation::from_new_to_old(order))
}

/// Recursively order the vertices of `component` (all currently active),
/// appending to `order` (separators last).  `None` means the stop probe
/// fired mid-recursion and `order` holds partial garbage.
fn dissect(
    pattern: &SparsePattern,
    component: &[usize],
    active: &mut Vec<bool>,
    order: &mut Vec<usize>,
    stop: Option<&dyn Fn() -> bool>,
) -> Option<()> {
    if let Some(probe) = stop {
        if probe() {
            return None;
        }
    }
    if component.len() <= DISSECTION_CUTOFF {
        return order_with_minimum_degree(pattern, component, order, stop);
    }

    // Split the component into its connected pieces first (a previous
    // separator may have disconnected it).
    let pieces = connected_pieces(pattern, component, active);
    if pieces.len() > 1 {
        for piece in pieces {
            dissect(pattern, &piece, active, order, stop)?;
        }
        return Some(());
    }

    // Single connected piece: find a separator from the BFS levels of a
    // pseudo-peripheral vertex.
    let start = pseudo_peripheral(pattern, component[0], active);
    let (levels, eccentricity) = bfs_levels(pattern, start, active);
    if eccentricity < 2 {
        // Dense little blob: no useful separator.
        return order_with_minimum_degree(pattern, component, order, stop);
    }
    let middle = eccentricity / 2;
    let separator: Vec<usize> = component
        .iter()
        .copied()
        .filter(|&v| levels[v] == middle)
        .collect();
    let rest: Vec<usize> = component
        .iter()
        .copied()
        .filter(|&v| levels[v] != middle)
        .collect();
    if separator.is_empty() || rest.is_empty() {
        return order_with_minimum_degree(pattern, component, order, stop);
    }

    // Deactivate the separator, recurse on what remains, then order the
    // separator itself last (with minimum degree among its own vertices).
    for &v in &separator {
        active[v] = false;
    }
    let pieces = connected_pieces(pattern, &rest, active);
    for piece in pieces {
        dissect(pattern, &piece, active, order, stop)?;
    }
    order_with_minimum_degree(pattern, &separator, order, stop)
}

/// Connected pieces of `vertices` in the subgraph induced by `active`.
fn connected_pieces(
    pattern: &SparsePattern,
    vertices: &[usize],
    active: &[bool],
) -> Vec<Vec<usize>> {
    let mut seen: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let in_set: std::collections::HashSet<usize> = vertices.iter().copied().collect();
    let mut pieces = Vec::new();
    for &start in vertices {
        if seen.contains(&start) {
            continue;
        }
        let mut piece = Vec::new();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(v) = stack.pop() {
            piece.push(v);
            for &w in pattern.neighbors(v) {
                if active[w] && in_set.contains(&w) && !seen.contains(&w) {
                    seen.insert(w);
                    stack.push(w);
                }
            }
        }
        pieces.push(piece);
    }
    pieces
}

/// Order the induced subgraph on `vertices` with minimum degree and append
/// the result (in original labels) to `order`.  `None` if the stop probe
/// fired.
fn order_with_minimum_degree(
    pattern: &SparsePattern,
    vertices: &[usize],
    order: &mut Vec<usize>,
    stop: Option<&dyn Fn() -> bool>,
) -> Option<()> {
    if vertices.len() <= 1 {
        order.extend_from_slice(vertices);
        return Some(());
    }
    // Build the induced subgraph with local labels.
    let mut local_of = std::collections::HashMap::new();
    for (local, &v) in vertices.iter().enumerate() {
        local_of.insert(v, local);
    }
    let mut edges = Vec::new();
    for (local, &v) in vertices.iter().enumerate() {
        for &w in pattern.neighbors(v) {
            if let Some(&other) = local_of.get(&w) {
                if other > local {
                    edges.push((local, other));
                }
            }
        }
    }
    let induced = SparsePattern::from_edges(vertices.len(), &edges);
    let local_perm = minimum_degree_with_stop(&induced, stop)?;
    for k in 0..vertices.len() {
        order.push(vertices[local_perm.new_to_old(k)]);
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mindeg::{fill_in, minimum_degree};
    use sparsemat::gen::{grid2d_5pt, grid3d_7pt, random_spd_pattern};

    #[test]
    fn orders_every_vertex_exactly_once() {
        for pattern in [
            grid2d_5pt(13, 11),
            grid3d_7pt(5, 5, 5),
            random_spd_pattern(250, 4.0, 3),
        ] {
            let perm = nested_dissection(&pattern);
            assert_eq!(perm.len(), pattern.n());
            let mut seen = vec![false; pattern.n()];
            for k in 0..pattern.n() {
                let v = perm.new_to_old(k);
                assert!(!seen[v]);
                seen[v] = true;
            }
        }
    }

    #[test]
    fn beats_natural_ordering_on_grids() {
        let pattern = grid2d_5pt(16, 16);
        let nd = nested_dissection(&pattern);
        let natural = Permutation::identity(pattern.n());
        assert!(fill_in(&pattern, &nd) < fill_in(&pattern, &natural));
    }

    #[test]
    fn comparable_to_minimum_degree_on_grids() {
        // Nested dissection should be in the same ballpark as minimum degree
        // on a regular grid (within a factor of 2 of fill).
        let pattern = grid2d_5pt(20, 20);
        let nd_fill = fill_in(&pattern, &nested_dissection(&pattern));
        let md_fill = fill_in(&pattern, &minimum_degree(&pattern));
        assert!(
            nd_fill < 2 * md_fill,
            "nd fill {nd_fill} vs md fill {md_fill}"
        );
    }

    #[test]
    fn handles_disconnected_graphs() {
        let pattern = SparsePattern::from_edges(80, &[(0, 1), (40, 41), (41, 42)]);
        let perm = nested_dissection(&pattern);
        assert_eq!(perm.len(), 80);
    }

    #[test]
    fn stop_probe_cancels_and_a_quiet_probe_changes_nothing() {
        let pattern = grid2d_5pt(14, 14);
        assert!(nested_dissection_with_stop(&pattern, Some(&|| true)).is_none());
        assert_eq!(
            nested_dissection_with_stop(&pattern, Some(&|| false)),
            Some(nested_dissection(&pattern))
        );
    }

    #[test]
    fn is_deterministic() {
        let pattern = grid2d_5pt(10, 10);
        assert_eq!(nested_dissection(&pattern), nested_dissection(&pattern));
    }
}
