//! # ordering — fill-reducing orderings for sparse symmetric matrices
//!
//! The shape of an assembly tree — and therefore the behaviour of the
//! MinMemory / MinIO algorithms — depends on the *elimination order* of the
//! matrix.  The paper orders its matrices with MeTiS (nested dissection) and
//! Matlab's `amd`; this crate provides from-scratch implementations of the
//! same two algorithm families plus two simpler baselines:
//!
//! * [`minimum_degree`] — a quotient-graph minimum-degree ordering with
//!   approximate degrees and element absorption (the AMD family);
//! * [`nested_dissection`] — recursive bisection with BFS level-set
//!   separators (the MeTiS family);
//! * [`rcm()`] — reverse Cuthill–McKee, a bandwidth-reducing ordering that
//!   produces chain-like elimination trees;
//! * [`natural`] — the identity ordering.
//!
//! All functions return a [`Permutation`] in *new-to-old* convention:
//! `perm[k]` is the original index of the vertex eliminated at step `k`.

pub mod dissection;
pub mod mindeg;
pub mod perm;
pub mod rcm;

pub use dissection::{nested_dissection, nested_dissection_with_stop};
pub use mindeg::{minimum_degree, minimum_degree_with_stop};
pub use perm::Permutation;
pub use rcm::rcm;

use sparsemat::SparsePattern;

/// The identity (natural) ordering.
pub fn natural(n: usize) -> Permutation {
    Permutation::identity(n)
}

/// The ordering methods compared by the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingMethod {
    /// Identity ordering.
    Natural,
    /// Minimum degree ([`minimum_degree`]).
    MinimumDegree,
    /// Nested dissection ([`nested_dissection`]).
    NestedDissection,
    /// Reverse Cuthill–McKee ([`rcm()`]).
    ReverseCuthillMcKee,
}

impl OrderingMethod {
    /// Every method, in the order used by the experiment reports.
    pub const ALL: [OrderingMethod; 4] = [
        OrderingMethod::Natural,
        OrderingMethod::MinimumDegree,
        OrderingMethod::NestedDissection,
        OrderingMethod::ReverseCuthillMcKee,
    ];

    /// Short name used in experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            OrderingMethod::Natural => "natural",
            OrderingMethod::MinimumDegree => "amd",
            OrderingMethod::NestedDissection => "nd",
            OrderingMethod::ReverseCuthillMcKee => "rcm",
        }
    }

    /// Inverse of [`OrderingMethod::name`]: resolve a report name back to the
    /// method (used by configuration parsers).
    pub fn from_name(name: &str) -> Option<OrderingMethod> {
        OrderingMethod::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Compute the ordering of `pattern` with this method.
    pub fn order(&self, pattern: &SparsePattern) -> Permutation {
        self.order_with_stop(pattern, None)
            .expect("no stop probe, cannot be cancelled")
    }

    /// [`OrderingMethod::order`] with a cooperative stop probe.  The two
    /// expensive methods (minimum degree, nested dissection) poll the probe
    /// from inside their elimination loops; the cheap ones (natural, RCM)
    /// only check it on entry.  `None` means the probe fired and the
    /// partial ordering was discarded.
    pub fn order_with_stop(
        &self,
        pattern: &SparsePattern,
        stop: Option<&dyn Fn() -> bool>,
    ) -> Option<Permutation> {
        if let Some(probe) = stop {
            if probe() {
                return None;
            }
        }
        match self {
            OrderingMethod::Natural => Some(natural(pattern.n())),
            OrderingMethod::MinimumDegree => mindeg::minimum_degree_with_stop(pattern, stop),
            OrderingMethod::NestedDissection => {
                dissection::nested_dissection_with_stop(pattern, stop)
            }
            OrderingMethod::ReverseCuthillMcKee => Some(rcm(pattern)),
        }
    }
}
