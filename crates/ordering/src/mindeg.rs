//! Quotient-graph minimum-degree ordering (the AMD family).
//!
//! The algorithm repeatedly eliminates a variable of (approximately) minimum
//! degree.  Instead of forming the fill edges explicitly — which would make
//! every step quadratic — the eliminated variables are kept as *elements*: the
//! neighbourhood of a variable is the union of its remaining variable
//! neighbours and of the variables of the elements adjacent to it, exactly as
//! in the classical quotient-graph formulation of Amestoy, Davis and Duff.
//! Degrees are maintained with the standard upper-bound approximation
//! `|A_i| + Σ_{e ∈ E_i} (|L_e| − 1)`, which is what makes the method
//! "approximate" minimum degree; elements absorbed by a new element are
//! removed so the lists stay compact.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sparsemat::SparsePattern;

use crate::perm::Permutation;

/// How many eliminations happen between two stop-probe checks.  Probes are
/// a dynamic call, so they are amortised over a batch of pivots; at typical
/// elimination rates this bounds the cancellation latency well below a
/// millisecond.
const STOP_CHECK_INTERVAL: usize = 256;

/// Compute a minimum-degree ordering of `pattern`.
///
/// Returns the elimination order in new-to-old convention.  Deterministic:
/// ties are broken by vertex index.
pub fn minimum_degree(pattern: &SparsePattern) -> Permutation {
    minimum_degree_with_stop(pattern, None).expect("no stop probe, cannot be cancelled")
}

/// [`minimum_degree`] with a cooperative stop probe, checked every 256
/// eliminations.  Returns `None` — discarding all
/// partial work — as soon as the probe reports `true`.
pub fn minimum_degree_with_stop(
    pattern: &SparsePattern,
    stop: Option<&dyn Fn() -> bool>,
) -> Option<Permutation> {
    let n = pattern.n();
    if n == 0 {
        return Some(Permutation::identity(0));
    }

    // Variable adjacency (to other variables) and element adjacency.
    let mut variable_adjacency: Vec<Vec<usize>> =
        (0..n).map(|i| pattern.neighbors(i).to_vec()).collect();
    let mut element_adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    // For every eliminated pivot p, the variables of its element L_p.
    let mut element_vars: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut eliminated = vec![false; n];
    let mut absorbed = vec![false; n];
    let mut degree: Vec<usize> = (0..n).map(|i| pattern.degree(i)).collect();

    let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
        (0..n).map(|i| Reverse((degree[i], i))).collect();
    let mut order = Vec::with_capacity(n);
    let mut stamp = vec![usize::MAX; n];

    while order.len() < n {
        if order.len() % STOP_CHECK_INTERVAL == 0 {
            if let Some(stop) = stop {
                if stop() {
                    return None;
                }
            }
        }
        // Pop the variable with the smallest (cached) degree, skipping stale
        // heap entries.
        let pivot = loop {
            let Reverse((cached_degree, candidate)) = heap.pop().expect("heap cannot be empty");
            if eliminated[candidate] || cached_degree != degree[candidate] {
                continue;
            }
            break candidate;
        };
        eliminated[pivot] = true;
        order.push(pivot);

        // Build the element L_pivot = (A_pivot ∪ ⋃_{e ∈ E_pivot} L_e) \ eliminated.
        let mark = order.len();
        let mut element: Vec<usize> = Vec::new();
        for &v in &variable_adjacency[pivot] {
            if !eliminated[v] && stamp[v] != mark {
                stamp[v] = mark;
                element.push(v);
            }
        }
        for &e in &element_adjacency[pivot] {
            if absorbed[e] {
                continue;
            }
            for &v in &element_vars[e] {
                if !eliminated[v] && stamp[v] != mark {
                    stamp[v] = mark;
                    element.push(v);
                }
            }
            // The old element is absorbed by the new one.
            absorbed[e] = true;
            element_vars[e].clear();
        }
        element.sort_unstable();

        // Update every variable of the new element.
        for &v in &element {
            // Remove variable neighbours that are covered by the new element
            // (they are reachable through it) and eliminated/absorbed ones.
            variable_adjacency[v].retain(|&w| !eliminated[w] && stamp[w] != mark);
            // Remove absorbed elements, add the new one.
            element_adjacency[v].retain(|&e| !absorbed[e]);
            element_adjacency[v].push(pivot);
            // Approximate (upper bound) external degree.
            let mut approx = variable_adjacency[v].len();
            for &e in &element_adjacency[v] {
                approx += element_vars_len(&element_vars, &element, pivot, e).saturating_sub(1);
            }
            let approx = approx.min(n - order.len());
            if approx != degree[v] {
                degree[v] = approx;
                heap.push(Reverse((approx, v)));
            }
        }
        element_vars[pivot] = element;
        variable_adjacency[pivot].clear();
        element_adjacency[pivot].clear();
    }

    Some(Permutation::from_new_to_old(order))
}

/// Length of the variable list of element `e`, taking into account that the
/// element being built (`pivot`) is not stored yet.
fn element_vars_len(
    element_vars: &[Vec<usize>],
    pending_element: &[usize],
    pivot: usize,
    e: usize,
) -> usize {
    if e == pivot {
        pending_element.len()
    } else {
        element_vars[e].len()
    }
}

/// Exact number of nonzeros of the Cholesky factor (including the diagonal)
/// for a given elimination order, computed by symbolic elimination on the
/// quotient graph.  Used to compare the quality of orderings in tests and
/// experiments (smaller is better).
pub fn fill_in(pattern: &SparsePattern, perm: &Permutation) -> usize {
    let n = pattern.n();
    assert_eq!(perm.len(), n);
    let permuted = perm.apply(pattern);
    // Symbolic elimination: reach sets via the elimination tree would be
    // cheaper, but an explicit row-merge is simple and exact; we only use it
    // on moderate sizes.
    let mut columns: Vec<Vec<usize>> = permuted.lower_columns();
    let mut total = n; // diagonal
    for j in 0..n {
        columns[j].sort_unstable();
        columns[j].dedup();
        total += columns[j].len();
        if let Some(&first) = columns[j].first() {
            // Merge the remainder of column j into its parent column (the
            // column of the smallest row index below the diagonal).
            let rest: Vec<usize> = columns[j].iter().copied().filter(|&i| i != first).collect();
            columns[first].extend(rest);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen::{grid2d_5pt, random_spd_pattern};

    #[test]
    fn orders_every_vertex_exactly_once() {
        let pattern = grid2d_5pt(7, 6);
        let perm = minimum_degree(&pattern);
        assert_eq!(perm.len(), 42);
        let mut seen = [false; 42];
        for k in 0..42 {
            let v = perm.new_to_old(k);
            assert!(!seen[v]);
            seen[v] = true;
        }
    }

    #[test]
    fn star_graph_eliminates_the_centre_late_and_without_fill() {
        // Star: vertex 0 connected to everyone else. Minimum degree must
        // eliminate leaves (degree 1) before the centre (degree n-1); the
        // centre only becomes eligible once its degree has dropped to 1, so
        // it cannot appear before position n-2, and the ordering is fill-free.
        let edges: Vec<(usize, usize)> = (1..8).map(|i| (0, i)).collect();
        let pattern = SparsePattern::from_edges(8, &edges);
        let perm = minimum_degree(&pattern);
        assert!(perm.old_to_new(0) >= 6, "centre eliminated too early");
        assert_eq!(
            fill_in(&pattern, &perm),
            2 * 8 - 1,
            "a star admits a fill-free ordering"
        );
    }

    #[test]
    fn path_graph_generates_no_fill() {
        let edges: Vec<(usize, usize)> = (0..9).map(|i| (i, i + 1)).collect();
        let pattern = SparsePattern::from_edges(10, &edges);
        let perm = minimum_degree(&pattern);
        // A path ordered by minimum degree has no fill: nnz(L) = 2n - 1.
        assert_eq!(fill_in(&pattern, &perm), 2 * 10 - 1);
    }

    #[test]
    fn beats_the_natural_ordering_on_grids() {
        let pattern = grid2d_5pt(12, 12);
        let md = minimum_degree(&pattern);
        let natural = Permutation::identity(pattern.n());
        let fill_md = fill_in(&pattern, &md);
        let fill_natural = fill_in(&pattern, &natural);
        assert!(
            fill_md < fill_natural,
            "minimum degree ({fill_md}) should beat natural ({fill_natural}) on a grid"
        );
    }

    #[test]
    fn stop_probe_cancels_and_a_quiet_probe_changes_nothing() {
        let pattern = grid2d_5pt(20, 20);
        assert!(minimum_degree_with_stop(&pattern, Some(&|| true)).is_none());
        assert_eq!(
            minimum_degree_with_stop(&pattern, Some(&|| false)),
            Some(minimum_degree(&pattern))
        );
    }

    #[test]
    fn works_on_random_patterns() {
        let pattern = random_spd_pattern(300, 4.0, 17);
        let perm = minimum_degree(&pattern);
        assert_eq!(perm.len(), 300);
        // Determinism.
        assert_eq!(perm, minimum_degree(&pattern));
    }
}
