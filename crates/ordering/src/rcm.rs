//! Reverse Cuthill–McKee ordering.
//!
//! RCM reduces the bandwidth of the matrix; as an elimination ordering it
//! produces long, chain-like elimination trees, which is a useful contrast to
//! the bushy trees of nested dissection in the experiments.

use std::collections::VecDeque;

use sparsemat::SparsePattern;

use crate::perm::Permutation;

/// Find a pseudo-peripheral vertex of the connected component containing
/// `start`: repeatedly move to a farthest vertex of minimum degree until the
/// eccentricity stops growing.
pub(crate) fn pseudo_peripheral(pattern: &SparsePattern, start: usize, active: &[bool]) -> usize {
    let mut current = start;
    let mut best_eccentricity = 0usize;
    loop {
        let (levels, eccentricity) = bfs_levels(pattern, current, active);
        if eccentricity <= best_eccentricity && best_eccentricity > 0 {
            return current;
        }
        best_eccentricity = eccentricity;
        // Farthest vertices, pick the one of minimum degree.
        let next = (0..pattern.n())
            .filter(|&v| active[v] && levels[v] == eccentricity)
            .min_by_key(|&v| (pattern.degree(v), v));
        match next {
            Some(v) if v != current => current = v,
            _ => return current,
        }
    }
}

/// BFS levels restricted to `active` vertices; unreachable vertices get
/// `usize::MAX`.  Returns the levels and the largest level reached.
pub(crate) fn bfs_levels(
    pattern: &SparsePattern,
    start: usize,
    active: &[bool],
) -> (Vec<usize>, usize) {
    let mut levels = vec![usize::MAX; pattern.n()];
    let mut queue = VecDeque::new();
    levels[start] = 0;
    queue.push_back(start);
    let mut max_level = 0;
    while let Some(v) = queue.pop_front() {
        for &w in pattern.neighbors(v) {
            if active[w] && levels[w] == usize::MAX {
                levels[w] = levels[v] + 1;
                max_level = max_level.max(levels[w]);
                queue.push_back(w);
            }
        }
    }
    (levels, max_level)
}

/// Compute the reverse Cuthill–McKee ordering of `pattern` (every connected
/// component is ordered from a pseudo-peripheral vertex, neighbours visited
/// by increasing degree, and the overall order is reversed).
pub fn rcm(pattern: &SparsePattern) -> Permutation {
    let n = pattern.n();
    let active = vec![true; n];
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for component_start in 0..n {
        if visited[component_start] {
            continue;
        }
        let start = pseudo_peripheral(pattern, component_start, &active);
        let mut queue = VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut neighbours: Vec<usize> = pattern
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&w| !visited[w])
                .collect();
            neighbours.sort_by_key(|&w| (pattern.degree(w), w));
            for w in neighbours {
                visited[w] = true;
                queue.push_back(w);
            }
        }
    }
    order.reverse();
    Permutation::from_new_to_old(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mindeg::fill_in;
    use crate::perm::Permutation;
    use sparsemat::gen::{banded, grid2d_5pt};
    use sparsemat::SparsePattern;

    /// Bandwidth of the permuted pattern: max |new(i) - new(j)| over edges.
    fn bandwidth(pattern: &SparsePattern, perm: &Permutation) -> usize {
        let mut band = 0;
        for i in 0..pattern.n() {
            for &j in pattern.neighbors(i) {
                let a = perm.old_to_new(i);
                let b = perm.old_to_new(j);
                band = band.max(a.abs_diff(b));
            }
        }
        band
    }

    #[test]
    fn orders_every_vertex() {
        let pattern = grid2d_5pt(6, 5);
        let perm = rcm(&pattern);
        assert_eq!(perm.len(), 30);
    }

    #[test]
    fn reduces_bandwidth_of_a_shuffled_band_matrix() {
        // Take a banded matrix, shuffle it, and check RCM recovers a small
        // bandwidth.
        let base = banded(40, 2);
        let shuffle = Permutation::from_new_to_old((0..40).map(|i| (i * 17) % 40).collect());
        let shuffled = shuffle.apply(&base);
        let recovered = rcm(&shuffled);
        assert!(
            bandwidth(&shuffled, &recovered) <= 4,
            "RCM should recover a narrow band"
        );
        let natural = Permutation::identity(40);
        assert!(bandwidth(&shuffled, &recovered) < bandwidth(&shuffled, &natural));
    }

    #[test]
    fn grid_bandwidth_close_to_side_length() {
        let pattern = grid2d_5pt(8, 8);
        let perm = rcm(&pattern);
        assert!(bandwidth(&pattern, &perm) <= 2 * 8);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let pattern = SparsePattern::from_edges(6, &[(0, 1), (2, 3)]);
        let perm = rcm(&pattern);
        assert_eq!(perm.len(), 6);
        // Fill-in of a forest is zero regardless of the order used.
        assert_eq!(fill_in(&pattern, &perm), 6 + 2);
    }

    #[test]
    fn pseudo_peripheral_finds_a_path_end() {
        let edges: Vec<(usize, usize)> = (0..9).map(|i| (i, i + 1)).collect();
        let pattern = SparsePattern::from_edges(10, &edges);
        let v = pseudo_peripheral(&pattern, 5, &[true; 10]);
        assert!(v == 0 || v == 9);
    }
}
