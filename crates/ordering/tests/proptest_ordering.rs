//! Property-based tests for the ordering crate: every method must return a
//! valid permutation, and the fill-reducing methods must never be worse than
//! the natural ordering by more than a small factor on structured problems.

use proptest::prelude::*;

use ordering::mindeg::fill_in;
use ordering::{minimum_degree, natural, nested_dissection, rcm, OrderingMethod, Permutation};
use sparsemat::SparsePattern;

fn arbitrary_pattern(max_n: usize, max_edges: usize) -> impl Strategy<Value = SparsePattern> {
    (2..=max_n)
        .prop_flat_map(move |n| {
            (Just(n), proptest::collection::vec((0..n, 0..n), 0..=max_edges))
        })
        .prop_map(|(n, edges)| SparsePattern::from_edges(n, &edges))
}

fn is_permutation(perm: &Permutation, n: usize) -> bool {
    let mut seen = vec![false; n];
    for k in 0..n {
        let v = perm.new_to_old(k);
        if v >= n || seen[v] {
            return false;
        }
        seen[v] = true;
    }
    seen.into_iter().all(|s| s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_method_returns_a_valid_permutation(pattern in arbitrary_pattern(40, 150)) {
        for method in OrderingMethod::ALL {
            let perm = method.order(&pattern);
            prop_assert_eq!(perm.len(), pattern.n(), "{}", method.name());
            prop_assert!(is_permutation(&perm, pattern.n()), "{}", method.name());
        }
    }

    #[test]
    fn orderings_are_deterministic(pattern in arbitrary_pattern(30, 100)) {
        for method in OrderingMethod::ALL {
            prop_assert_eq!(method.order(&pattern), method.order(&pattern), "{}", method.name());
        }
    }

    #[test]
    fn fill_is_invariant_under_relabelling_for_natural(pattern in arbitrary_pattern(25, 80)) {
        // fill_in of the identity on a relabelled pattern equals fill_in of
        // that relabelling on the original pattern.
        let n = pattern.n();
        let reversal = Permutation::from_new_to_old((0..n).rev().collect());
        let relabelled = reversal.apply(&pattern);
        prop_assert_eq!(
            fill_in(&relabelled, &natural(n)),
            fill_in(&pattern, &reversal)
        );
    }

    #[test]
    fn trees_are_ordered_without_fill(n in 2usize..40, picks in proptest::collection::vec(0usize..1000, 39)) {
        // Build a random tree (acyclic graph): minimum degree must order it
        // with zero fill (nnz(L) = 2n - 1).
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i, picks[i - 1] % i)).collect();
        let pattern = SparsePattern::from_edges(n, &edges);
        let perm = minimum_degree(&pattern);
        prop_assert_eq!(fill_in(&pattern, &perm), 2 * n - 1);
    }

    #[test]
    fn fill_reducing_methods_never_lose_badly_on_grids(side in 4usize..12) {
        let pattern = sparsemat::gen::grid2d_5pt(side, side);
        let base = fill_in(&pattern, &natural(pattern.n()));
        for perm in [minimum_degree(&pattern), nested_dissection(&pattern)] {
            let fill = fill_in(&pattern, &perm);
            prop_assert!(fill <= base, "fill-reducing ordering worse than natural on a grid");
        }
        // RCM is a bandwidth reducer, not a fill reducer, but it should stay
        // within a small factor of natural on grids.
        let rcm_fill = fill_in(&pattern, &rcm(&pattern));
        prop_assert!(rcm_fill <= 2 * base);
    }
}
