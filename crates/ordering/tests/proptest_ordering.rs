//! Property-based tests for the ordering crate: every method must return a
//! valid permutation, and the fill-reducing methods must never be worse than
//! the natural ordering by more than a small factor on structured problems.
//!
//! The environment is offline, so instead of `proptest` these tests draw a
//! deterministic battery of random instances from the `prng` crate: every
//! case is reproducible from its seed, printed in assertion messages.

use prng::{Rng, StdRng};

use ordering::mindeg::fill_in;
use ordering::{minimum_degree, natural, nested_dissection, rcm, OrderingMethod, Permutation};
use sparsemat::SparsePattern;

fn arbitrary_pattern(seed: u64, max_n: usize, max_edges: usize) -> SparsePattern {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..=max_n);
    let count = rng.gen_range(0..=max_edges);
    let edges: Vec<(usize, usize)> = (0..count)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    SparsePattern::from_edges(n, &edges)
}

fn is_permutation(perm: &Permutation, n: usize) -> bool {
    let mut seen = vec![false; n];
    for k in 0..n {
        let v = perm.new_to_old(k);
        if v >= n || seen[v] {
            return false;
        }
        seen[v] = true;
    }
    seen.into_iter().all(|s| s)
}

#[test]
fn every_method_returns_a_valid_permutation() {
    for seed in 0..48 {
        let pattern = arbitrary_pattern(seed, 40, 150);
        for method in OrderingMethod::ALL {
            let perm = method.order(&pattern);
            assert_eq!(perm.len(), pattern.n(), "seed {seed}, {}", method.name());
            assert!(
                is_permutation(&perm, pattern.n()),
                "seed {seed}, {}",
                method.name()
            );
        }
    }
}

#[test]
fn orderings_are_deterministic() {
    for seed in 100..148 {
        let pattern = arbitrary_pattern(seed, 30, 100);
        for method in OrderingMethod::ALL {
            assert_eq!(
                method.order(&pattern),
                method.order(&pattern),
                "seed {seed}, {}",
                method.name()
            );
        }
    }
}

#[test]
fn fill_is_invariant_under_relabelling_for_natural() {
    for seed in 200..248 {
        let pattern = arbitrary_pattern(seed, 25, 80);
        // fill_in of the identity on a relabelled pattern equals fill_in of
        // that relabelling on the original pattern.
        let n = pattern.n();
        let reversal = Permutation::from_new_to_old((0..n).rev().collect());
        let relabelled = reversal.apply(&pattern);
        assert_eq!(
            fill_in(&relabelled, &natural(n)),
            fill_in(&pattern, &reversal),
            "seed {seed}"
        );
    }
}

#[test]
fn trees_are_ordered_without_fill() {
    for seed in 300..348 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..40usize);
        // Build a random tree (acyclic graph): minimum degree must order it
        // with zero fill (nnz(L) = 2n - 1).
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i, rng.gen_range(0..i))).collect();
        let pattern = SparsePattern::from_edges(n, &edges);
        let perm = minimum_degree(&pattern);
        assert_eq!(fill_in(&pattern, &perm), 2 * n - 1, "seed {seed}");
    }
}

#[test]
fn fill_reducing_methods_never_lose_badly_on_grids() {
    for side in 4usize..12 {
        let pattern = sparsemat::gen::grid2d_5pt(side, side);
        let base = fill_in(&pattern, &natural(pattern.n()));
        for perm in [minimum_degree(&pattern), nested_dissection(&pattern)] {
            let fill = fill_in(&pattern, &perm);
            assert!(
                fill <= base,
                "side {side}: fill-reducing ordering worse than natural"
            );
        }
        // RCM is a bandwidth reducer, not a fill reducer, but it should stay
        // within a small factor of natural on grids.
        let rcm_fill = fill_in(&pattern, &rcm(&pattern));
        assert!(rcm_fill <= 2 * base, "side {side}");
    }
}
