//! # perfprof — Dolan–Moré performance profiles and summary statistics
//!
//! The paper evaluates its algorithms and heuristics with *performance
//! profiles* (Dolan & Moré, 2002): for every test instance and every method
//! the measured cost (memory requirement, I/O volume or running time) is
//! divided by the best cost any method achieved on that instance; the profile
//! of a method is then the cumulative distribution of these ratios — the
//! value at `τ` is the fraction of instances on which the method is within a
//! factor `τ` of the best.
//!
//! [`PerformanceProfile`] computes the profiles for a set of methods,
//! [`ratio_statistics`] produces the summary numbers reported in Tables I and
//! II of the paper (fraction of non-optimal cases, maximum / average /
//! standard deviation of the cost ratio), and the rendering helpers produce
//! the CSV series and ASCII plots emitted by the experiment binaries.
//! [`timing`] holds the repeated-run wall-clock summaries used by the
//! scaling benchmark and its CI regression gate.

pub mod profile;
pub mod stats;
pub mod timing;

pub use profile::{PerformanceProfile, ProfilePoint};
pub use stats::{ratio_statistics, RatioStatistics};
pub use timing::{
    latency_summary, percentile, speedup, summarize_seconds, time_runs, LatencySummary,
    TimingSummary,
};
