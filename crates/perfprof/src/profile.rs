//! Performance-profile computation and rendering.

/// One point of a performance profile: at ratio `tau`, `fraction` of the
/// instances are solved within `tau` times the best method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilePoint {
    /// Performance ratio (≥ 1).
    pub tau: f64,
    /// Fraction of instances (in `[0, 1]`) with ratio ≤ `tau`.
    pub fraction: f64,
}

/// Performance profiles of a set of methods over a common set of instances.
#[derive(Debug, Clone)]
pub struct PerformanceProfile {
    method_names: Vec<String>,
    /// ratios[m][i]: cost of method m on instance i divided by the best cost
    /// on instance i.
    ratios: Vec<Vec<f64>>,
}

impl PerformanceProfile {
    /// Build profiles from raw costs.
    ///
    /// `costs[m][i]` is the cost of method `m` on instance `i` (smaller is
    /// better); costs must be non-negative and every instance must have at
    /// least one finite, positive best cost.  Instances where the best cost
    /// is zero are handled by treating every zero-cost method as ratio 1 and
    /// any positive-cost method as ratio `+∞` (it never catches up), which
    /// matches how the paper treats zero-I/O instances.
    ///
    /// # Panics
    /// Panics if the methods do not all have the same number of instances or
    /// if any cost is negative or NaN.
    pub fn from_costs(method_names: &[&str], costs: &[Vec<f64>]) -> Self {
        assert_eq!(
            method_names.len(),
            costs.len(),
            "one cost vector per method expected"
        );
        assert!(!costs.is_empty(), "at least one method expected");
        let instances = costs[0].len();
        for (m, series) in costs.iter().enumerate() {
            assert_eq!(
                series.len(),
                instances,
                "method {m} has a different number of instances"
            );
            assert!(
                series.iter().all(|&c| c >= 0.0 && !c.is_nan()),
                "costs must be non-negative"
            );
        }
        let mut ratios = vec![vec![0.0; instances]; costs.len()];
        for i in 0..instances {
            let best = costs
                .iter()
                .map(|series| series[i])
                .fold(f64::INFINITY, f64::min);
            for (m, series) in costs.iter().enumerate() {
                ratios[m][i] = if best > 0.0 {
                    series[i] / best
                } else if series[i] == 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                };
            }
        }
        PerformanceProfile {
            method_names: method_names.iter().map(|s| s.to_string()).collect(),
            ratios,
        }
    }

    /// Names of the methods, in the order they were provided.
    pub fn method_names(&self) -> &[String] {
        &self.method_names
    }

    /// Number of instances.
    pub fn instance_count(&self) -> usize {
        self.ratios.first().map(Vec::len).unwrap_or(0)
    }

    /// The performance ratios of one method (one entry per instance).
    pub fn ratios(&self, method: usize) -> &[f64] {
        &self.ratios[method]
    }

    /// Value of the profile of `method` at ratio `tau`: the fraction of
    /// instances where the method is within a factor `tau` of the best.
    pub fn value_at(&self, method: usize, tau: f64) -> f64 {
        let instances = self.instance_count();
        if instances == 0 {
            return 0.0;
        }
        let within = self.ratios[method].iter().filter(|&&r| r <= tau).count();
        within as f64 / instances as f64
    }

    /// The profile curve of `method` sampled at `samples` evenly spaced
    /// ratios between 1 and `max_tau` (inclusive).
    pub fn curve(&self, method: usize, max_tau: f64, samples: usize) -> Vec<ProfilePoint> {
        assert!(max_tau >= 1.0 && samples >= 2);
        (0..samples)
            .map(|s| {
                let tau = 1.0 + (max_tau - 1.0) * s as f64 / (samples - 1) as f64;
                ProfilePoint {
                    tau,
                    fraction: self.value_at(method, tau),
                }
            })
            .collect()
    }

    /// Fraction of instances on which `method` matches the best cost
    /// (ratio 1, within floating-point tolerance).
    pub fn fraction_best(&self, method: usize) -> f64 {
        self.value_at(method, 1.0 + 1e-12)
    }

    /// CSV rendering of the profiles sampled at `samples` ratios up to
    /// `max_tau`: one line per sample, one column per method.
    pub fn to_csv(&self, max_tau: f64, samples: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("tau");
        for name in &self.method_names {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        let curves: Vec<Vec<ProfilePoint>> = (0..self.method_names.len())
            .map(|m| self.curve(m, max_tau, samples))
            .collect();
        for s in 0..samples {
            let _ = write!(out, "{:.4}", curves[0][s].tau);
            for curve in &curves {
                let _ = write!(out, ",{:.4}", curve[s].fraction);
            }
            out.push('\n');
        }
        out
    }

    /// A rough ASCII rendering of the profiles (one row per method, `width`
    /// buckets between τ = 1 and `max_tau`), for terminal output of the
    /// experiment binaries.
    pub fn to_ascii(&self, max_tau: f64, width: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let name_width = self
            .method_names
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(8)
            .max(8);
        let _ = writeln!(
            out,
            "{:name_width$}  profile from tau=1 to tau={:.2} ({} instances)",
            "method",
            max_tau,
            self.instance_count()
        );
        for (m, name) in self.method_names.iter().enumerate() {
            let _ = write!(out, "{name:name_width$}  ");
            for s in 0..width {
                let tau = 1.0 + (max_tau - 1.0) * s as f64 / (width - 1) as f64;
                let value = self.value_at(m, tau);
                let glyph = match (value * 10.0).round() as i64 {
                    0 => ' ',
                    1..=2 => '.',
                    3..=5 => ':',
                    6..=8 => '+',
                    _ => '#',
                };
                out.push(glyph);
            }
            let _ = writeln!(out, "  (best on {:.1}%)", 100.0 * self.fraction_best(m));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_and_values() {
        // Two methods, three instances.
        let profile = PerformanceProfile::from_costs(
            &["a", "b"],
            &[vec![1.0, 2.0, 3.0], vec![2.0, 2.0, 1.0]],
        );
        assert_eq!(profile.instance_count(), 3);
        assert_eq!(profile.ratios(0), &[1.0, 1.0, 3.0]);
        assert_eq!(profile.ratios(1), &[2.0, 1.0, 1.0]);
        assert!((profile.fraction_best(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((profile.fraction_best(1) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(profile.value_at(0, 3.0), 1.0);
        assert_eq!(profile.value_at(1, 1.5), 2.0 / 3.0);
    }

    #[test]
    fn profiles_are_monotone_in_tau() {
        let profile = PerformanceProfile::from_costs(
            &["x", "y", "z"],
            &[
                vec![5.0, 1.0, 4.0, 2.0],
                vec![4.0, 2.0, 4.0, 2.0],
                vec![3.0, 3.0, 4.0, 8.0],
            ],
        );
        for m in 0..3 {
            let curve = profile.curve(m, 4.0, 16);
            for pair in curve.windows(2) {
                assert!(pair[1].fraction >= pair[0].fraction);
            }
            assert_eq!(curve.first().unwrap().tau, 1.0);
            assert_eq!(curve.last().unwrap().tau, 4.0);
        }
    }

    #[test]
    fn zero_cost_instances_are_handled() {
        // Instance 0: both methods at zero cost -> both ratio 1.
        // Instance 1: method a at zero, method b positive -> b never catches up.
        let profile =
            PerformanceProfile::from_costs(&["a", "b"], &[vec![0.0, 0.0], vec![0.0, 5.0]]);
        assert_eq!(profile.value_at(0, 1.0), 1.0);
        assert_eq!(profile.value_at(1, 1000.0), 0.5);
    }

    #[test]
    fn csv_and_ascii_render() {
        let profile =
            PerformanceProfile::from_costs(&["fast", "slow"], &[vec![1.0, 1.0], vec![2.0, 3.0]]);
        let csv = profile.to_csv(3.0, 5);
        assert!(csv.starts_with("tau,fast,slow"));
        assert_eq!(csv.lines().count(), 6);
        let ascii = profile.to_ascii(3.0, 20);
        assert!(ascii.contains("fast") && ascii.contains("slow"));
        assert!(ascii.contains("best on 100.0%"));
    }

    #[test]
    #[should_panic(expected = "different number of instances")]
    fn mismatched_lengths_are_rejected() {
        PerformanceProfile::from_costs(&["a", "b"], &[vec![1.0], vec![1.0, 2.0]]);
    }
}
