//! Repeated-run wall-clock summaries for the scaling experiments.
//!
//! The scaling benchmark (`exp_scaling` in `crates/bench`) times whole
//! algorithm runs — milliseconds to seconds, not the nanosecond regime of
//! the micro-bench harness — so it wants a small number of repetitions and a
//! robust (median) summary rather than adaptive iteration counts.  This
//! module provides that summary plus the speedup helper the benchmark and
//! the CI regression gate use.

use std::time::Instant;

/// Median / min / max of a set of wall-clock samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingSummary {
    /// Number of samples.
    pub runs: usize,
    /// Median of the samples, in seconds.
    pub median_seconds: f64,
    /// Fastest sample, in seconds.
    pub min_seconds: f64,
    /// Slowest sample, in seconds.
    pub max_seconds: f64,
}

/// Summarise raw samples (seconds).
///
/// # Panics
/// Panics if `samples` is empty or contains a NaN.
pub fn summarize_seconds(samples: &[f64]) -> TimingSummary {
    assert!(!samples.is_empty(), "at least one sample expected");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    TimingSummary {
        runs: sorted.len(),
        median_seconds: sorted[sorted.len() / 2],
        min_seconds: sorted[0],
        max_seconds: sorted[sorted.len() - 1],
    }
}

/// Run `f` `runs` times, returning the last result and the timing summary.
///
/// # Panics
/// Panics if `runs == 0`.
pub fn time_runs<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, TimingSummary) {
    assert!(runs > 0, "at least one run expected");
    let mut samples = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let start = Instant::now();
        last = Some(f());
        samples.push(start.elapsed().as_secs_f64());
    }
    (last.expect("runs > 0"), summarize_seconds(&samples))
}

/// Speedup of `improved` over `baseline` (ratio of median times; > 1 means
/// `improved` is faster).  Degenerate near-zero medians clamp to the ratio
/// of a nanosecond so the result stays finite.
pub fn speedup(baseline: &TimingSummary, improved: &TimingSummary) -> f64 {
    baseline.median_seconds / improved.median_seconds.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let summary = summarize_seconds(&[3.0, 1.0, 2.0]);
        assert_eq!(summary.runs, 3);
        assert_eq!(summary.median_seconds, 2.0);
        assert_eq!(summary.min_seconds, 1.0);
        assert_eq!(summary.max_seconds, 3.0);
    }

    #[test]
    fn time_runs_counts_and_returns() {
        let mut calls = 0;
        let (value, summary) = time_runs(5, || {
            calls += 1;
            calls
        });
        assert_eq!(value, 5);
        assert_eq!(summary.runs, 5);
        assert!(summary.min_seconds <= summary.median_seconds);
        assert!(summary.median_seconds <= summary.max_seconds);
    }

    #[test]
    fn speedup_is_a_median_ratio() {
        let slow = summarize_seconds(&[2.0]);
        let fast = summarize_seconds(&[0.5]);
        assert!((speedup(&slow, &fast) - 4.0).abs() < 1e-12);
        let zero = summarize_seconds(&[0.0]);
        assert!(speedup(&slow, &zero).is_finite());
    }
}
