//! Repeated-run wall-clock summaries for the scaling experiments.
//!
//! The scaling benchmark (`exp_scaling` in `crates/bench`) times whole
//! algorithm runs — milliseconds to seconds, not the nanosecond regime of
//! the micro-bench harness — so it wants a small number of repetitions and a
//! robust (median) summary rather than adaptive iteration counts.  This
//! module provides that summary plus the speedup helper the benchmark and
//! the CI regression gate use.

use std::time::Instant;

/// Median / min / max of a set of wall-clock samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingSummary {
    /// Number of samples.
    pub runs: usize,
    /// Median of the samples, in seconds.
    pub median_seconds: f64,
    /// Fastest sample, in seconds.
    pub min_seconds: f64,
    /// Slowest sample, in seconds.
    pub max_seconds: f64,
}

/// Summarise raw samples (seconds).
///
/// # Panics
/// Panics if `samples` is empty or contains a NaN.
pub fn summarize_seconds(samples: &[f64]) -> TimingSummary {
    assert!(!samples.is_empty(), "at least one sample expected");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    TimingSummary {
        runs: sorted.len(),
        median_seconds: sorted[sorted.len() / 2],
        min_seconds: sorted[0],
        max_seconds: sorted[sorted.len() - 1],
    }
}

/// Run `f` `runs` times, returning the last result and the timing summary.
///
/// # Panics
/// Panics if `runs == 0`.
pub fn time_runs<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, TimingSummary) {
    assert!(runs > 0, "at least one run expected");
    let mut samples = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let start = Instant::now();
        last = Some(f());
        samples.push(start.elapsed().as_secs_f64());
    }
    (last.expect("runs > 0"), summarize_seconds(&samples))
}

/// Speedup of `improved` over `baseline` (ratio of median times; > 1 means
/// `improved` is faster).  Degenerate near-zero medians clamp to the ratio
/// of a nanosecond so the result stays finite.
pub fn speedup(baseline: &TimingSummary, improved: &TimingSummary) -> f64 {
    baseline.median_seconds / improved.median_seconds.max(1e-9)
}

/// Percentile summary of a latency distribution, for serving-style
/// workloads (the `/stats` endpoint of `crates/server` and the `loadgen`
/// scenarios) where the tail matters more than the median alone.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean, in seconds.
    pub mean_seconds: f64,
    /// 50th percentile, in seconds.
    pub p50_seconds: f64,
    /// 95th percentile, in seconds.
    pub p95_seconds: f64,
    /// 99th percentile, in seconds.
    pub p99_seconds: f64,
    /// Slowest sample, in seconds.
    pub max_seconds: f64,
}

impl LatencySummary {
    /// Render the summary as a JSON object fragment (used verbatim by the
    /// server's `/stats` endpoint and the loadgen report).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean_seconds\": {:.9}, \"p50_seconds\": {:.9}, \
             \"p95_seconds\": {:.9}, \"p99_seconds\": {:.9}, \"max_seconds\": {:.9}}}",
            self.count,
            self.mean_seconds,
            self.p50_seconds,
            self.p95_seconds,
            self.p99_seconds,
            self.max_seconds
        )
    }
}

/// The `q`-th percentile (`0.0 ..= 1.0`) of an **ascending-sorted** slice,
/// by the nearest-rank method.  Returns `0.0` for an empty slice.
pub fn percentile(sorted_ascending: &[f64], q: f64) -> f64 {
    if sorted_ascending.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted_ascending.len() as f64).ceil() as usize).max(1);
    sorted_ascending[rank.min(sorted_ascending.len()) - 1]
}

/// Summarise raw latency samples (seconds).  An empty slice yields the
/// all-zero summary rather than panicking — a server that has not yet
/// received a request still has a well-formed `/stats` document.
///
/// # Panics
/// Panics if a sample is NaN.
pub fn latency_summary(samples: &[f64]) -> LatencySummary {
    if samples.is_empty() {
        return LatencySummary::default();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    LatencySummary {
        count: sorted.len(),
        mean_seconds: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50_seconds: percentile(&sorted, 0.50),
        p95_seconds: percentile(&sorted, 0.95),
        p99_seconds: percentile(&sorted, 0.99),
        max_seconds: sorted[sorted.len() - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let summary = summarize_seconds(&[3.0, 1.0, 2.0]);
        assert_eq!(summary.runs, 3);
        assert_eq!(summary.median_seconds, 2.0);
        assert_eq!(summary.min_seconds, 1.0);
        assert_eq!(summary.max_seconds, 3.0);
    }

    #[test]
    fn time_runs_counts_and_returns() {
        let mut calls = 0;
        let (value, summary) = time_runs(5, || {
            calls += 1;
            calls
        });
        assert_eq!(value, 5);
        assert_eq!(summary.runs, 5);
        assert!(summary.min_seconds <= summary.median_seconds);
        assert!(summary.median_seconds <= summary.max_seconds);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn latency_summary_of_known_samples() {
        let samples: Vec<f64> = (1..=10).rev().map(|i| i as f64).collect();
        let summary = latency_summary(&samples);
        assert_eq!(summary.count, 10);
        assert_eq!(summary.p50_seconds, 5.0);
        assert_eq!(summary.p99_seconds, 10.0);
        assert_eq!(summary.max_seconds, 10.0);
        assert!((summary.mean_seconds - 5.5).abs() < 1e-12);
        assert_eq!(latency_summary(&[]), LatencySummary::default());
        assert!(summary.to_json().contains("\"count\": 10"));
    }

    #[test]
    fn speedup_is_a_median_ratio() {
        let slow = summarize_seconds(&[2.0]);
        let fast = summarize_seconds(&[0.5]);
        assert!((speedup(&slow, &fast) - 4.0).abs() < 1e-12);
        let zero = summarize_seconds(&[0.0]);
        assert!(speedup(&slow, &zero).is_finite());
    }
}
