//! Summary statistics of cost ratios (Tables I and II of the paper).

/// Summary of the ratios `cost(method) / cost(reference)` over a set of
/// instances — the numbers reported in Tables I and II of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioStatistics {
    /// Number of instances.
    pub instances: usize,
    /// Fraction of instances where the method is strictly worse than the
    /// reference (e.g. "Non optimal PostOrder traversals" in Table I).
    pub fraction_suboptimal: f64,
    /// Largest ratio.
    pub max_ratio: f64,
    /// Average ratio.
    pub mean_ratio: f64,
    /// Population standard deviation of the ratios.
    pub stddev_ratio: f64,
}

/// Compute the ratio statistics of `method_costs` against `reference_costs`
/// (element-wise; the reference is usually the optimal value).
///
/// # Panics
/// Panics if the slices have different lengths, are empty, or if a reference
/// cost is zero while the method cost is not (the ratio would be infinite).
pub fn ratio_statistics(method_costs: &[f64], reference_costs: &[f64]) -> RatioStatistics {
    assert_eq!(method_costs.len(), reference_costs.len(), "length mismatch");
    assert!(!method_costs.is_empty(), "at least one instance expected");
    let ratios: Vec<f64> = method_costs
        .iter()
        .zip(reference_costs.iter())
        .map(|(&m, &r)| {
            if r == 0.0 {
                assert!(m == 0.0, "method cost {m} with zero reference cost");
                1.0
            } else {
                m / r
            }
        })
        .collect();
    let instances = ratios.len();
    let suboptimal = ratios.iter().filter(|&&r| r > 1.0 + 1e-12).count();
    let max_ratio = ratios.iter().copied().fold(f64::MIN, f64::max);
    let mean_ratio = ratios.iter().sum::<f64>() / instances as f64;
    let variance = ratios
        .iter()
        .map(|&r| (r - mean_ratio) * (r - mean_ratio))
        .sum::<f64>()
        / instances as f64;
    RatioStatistics {
        instances,
        fraction_suboptimal: suboptimal as f64 / instances as f64,
        max_ratio,
        mean_ratio,
        stddev_ratio: variance.sqrt(),
    }
}

impl RatioStatistics {
    /// Render the statistics as the rows of Table I / Table II of the paper.
    pub fn to_table(&self, method: &str, reference: &str) -> String {
        format!(
            "Non optimal {method} traversals      {:.1}%\n\
             Max. {method} to {reference} cost ratio     {:.2}\n\
             Avg. {method} to {reference} cost ratio     {:.2}\n\
             Std. Dev. of {method} to {reference} cost ratio {:.2}\n",
            100.0 * self.fraction_suboptimal,
            self.max_ratio,
            self.mean_ratio,
            self.stddev_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_of_a_simple_case() {
        let stats = ratio_statistics(&[1.0, 2.0, 1.0, 3.0], &[1.0, 1.0, 1.0, 2.0]);
        assert_eq!(stats.instances, 4);
        assert!((stats.fraction_suboptimal - 0.5).abs() < 1e-12);
        assert!((stats.max_ratio - 2.0).abs() < 1e-12);
        assert!((stats.mean_ratio - 1.375).abs() < 1e-12);
        assert!(stats.stddev_ratio > 0.0);
    }

    #[test]
    fn equal_costs_give_trivial_statistics() {
        let stats = ratio_statistics(&[5.0, 7.0], &[5.0, 7.0]);
        assert_eq!(stats.fraction_suboptimal, 0.0);
        assert_eq!(stats.max_ratio, 1.0);
        assert_eq!(stats.mean_ratio, 1.0);
        assert_eq!(stats.stddev_ratio, 0.0);
    }

    #[test]
    fn zero_reference_with_zero_method_is_ratio_one() {
        let stats = ratio_statistics(&[0.0, 2.0], &[0.0, 2.0]);
        assert_eq!(stats.max_ratio, 1.0);
    }

    #[test]
    fn table_rendering_mentions_the_method() {
        let stats = ratio_statistics(&[1.1], &[1.0]);
        let table = stats.to_table("PostOrder", "opt");
        assert!(table.contains("PostOrder"));
        assert!(table.contains("100.0%"));
    }

    #[test]
    #[should_panic(expected = "zero reference")]
    fn inconsistent_zero_reference_is_rejected() {
        ratio_statistics(&[1.0], &[0.0]);
    }
}
