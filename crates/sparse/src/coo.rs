//! Triplet (coordinate) storage used as a flexible builder for numeric
//! symmetric matrices.

use crate::pattern::{SparsePattern, SymmetricCsr};

/// A symmetric matrix under construction, stored as (row, column, value)
/// triplets of its lower triangle.  Duplicate entries are summed on
/// conversion, as in the usual finite-element assembly convention.
#[derive(Debug, Clone, Default)]
pub struct Coo {
    n: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Coo {
    /// Create an empty `n × n` symmetric matrix.
    pub fn new(n: usize) -> Self {
        Coo {
            n,
            entries: Vec::new(),
        }
    }

    /// Dimension of the matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of triplets added so far (before duplicate summation).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplet has been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Add `value` to entry `(i, j)`; the entry is stored in the lower
    /// triangle regardless of the order of the indices.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn push(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "index out of range");
        let (row, col) = if i >= j { (i, j) } else { (j, i) };
        self.entries.push((row, col, value));
    }

    /// Add `value` to the diagonal entry `(i, i)`.
    pub fn push_diagonal(&mut self, i: usize, value: f64) {
        self.push(i, i, value);
    }

    /// Convert to compressed symmetric storage, summing duplicates and adding
    /// explicit zero diagonal entries where missing (so that the result is
    /// always structurally valid).
    pub fn to_csr(&self) -> SymmetricCsr {
        let mut columns: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.n];
        for &(i, j, v) in &self.entries {
            columns[j].push((i, v));
        }
        for (j, column) in columns.iter_mut().enumerate() {
            column.sort_by_key(|&(row, _)| row);
            // Sum duplicates in place.
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(column.len() + 1);
            for &(row, value) in column.iter() {
                match merged.last_mut() {
                    Some((last_row, last_value)) if *last_row == row => *last_value += value,
                    _ => merged.push((row, value)),
                }
            }
            if merged.first().map(|&(row, _)| row) != Some(j) {
                merged.insert(0, (j, 0.0));
            }
            *column = merged;
        }
        SymmetricCsr::from_lower_columns(self.n, columns)
    }

    /// The adjacency pattern of the triplets added so far.
    pub fn pattern(&self) -> SparsePattern {
        let edges: Vec<(usize, usize)> = self.entries.iter().map(|&(i, j, _)| (i, j)).collect();
        SparsePattern::from_edges(self.n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed_and_diagonal_added() {
        let mut coo = Coo::new(3);
        coo.push(1, 0, 2.0);
        coo.push(0, 1, 3.0); // same symmetric entry
        coo.push_diagonal(0, 5.0);
        coo.push_diagonal(1, 6.0);
        assert_eq!(coo.len(), 4);
        let csr = coo.to_csr();
        assert_eq!(csr.get_lower(1, 0), 5.0);
        assert_eq!(csr.get_lower(0, 0), 5.0);
        assert_eq!(csr.get_lower(1, 1), 6.0);
        // Missing diagonal (2,2) is added structurally with value 0.
        assert_eq!(csr.get_lower(2, 2), 0.0);
        assert_eq!(csr.nnz_lower(), 4);
    }

    #[test]
    fn pattern_reflects_the_triplets() {
        let mut coo = Coo::new(4);
        coo.push(0, 2, 1.0);
        coo.push(3, 2, 1.0);
        let pattern = coo.pattern();
        assert_eq!(pattern.neighbors(2), &[0, 3]);
        assert!(coo.pattern().is_symmetric());
        assert!(Coo::new(2).is_empty());
    }
}
