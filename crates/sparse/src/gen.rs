//! Synthetic sparse-matrix generators.
//!
//! These generators replace the University of Florida Sparse Matrix
//! Collection used in the paper's experiments (see `DESIGN.md` for the
//! substitution rationale).  They cover the structural regimes that matter
//! for assembly-tree shapes:
//!
//! * [`grid2d_5pt`], [`grid2d_9pt`], [`grid3d_7pt`] — regular grids from
//!   discretised PDEs; nested-dissection-friendly, produce deep balanced
//!   assembly trees (the bulk of the UF matrices in the paper's size range
//!   are discretisations of this kind);
//! * [`banded`] — banded systems, produce chain-like elimination trees;
//! * [`random_spd_pattern`] — Erdős–Rényi-style random symmetric patterns
//!   with a prescribed number of nonzeros per row;
//! * [`power_law_pattern`] — skewed degree distributions (RMAT-like), which
//!   produce irregular, high-degree assembly trees.
//!
//! Every generator has a `*_matrix` variant that also produces numeric
//! values making the matrix symmetric positive definite (by strict diagonal
//! dominance), for use by the `multifrontal` crate.

use prng::{Rng, StdRng};

use crate::coo::Coo;
use crate::pattern::{SparsePattern, SymmetricCsr};

/// Pattern of the 5-point Laplacian on an `nx × ny` grid.
pub fn grid2d_5pt(nx: usize, ny: usize) -> SparsePattern {
    let index = |x: usize, y: usize| y * nx + x;
    let mut edges = Vec::with_capacity(2 * nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                edges.push((index(x, y), index(x + 1, y)));
            }
            if y + 1 < ny {
                edges.push((index(x, y), index(x, y + 1)));
            }
        }
    }
    SparsePattern::from_edges(nx * ny, &edges)
}

/// Pattern of the 9-point stencil on an `nx × ny` grid (adds diagonal
/// couplings to [`grid2d_5pt`]).
pub fn grid2d_9pt(nx: usize, ny: usize) -> SparsePattern {
    let index = |x: usize, y: usize| y * nx + x;
    let mut edges = Vec::with_capacity(4 * nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                edges.push((index(x, y), index(x + 1, y)));
            }
            if y + 1 < ny {
                edges.push((index(x, y), index(x, y + 1)));
            }
            if x + 1 < nx && y + 1 < ny {
                edges.push((index(x, y), index(x + 1, y + 1)));
                edges.push((index(x + 1, y), index(x, y + 1)));
            }
        }
    }
    SparsePattern::from_edges(nx * ny, &edges)
}

/// Pattern of the 7-point Laplacian on an `nx × ny × nz` grid.
pub fn grid3d_7pt(nx: usize, ny: usize, nz: usize) -> SparsePattern {
    let index = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut edges = Vec::with_capacity(3 * nx * ny * nz);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push((index(x, y, z), index(x + 1, y, z)));
                }
                if y + 1 < ny {
                    edges.push((index(x, y, z), index(x, y + 1, z)));
                }
                if z + 1 < nz {
                    edges.push((index(x, y, z), index(x, y, z + 1)));
                }
            }
        }
    }
    SparsePattern::from_edges(nx * ny * nz, &edges)
}

/// Pattern of a banded symmetric matrix of the given half-bandwidth.
pub fn banded(n: usize, half_bandwidth: usize) -> SparsePattern {
    let mut edges = Vec::new();
    for i in 0..n {
        for offset in 1..=half_bandwidth {
            if i + offset < n {
                edges.push((i, i + offset));
            }
        }
    }
    SparsePattern::from_edges(n, &edges)
}

/// Random symmetric pattern with (approximately) `nnz_per_row` off-diagonal
/// entries per row, Erdős–Rényi style.
pub fn random_spd_pattern(n: usize, nnz_per_row: f64, seed: u64) -> SparsePattern {
    assert!(n > 0 && nnz_per_row >= 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    // Each undirected edge contributes 2 off-diagonal entries, so target
    // n * nnz_per_row / 2 edges.
    let target_edges = ((n as f64) * nnz_per_row / 2.0).round() as usize;
    let mut edges = Vec::with_capacity(target_edges);
    for _ in 0..target_edges {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            edges.push((i, j));
        }
    }
    // Add a Hamiltonian path so the graph is connected (keeps elimination
    // trees from degenerating into forests).
    for i in 0..n.saturating_sub(1) {
        edges.push((i, i + 1));
    }
    SparsePattern::from_edges(n, &edges)
}

/// Random symmetric pattern with a power-law degree distribution: endpoints
/// are drawn with probability proportional to `(rank + 1)^{-alpha}`.
/// Produces a few very high-degree vertices, the irregular regime of the UF
/// collection.
pub fn power_law_pattern(n: usize, edges_count: usize, alpha: f64, seed: u64) -> SparsePattern {
    assert!(n > 0 && alpha > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    // Precompute cumulative weights.
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(alpha)).collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cumulative.push(acc / total);
    }
    let draw = |rng: &mut StdRng| -> usize {
        let x: f64 = rng.gen();
        match cumulative.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
            Ok(idx) => idx,
            Err(idx) => idx.min(n - 1),
        }
    };
    let mut edges = Vec::with_capacity(edges_count + n);
    for _ in 0..edges_count {
        let i = draw(&mut rng);
        let j = draw(&mut rng);
        if i != j {
            edges.push((i, j));
        }
    }
    for i in 0..n.saturating_sub(1) {
        edges.push((i, i + 1));
    }
    SparsePattern::from_edges(n, &edges)
}

/// Give a pattern numeric values that make it symmetric positive definite:
/// off-diagonal entries are drawn uniformly in `[-1, 0)` and each diagonal
/// entry is set to one plus the sum of the absolute off-diagonal values of
/// its row (strict diagonal dominance).
pub fn spd_matrix_from_pattern(pattern: &SparsePattern, seed: u64) -> SymmetricCsr {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = pattern.n();
    let mut coo = Coo::new(n);
    let mut diagonal = vec![1.0f64; n];
    for i in 0..n {
        for &j in pattern.neighbors(i) {
            if j > i {
                let value = -rng.gen_range(0.1..1.0);
                coo.push(j, i, value);
                diagonal[i] += value.abs();
                diagonal[j] += value.abs();
            }
        }
    }
    for (i, &d) in diagonal.iter().enumerate() {
        coo.push_diagonal(i, d);
    }
    coo.to_csr()
}

/// Convenience: a 2-D grid Laplacian with SPD values.
pub fn grid2d_matrix(nx: usize, ny: usize, seed: u64) -> SymmetricCsr {
    spd_matrix_from_pattern(&grid2d_5pt(nx, ny), seed)
}

/// A small catalogue of generated problems covering the structural regimes
/// of the paper's data set, used by the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemKind {
    /// 5-point 2-D grid.
    Grid2d,
    /// 5-point 2-D grid with a 16:1 aspect ratio.  Nested-dissection
    /// separators stay bounded by the short side, so the elimination tree is
    /// bushy with many balanced subtrees — the shape anisotropic meshes
    /// produce in practice, and the regime where subtree-level parallelism
    /// pays off (a square grid concentrates half its factorization work in
    /// the top separators, which no subtree cut can parallelize).
    Grid2dWide,
    /// 9-point 2-D grid.
    Grid2d9,
    /// 7-point 3-D grid.
    Grid3d,
    /// Banded matrix.
    Banded,
    /// Uniform random pattern.
    Random,
    /// Power-law (skewed-degree) pattern.
    PowerLaw,
}

impl ProblemKind {
    /// All problem kinds.
    pub const ALL: [ProblemKind; 7] = [
        ProblemKind::Grid2d,
        ProblemKind::Grid2dWide,
        ProblemKind::Grid2d9,
        ProblemKind::Grid3d,
        ProblemKind::Banded,
        ProblemKind::Random,
        ProblemKind::PowerLaw,
    ];

    /// Short name used in experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            ProblemKind::Grid2d => "grid2d",
            ProblemKind::Grid2dWide => "grid2dwide",
            ProblemKind::Grid2d9 => "grid2d9",
            ProblemKind::Grid3d => "grid3d",
            ProblemKind::Banded => "banded",
            ProblemKind::Random => "random",
            ProblemKind::PowerLaw => "powerlaw",
        }
    }

    /// Inverse of [`ProblemKind::name`]: resolve a report name back to the
    /// kind (used by configuration parsers).
    pub fn from_name(name: &str) -> Option<ProblemKind> {
        ProblemKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Generate an instance of roughly `target_n` unknowns.
    pub fn generate(&self, target_n: usize, seed: u64) -> SparsePattern {
        match self {
            ProblemKind::Grid2d => {
                let side = (target_n as f64).sqrt().round().max(2.0) as usize;
                grid2d_5pt(side, side)
            }
            ProblemKind::Grid2dWide => {
                let short = ((target_n as f64) / 16.0).sqrt().round().max(2.0) as usize;
                let long = (target_n / short).max(2);
                grid2d_5pt(long, short)
            }
            ProblemKind::Grid2d9 => {
                let side = (target_n as f64).sqrt().round().max(2.0) as usize;
                grid2d_9pt(side, side)
            }
            ProblemKind::Grid3d => {
                let side = (target_n as f64).cbrt().round().max(2.0) as usize;
                grid3d_7pt(side, side, side)
            }
            ProblemKind::Banded => banded(target_n.max(4), 8),
            ProblemKind::Random => random_spd_pattern(target_n.max(4), 4.0, seed),
            ProblemKind::PowerLaw => {
                power_law_pattern(target_n.max(4), target_n.max(4) * 3, 1.6, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2d_structure() {
        let pattern = grid2d_5pt(3, 4);
        assert_eq!(pattern.n(), 12);
        // Interior vertex (1,1) = index 4 has 4 neighbours.
        assert_eq!(pattern.degree(4), 4);
        // Corner vertex 0 has 2 neighbours.
        assert_eq!(pattern.degree(0), 2);
        assert!(pattern.is_symmetric());
        assert_eq!(pattern.connected_components(), 1);
    }

    #[test]
    fn grid2d_9pt_has_more_entries() {
        let five = grid2d_5pt(5, 5);
        let nine = grid2d_9pt(5, 5);
        assert!(nine.nnz() > five.nnz());
        assert_eq!(nine.n(), five.n());
        // Interior vertex has 8 neighbours with the 9-point stencil.
        assert_eq!(nine.degree(12), 8);
    }

    #[test]
    fn grid3d_structure() {
        let pattern = grid3d_7pt(3, 3, 3);
        assert_eq!(pattern.n(), 27);
        // The centre vertex has 6 neighbours.
        assert_eq!(pattern.degree(13), 6);
        assert_eq!(pattern.connected_components(), 1);
    }

    #[test]
    fn banded_degrees() {
        let pattern = banded(10, 2);
        assert_eq!(pattern.degree(5), 4);
        assert_eq!(pattern.degree(0), 2);
        assert_eq!(pattern.degree(9), 2);
    }

    #[test]
    fn random_patterns_are_connected_and_reproducible() {
        let a = random_spd_pattern(200, 4.0, 9);
        let b = random_spd_pattern(200, 4.0, 9);
        assert_eq!(a, b);
        assert_eq!(a.connected_components(), 1);
        assert!(a.nnz_per_row() >= 2.5, "paper's density threshold");
        let p = power_law_pattern(200, 600, 1.6, 9);
        assert_eq!(p.connected_components(), 1);
        // The most connected vertex dominates.
        let max_degree = (0..p.n()).map(|i| p.degree(i)).max().unwrap();
        assert!(max_degree > 10);
    }

    #[test]
    fn spd_values_are_diagonally_dominant() {
        let matrix = grid2d_matrix(4, 4, 3);
        let dense = matrix.to_dense();
        for j in 0..matrix.n() {
            let off: f64 = dense
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != j)
                .map(|(_, row)| row[j].abs())
                .sum();
            assert!(dense[j][j] > off, "column {j} not diagonally dominant");
        }
    }

    #[test]
    fn problem_catalogue_generates_every_kind() {
        for kind in ProblemKind::ALL {
            let pattern = kind.generate(150, 5);
            assert!(pattern.n() >= 100, "{}: unexpectedly small", kind.name());
            assert!(pattern.is_symmetric());
        }
    }

    #[test]
    fn names_round_trip() {
        for kind in ProblemKind::ALL {
            assert_eq!(ProblemKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(ProblemKind::from_name("nope"), None);
    }
}
