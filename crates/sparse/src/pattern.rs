//! Symmetric sparse patterns and numeric symmetric CSR storage.

use std::fmt;

/// The adjacency structure of a sparse symmetric matrix: for every row `i`,
/// the sorted list of columns `j ≠ i` such that the entry `(i, j)` (or
/// `(j, i)`) is structurally nonzero.  The diagonal is implicit (assumed
/// nonzero everywhere), matching the symmetrised pattern `|A| + |Aᵀ| + I`
/// used by the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsePattern {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
}

impl SparsePattern {
    /// Build a pattern from unsymmetrised (row, column) pairs: duplicates and
    /// self loops are removed and the pattern is symmetrised.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(i, j) in edges {
            assert!(
                i < n && j < n,
                "index out of range: ({i}, {j}) with n = {n}"
            );
            if i == j {
                continue;
            }
            adjacency[i].push(j);
            adjacency[j].push(i);
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0);
        for list in adjacency.iter_mut() {
            list.sort_unstable();
            list.dedup();
            col_idx.extend_from_slice(list);
            row_ptr.push(col_idx.len());
        }
        SparsePattern {
            n,
            row_ptr,
            col_idx,
        }
    }

    /// Dimension of the matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored off-diagonal entries (each symmetric pair counted
    /// twice, as in an adjacency structure).
    pub fn nnz_off_diagonal(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of structural nonzeros of the full symmetric matrix, including
    /// the diagonal: `n + nnz_off_diagonal()`.
    pub fn nnz(&self) -> usize {
        self.n + self.col_idx.len()
    }

    /// Approximate heap footprint of the CSR arrays in bytes (what the
    /// serving caches charge a cached pattern for).
    pub fn heap_bytes(&self) -> u64 {
        ((self.row_ptr.len() + self.col_idx.len()) * std::mem::size_of::<usize>()) as u64
    }

    /// Average number of nonzeros per row (including the diagonal).
    pub fn nnz_per_row(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.n as f64
        }
    }

    /// Neighbours of vertex `i` (off-diagonal nonzero columns of row `i`),
    /// sorted increasingly.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Degree of vertex `i` (number of off-diagonal entries in row `i`).
    pub fn degree(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Whether the stored structure is symmetric (it always is when built
    /// through the public constructors; exposed for tests and I/O).
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.n {
            for &j in self.neighbors(i) {
                if self.neighbors(j).binary_search(&i).is_err() {
                    return false;
                }
            }
        }
        true
    }

    /// Apply a symmetric permutation: entry `(i, j)` of the result is entry
    /// `(perm[i], perm[j])` of the original, i.e. `perm[k]` is the original
    /// index of the vertex placed at position `k` (a "new-to-old" map).
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn permute(&self, perm: &[usize]) -> SparsePattern {
        assert_eq!(perm.len(), self.n, "permutation length mismatch");
        let mut old_to_new = vec![usize::MAX; self.n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(
                old < self.n && old_to_new[old] == usize::MAX,
                "not a permutation"
            );
            old_to_new[old] = new;
        }
        let mut edges: Vec<(usize, usize)> = Vec::with_capacity(self.col_idx.len() / 2);
        for i in 0..self.n {
            for &j in self.neighbors(i) {
                if j > i {
                    edges.push((old_to_new[i], old_to_new[j]));
                }
            }
        }
        SparsePattern::from_edges(self.n, &edges)
    }

    /// Lower-triangular column structure: for every column `j`, the sorted
    /// row indices `i > j` with a structural nonzero.  This is the input
    /// format used by the symbolic factorization.
    pub fn lower_columns(&self) -> Vec<Vec<usize>> {
        (0..self.n)
            .map(|j| {
                self.neighbors(j)
                    .iter()
                    .copied()
                    .filter(|&i| i > j)
                    .collect()
            })
            .collect()
    }

    /// Number of connected components of the adjacency graph.
    pub fn connected_components(&self) -> usize {
        let mut seen = vec![false; self.n];
        let mut components = 0;
        let mut stack = Vec::new();
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            components += 1;
            seen[start] = true;
            stack.push(start);
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v) {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
        }
        components
    }
}

impl fmt::Display for SparsePattern {
    fn fmt(&self, fmt: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(fmt, "SparsePattern(n = {}, nnz = {})", self.n, self.nnz())
    }
}

/// A numeric symmetric matrix stored as the lower triangle (diagonal
/// included) in compressed sparse column order, used by the multifrontal
/// demonstration.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricCsr {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SymmetricCsr {
    /// Build from per-column (row, value) pairs of the lower triangle.  Rows
    /// within a column are sorted; the diagonal entry must be present in
    /// every column.
    ///
    /// # Panics
    /// Panics if a column is missing its diagonal entry or an index is out of
    /// range.
    pub fn from_lower_columns(n: usize, columns: Vec<Vec<(usize, f64)>>) -> Self {
        assert_eq!(columns.len(), n);
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for (j, mut column) in columns.into_iter().enumerate() {
            column.sort_by_key(|&(row, _)| row);
            column.dedup_by_key(|&mut (row, _)| row);
            assert!(
                column.first().map(|&(row, _)| row) == Some(j),
                "column {j} must contain its diagonal entry"
            );
            for (row, value) in column {
                assert!(
                    row >= j && row < n,
                    "entry ({row}, {j}) is not in the lower triangle"
                );
                row_idx.push(row);
                values.push(value);
            }
            col_ptr.push(row_idx.len());
        }
        SymmetricCsr {
            n,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Dimension of the matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored (lower-triangular) entries.
    pub fn nnz_lower(&self) -> usize {
        self.row_idx.len()
    }

    /// Approximate heap footprint of the CSC arrays in bytes.
    pub fn heap_bytes(&self) -> u64 {
        use std::mem::size_of;
        ((self.col_ptr.len() + self.row_idx.len()) * size_of::<usize>()
            + self.values.len() * size_of::<f64>()) as u64
    }

    /// Stored entries of column `j` as parallel slices `(rows, values)`.
    pub fn column(&self, j: usize) -> (&[usize], &[f64]) {
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        (&self.row_idx[range.clone()], &self.values[range])
    }

    /// Value of entry `(i, j)` (with `i >= j`), or 0 when not stored.
    pub fn get_lower(&self, i: usize, j: usize) -> f64 {
        let (rows, values) = self.column(j);
        match rows.binary_search(&i) {
            Ok(pos) => values[pos],
            Err(_) => 0.0,
        }
    }

    /// The adjacency pattern of the matrix (off-diagonal structure).
    pub fn pattern(&self) -> SparsePattern {
        let edges: Vec<(usize, usize)> = (0..self.n)
            .flat_map(|j| {
                let (rows, _) = self.column(j);
                rows.iter()
                    .filter(move |&&i| i != j)
                    .map(move |&i| (i, j))
                    .collect::<Vec<_>>()
            })
            .collect();
        SparsePattern::from_edges(self.n, &edges)
    }

    /// Dense symmetric matrix (row-major, `n × n`), for testing against
    /// reference algorithms on small problems.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut dense = vec![vec![0.0; self.n]; self.n];
        #[allow(clippy::needless_range_loop)]
        for j in 0..self.n {
            let (rows, values) = self.column(j);
            for (&i, &v) in rows.iter().zip(values) {
                dense[i][j] = v;
                dense[j][i] = v;
            }
        }
        dense
    }

    /// Multiply by a dense vector: `y = A x` (using the symmetric structure).
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for j in 0..self.n {
            let (rows, values) = self.column(j);
            for (&i, &v) in rows.iter().zip(values) {
                y[i] += v * x[j];
                if i != j {
                    y[j] += v * x[i];
                }
            }
        }
        y
    }

    /// Apply a symmetric permutation (same convention as
    /// [`SparsePattern::permute`]: `perm[k]` is the original index placed at
    /// position `k`).
    pub fn permute(&self, perm: &[usize]) -> SymmetricCsr {
        assert_eq!(perm.len(), self.n);
        let mut old_to_new = vec![usize::MAX; self.n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(
                old < self.n && old_to_new[old] == usize::MAX,
                "not a permutation"
            );
            old_to_new[old] = new;
        }
        let mut columns: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.n];
        for j in 0..self.n {
            let (rows, values) = self.column(j);
            for (&i, &v) in rows.iter().zip(values) {
                let (mut ni, mut nj) = (old_to_new[i], old_to_new[j]);
                if ni < nj {
                    std::mem::swap(&mut ni, &mut nj);
                }
                columns[nj].push((ni, v));
            }
        }
        SymmetricCsr::from_lower_columns(self.n, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> SparsePattern {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        SparsePattern::from_edges(n, &edges)
    }

    #[test]
    fn pattern_from_edges_symmetrises_and_dedups() {
        let pattern = SparsePattern::from_edges(4, &[(0, 1), (1, 0), (1, 1), (2, 3), (0, 1)]);
        assert_eq!(pattern.n(), 4);
        assert_eq!(pattern.nnz_off_diagonal(), 4); // (0,1),(1,0),(2,3),(3,2)
        assert_eq!(pattern.nnz(), 8);
        assert_eq!(pattern.neighbors(0), &[1]);
        assert_eq!(pattern.neighbors(1), &[0]);
        assert_eq!(pattern.neighbors(3), &[2]);
        assert_eq!(pattern.degree(1), 1);
        assert!(pattern.is_symmetric());
        assert_eq!(pattern.connected_components(), 2);
    }

    #[test]
    fn permute_reverses_a_path() {
        let pattern = path_graph(4);
        let perm = vec![3, 2, 1, 0];
        let permuted = pattern.permute(&perm);
        // Reversing a path yields a path.
        assert_eq!(permuted.neighbors(0), &[1]);
        assert_eq!(permuted.neighbors(1), &[0, 2]);
        assert!(permuted.is_symmetric());
        assert_eq!(permuted.nnz(), pattern.nnz());
    }

    #[test]
    fn lower_columns_only_keep_larger_rows() {
        let pattern = SparsePattern::from_edges(4, &[(0, 2), (1, 2), (2, 3)]);
        let lower = pattern.lower_columns();
        assert_eq!(lower[0], vec![2]);
        assert_eq!(lower[1], vec![2]);
        assert_eq!(lower[2], vec![3]);
        assert!(lower[3].is_empty());
    }

    #[test]
    fn csr_roundtrip_and_multiply() {
        // [2 1 0]
        // [1 3 1]
        // [0 1 4]
        let matrix = SymmetricCsr::from_lower_columns(
            3,
            vec![
                vec![(0, 2.0), (1, 1.0)],
                vec![(1, 3.0), (2, 1.0)],
                vec![(2, 4.0)],
            ],
        );
        assert_eq!(matrix.nnz_lower(), 5);
        assert_eq!(matrix.get_lower(1, 0), 1.0);
        assert_eq!(matrix.get_lower(2, 0), 0.0);
        let dense = matrix.to_dense();
        assert_eq!(dense[0], vec![2.0, 1.0, 0.0]);
        assert_eq!(dense[1], vec![1.0, 3.0, 1.0]);
        let y = matrix.multiply(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![4.0, 10.0, 14.0]);
        let pattern = matrix.pattern();
        assert_eq!(pattern.neighbors(1), &[0, 2]);
    }

    #[test]
    fn csr_permutation_preserves_the_spectrum_sample() {
        let matrix = SymmetricCsr::from_lower_columns(
            3,
            vec![
                vec![(0, 2.0), (1, 1.0)],
                vec![(1, 3.0), (2, 1.0)],
                vec![(2, 4.0)],
            ],
        );
        let permuted = matrix.permute(&[2, 0, 1]);
        // Entry (old 2, old 2) = 4 moved to position (0, 0).
        assert_eq!(permuted.get_lower(0, 0), 4.0);
        // Entry (old 1, old 0) = 1 is now between positions 2 and 1.
        assert_eq!(permuted.get_lower(2, 1), 1.0);
        // Multiplying by the all-ones vector is permutation-invariant as a multiset.
        let mut a = matrix.multiply(&[1.0; 3]);
        let mut b = permuted.multiply(&[1.0; 3]);
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn csr_requires_diagonal_entries() {
        SymmetricCsr::from_lower_columns(2, vec![vec![(0, 1.0)], vec![]]);
    }
}
