//! # sparsemat — sparse symmetric matrices for assembly-tree construction
//!
//! This crate is the data substrate of the reproduction: the paper evaluates
//! its algorithms on assembly trees built from matrices of the University of
//! Florida Sparse Matrix Collection; since that collection is external data,
//! this crate provides **synthetic generators** spanning the same structural
//! regimes (regular grids from discretised PDEs, banded systems, random and
//! power-law patterns) together with the basic sparse data structures needed
//! by the `ordering`, `symbolic` and `multifrontal` crates:
//!
//! * [`SparsePattern`] — the adjacency structure of a sparse **symmetric**
//!   matrix (the graph of `|A| + |Aᵀ| + I`, self-loops removed), which is all
//!   the ordering and symbolic-factorization algorithms need;
//! * [`Coo`] and [`SymmetricCsr`] — numeric triplet and compressed storage
//!   for the multifrontal demonstration;
//! * [`gen`] — synthetic problem generators;
//! * [`matrixmarket`] — MatrixMarket I/O so real matrices can be plugged in
//!   when available.

pub mod coo;
pub mod gen;
pub mod matrixmarket;
pub mod pattern;

pub use coo::Coo;
pub use pattern::{SparsePattern, SymmetricCsr};
