//! Minimal MatrixMarket (`.mtx`) coordinate-format reader and writer.
//!
//! Only the subset needed here is supported: `matrix coordinate
//! real|pattern|integer symmetric|general`.  General matrices are
//! symmetrised on read (the paper uses the pattern of `|A| + |Aᵀ| + I`), so
//! any coordinate `.mtx` file can be used as an input to the assembly-tree
//! pipeline in place of the synthetic generators.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read};

use crate::pattern::SparsePattern;

/// Errors raised while parsing a MatrixMarket file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixMarketError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// The format is valid MatrixMarket but not supported (e.g. dense array
    /// format or complex values).
    Unsupported(String),
    /// The size line or an entry line could not be parsed.
    BadLine { line_number: usize, content: String },
    /// An index is outside the declared dimensions.
    IndexOutOfRange {
        line_number: usize,
        row: usize,
        col: usize,
    },
    /// Fewer entries than announced.
    UnexpectedEof,
    /// Underlying I/O failure.
    Io(String),
}

impl std::fmt::Display for MatrixMarketError {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixMarketError::BadHeader(line) => write!(fmt, "bad MatrixMarket header: {line}"),
            MatrixMarketError::Unsupported(what) => {
                write!(fmt, "unsupported MatrixMarket variant: {what}")
            }
            MatrixMarketError::BadLine {
                line_number,
                content,
            } => {
                write!(fmt, "cannot parse line {line_number}: {content}")
            }
            MatrixMarketError::IndexOutOfRange {
                line_number,
                row,
                col,
            } => {
                write!(
                    fmt,
                    "index ({row}, {col}) out of range at line {line_number}"
                )
            }
            MatrixMarketError::UnexpectedEof => write!(fmt, "fewer entries than announced"),
            MatrixMarketError::Io(err) => write!(fmt, "I/O error: {err}"),
        }
    }
}

impl std::error::Error for MatrixMarketError {}

/// Parse a MatrixMarket coordinate file into a symmetric [`SparsePattern`]
/// (values, if present, are ignored; the pattern is symmetrised).
pub fn read_pattern<R: Read>(reader: R) -> Result<SparsePattern, MatrixMarketError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();

    // Header.
    let (_, header) = lines
        .next()
        .ok_or_else(|| MatrixMarketError::BadHeader(String::new()))
        .map(|(i, l)| (i, l.map_err(|e| MatrixMarketError::Io(e.to_string()))))?;
    let header = header?;
    let tokens: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if tokens.len() < 4 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(MatrixMarketError::BadHeader(header));
    }
    if tokens[2] != "coordinate" {
        return Err(MatrixMarketError::Unsupported(format!(
            "format '{}'",
            tokens[2]
        )));
    }
    if !matches!(tokens[3].as_str(), "real" | "pattern" | "integer") {
        return Err(MatrixMarketError::Unsupported(format!(
            "field '{}'",
            tokens[3]
        )));
    }
    let has_values = tokens[3] != "pattern";

    // Size line (skipping comments).
    let mut size_line = None;
    for (line_number, line) in lines.by_ref() {
        let line = line.map_err(|e| MatrixMarketError::Io(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some((line_number, trimmed.to_string()));
        break;
    }
    let (size_line_number, size_line) = size_line.ok_or(MatrixMarketError::UnexpectedEof)?;
    let sizes: Vec<usize> = size_line
        .split_whitespace()
        .filter_map(|t| t.parse().ok())
        .collect();
    if sizes.len() != 3 {
        return Err(MatrixMarketError::BadLine {
            line_number: size_line_number + 1,
            content: size_line,
        });
    }
    let (rows, cols, nnz) = (sizes[0], sizes[1], sizes[2]);
    let n = rows.max(cols);

    let mut edges = Vec::with_capacity(nnz);
    let mut seen = 0usize;
    for (line_number, line) in lines {
        if seen == nnz {
            break;
        }
        let line = line.map_err(|e| MatrixMarketError::Io(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let row: usize = fields.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
            MatrixMarketError::BadLine {
                line_number: line_number + 1,
                content: trimmed.to_string(),
            }
        })?;
        let col: usize = fields.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
            MatrixMarketError::BadLine {
                line_number: line_number + 1,
                content: trimmed.to_string(),
            }
        })?;
        if has_values && fields.next().is_none() {
            return Err(MatrixMarketError::BadLine {
                line_number: line_number + 1,
                content: trimmed.to_string(),
            });
        }
        if row == 0 || col == 0 || row > n || col > n {
            return Err(MatrixMarketError::IndexOutOfRange {
                line_number: line_number + 1,
                row,
                col,
            });
        }
        edges.push((row - 1, col - 1));
        seen += 1;
    }
    if seen != nnz {
        return Err(MatrixMarketError::UnexpectedEof);
    }
    Ok(SparsePattern::from_edges(n, &edges))
}

/// Serialise a pattern as a MatrixMarket `pattern symmetric` coordinate file
/// (lower triangle plus the implicit unit diagonal).
pub fn write_pattern(pattern: &SparsePattern) -> String {
    let mut out = String::new();
    let lower: Vec<(usize, usize)> = (0..pattern.n())
        .flat_map(|j| {
            pattern
                .neighbors(j)
                .iter()
                .filter(move |&&i| i > j)
                .map(move |&i| (i, j))
        })
        .collect();
    let _ = writeln!(out, "%%MatrixMarket matrix coordinate pattern symmetric");
    let _ = writeln!(out, "% written by sparsemat");
    let _ = writeln!(
        out,
        "{} {} {}",
        pattern.n(),
        pattern.n(),
        lower.len() + pattern.n()
    );
    for j in 0..pattern.n() {
        let _ = writeln!(out, "{} {}", j + 1, j + 1);
    }
    for (i, j) in lower {
        let _ = writeln!(out, "{} {}", i + 1, j + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid2d_5pt;

    #[test]
    fn roundtrip_through_matrix_market() {
        let pattern = grid2d_5pt(4, 3);
        let text = write_pattern(&pattern);
        let parsed = read_pattern(text.as_bytes()).unwrap();
        assert_eq!(parsed, pattern);
    }

    #[test]
    fn reads_general_real_files_and_symmetrises() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 4\n\
                    1 1 2.0\n\
                    2 1 -1.0\n\
                    1 3 0.5\n\
                    3 3 4.0\n";
        let pattern = read_pattern(text.as_bytes()).unwrap();
        assert_eq!(pattern.n(), 3);
        assert_eq!(pattern.neighbors(0), &[1, 2]);
        assert!(pattern.is_symmetric());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(
            read_pattern("not a header\n".as_bytes()),
            Err(MatrixMarketError::BadHeader(_))
        ));
        assert!(matches!(
            read_pattern("%%MatrixMarket matrix array real general\n2 2\n1.0\n".as_bytes()),
            Err(MatrixMarketError::Unsupported(_))
        ));
        let missing = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 1.0\n";
        assert_eq!(
            read_pattern(missing.as_bytes()),
            Err(MatrixMarketError::UnexpectedEof)
        );
        let out_of_range = "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n5 1\n";
        assert!(matches!(
            read_pattern(out_of_range.as_bytes()),
            Err(MatrixMarketError::IndexOutOfRange { .. })
        ));
    }
}
