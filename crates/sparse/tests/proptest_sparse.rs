//! Property-based tests for the sparse-matrix substrate.
//!
//! The environment is offline, so instead of `proptest` these tests draw a
//! deterministic battery of random instances from the `prng` crate: every
//! case is reproducible from its seed, printed in assertion messages.

use prng::{Rng, StdRng};

use sparsemat::gen::{banded, grid2d_5pt, random_spd_pattern, spd_matrix_from_pattern};
use sparsemat::matrixmarket::{read_pattern, write_pattern};
use sparsemat::{Coo, SparsePattern};

/// Random `(n, edge list)` pair, possibly with self loops and duplicates
/// (which `SparsePattern::from_edges` must clean up).
fn arbitrary_edges(seed: u64, max_n: usize, max_edges: usize) -> (usize, Vec<(usize, usize)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..=max_n);
    let count = rng.gen_range(0..=max_edges);
    let edges = (0..count)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    (n, edges)
}

#[test]
fn patterns_are_always_symmetric_and_deduplicated() {
    for seed in 0..64 {
        let (n, edges) = arbitrary_edges(seed, 40, 200);
        let pattern = SparsePattern::from_edges(n, &edges);
        assert!(pattern.is_symmetric(), "seed {seed}");
        assert_eq!(pattern.n(), n, "seed {seed}");
        // No self loops and no duplicates: neighbours are strictly increasing.
        for i in 0..n {
            let neighbors = pattern.neighbors(i);
            for pair in neighbors.windows(2) {
                assert!(pair[0] < pair[1], "seed {seed}");
            }
            assert!(!neighbors.contains(&i), "seed {seed}");
        }
        // Off-diagonal entries come in pairs.
        assert_eq!(pattern.nnz_off_diagonal() % 2, 0, "seed {seed}");
    }
}

#[test]
fn permutation_preserves_structure_statistics() {
    for seed in 100..164 {
        let (n, edges) = arbitrary_edges(seed, 30, 120);
        let pattern = SparsePattern::from_edges(n, &edges);
        // Build a deterministic pseudo-random permutation from the seed.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed;
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let permuted = pattern.permute(&perm);
        assert_eq!(permuted.nnz(), pattern.nnz(), "seed {seed}");
        assert_eq!(
            permuted.connected_components(),
            pattern.connected_components(),
            "seed {seed}"
        );
        let mut original_degrees: Vec<usize> = (0..n).map(|i| pattern.degree(i)).collect();
        let mut permuted_degrees: Vec<usize> = (0..n).map(|i| permuted.degree(i)).collect();
        original_degrees.sort_unstable();
        permuted_degrees.sort_unstable();
        assert_eq!(original_degrees, permuted_degrees, "seed {seed}");
    }
}

#[test]
fn matrix_market_roundtrip() {
    for seed in 200..264 {
        let (n, edges) = arbitrary_edges(seed, 30, 120);
        let pattern = SparsePattern::from_edges(n, &edges);
        let text = write_pattern(&pattern);
        let parsed = read_pattern(text.as_bytes()).unwrap();
        assert_eq!(parsed, pattern, "seed {seed}");
    }
}

#[test]
fn coo_duplicates_sum_and_match_dense() {
    for seed in 300..364 {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.gen_range(1..40);
        let entries: Vec<(usize, usize, f64)> = (0..count)
            .map(|_| {
                (
                    rng.gen_range(0..8usize),
                    rng.gen_range(0..8usize),
                    rng.gen_range(-5.0..5.0),
                )
            })
            .collect();
        let mut coo = Coo::new(8);
        let mut dense = vec![vec![0.0f64; 8]; 8];
        for &(i, j, v) in &entries {
            coo.push(i, j, v);
            if i == j {
                dense[i][i] += v;
            } else {
                dense[i.max(j)][i.min(j)] += v;
                dense[i.min(j)][i.max(j)] += v;
            }
        }
        let csr = coo.to_csr();
        let rebuilt = csr.to_dense();
        for i in 0..8 {
            for j in 0..8 {
                assert!(
                    (rebuilt[i][j] - dense[i][j]).abs() < 1e-9,
                    "seed {seed}, entry ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn spd_generator_is_diagonally_dominant() {
    for seed in 400..464 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(3..30usize);
        let pattern = random_spd_pattern(n, 3.0, seed);
        let matrix = spd_matrix_from_pattern(&pattern, seed);
        let dense = matrix.to_dense();
        for (j, row) in dense.iter().enumerate() {
            let off: f64 = dense
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != j)
                .map(|(_, other)| other[j].abs())
                .sum();
            assert!(row[j] > off, "seed {seed}");
        }
        // Symmetric multiply agrees with the dense product.
        let x: Vec<f64> = (0..n).map(|i| (i as f64) - (n as f64) / 2.0).collect();
        let y = matrix.multiply(&x);
        for (i, row) in dense.iter().enumerate() {
            let expected: f64 = row.iter().zip(&x).map(|(a, b)| a * b).sum();
            assert!((y[i] - expected).abs() < 1e-9, "seed {seed}");
        }
    }
}

#[test]
fn generators_have_documented_shapes() {
    // Non-property sanity checks that pin the generator shapes used in DESIGN.md.
    let grid = grid2d_5pt(10, 10);
    assert_eq!(grid.n(), 100);
    assert_eq!(grid.nnz_off_diagonal(), 2 * (2 * 10 * 9));
    let band = banded(50, 3);
    assert!(band.degree(25) == 6);
}
