//! Property-based tests for the sparse-matrix substrate.

use proptest::prelude::*;

use sparsemat::gen::{banded, grid2d_5pt, random_spd_pattern, spd_matrix_from_pattern};
use sparsemat::matrixmarket::{read_pattern, write_pattern};
use sparsemat::{Coo, SparsePattern};

fn arbitrary_edges(max_n: usize, max_edges: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2..=max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..=max_edges);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn patterns_are_always_symmetric_and_deduplicated((n, edges) in arbitrary_edges(40, 200)) {
        let pattern = SparsePattern::from_edges(n, &edges);
        prop_assert!(pattern.is_symmetric());
        prop_assert_eq!(pattern.n(), n);
        // No self loops and no duplicates: neighbours are strictly increasing.
        for i in 0..n {
            let neighbors = pattern.neighbors(i);
            for pair in neighbors.windows(2) {
                prop_assert!(pair[0] < pair[1]);
            }
            prop_assert!(!neighbors.contains(&i));
        }
        // Off-diagonal entries come in pairs.
        prop_assert_eq!(pattern.nnz_off_diagonal() % 2, 0);
    }

    #[test]
    fn permutation_preserves_structure_statistics((n, edges) in arbitrary_edges(30, 120), seed in 0u64..1000) {
        let pattern = SparsePattern::from_edges(n, &edges);
        // Build a deterministic pseudo-random permutation from the seed.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let permuted = pattern.permute(&perm);
        prop_assert_eq!(permuted.nnz(), pattern.nnz());
        prop_assert_eq!(permuted.connected_components(), pattern.connected_components());
        let mut original_degrees: Vec<usize> = (0..n).map(|i| pattern.degree(i)).collect();
        let mut permuted_degrees: Vec<usize> = (0..n).map(|i| permuted.degree(i)).collect();
        original_degrees.sort_unstable();
        permuted_degrees.sort_unstable();
        prop_assert_eq!(original_degrees, permuted_degrees);
    }

    #[test]
    fn matrix_market_roundtrip((n, edges) in arbitrary_edges(30, 120)) {
        let pattern = SparsePattern::from_edges(n, &edges);
        let text = write_pattern(&pattern);
        let parsed = read_pattern(text.as_bytes()).unwrap();
        prop_assert_eq!(parsed, pattern);
    }

    #[test]
    fn coo_duplicates_sum_and_match_dense(entries in proptest::collection::vec((0usize..8, 0usize..8, -5.0f64..5.0), 1..40)) {
        let mut coo = Coo::new(8);
        let mut dense = vec![vec![0.0f64; 8]; 8];
        for &(i, j, v) in &entries {
            coo.push(i, j, v);
            if i == j {
                dense[i][i] += v;
            } else {
                dense[i.max(j)][i.min(j)] += v;
                dense[i.min(j)][i.max(j)] += v;
            }
        }
        let csr = coo.to_csr();
        let rebuilt = csr.to_dense();
        for i in 0..8 {
            for j in 0..8 {
                prop_assert!((rebuilt[i][j] - dense[i][j]).abs() < 1e-9, "entry ({},{})", i, j);
            }
        }
    }

    #[test]
    fn spd_generator_is_diagonally_dominant(n in 3usize..30, seed in 0u64..500) {
        let pattern = random_spd_pattern(n, 3.0, seed);
        let matrix = spd_matrix_from_pattern(&pattern, seed);
        let dense = matrix.to_dense();
        for j in 0..n {
            let off: f64 = (0..n).filter(|&i| i != j).map(|i| dense[i][j].abs()).sum();
            prop_assert!(dense[j][j] > off);
        }
        // Symmetric multiply agrees with the dense product.
        let x: Vec<f64> = (0..n).map(|i| (i as f64) - (n as f64) / 2.0).collect();
        let y = matrix.multiply(&x);
        for i in 0..n {
            let expected: f64 = (0..n).map(|j| dense[i][j] * x[j]).sum();
            prop_assert!((y[i] - expected).abs() < 1e-9);
        }
    }
}

#[test]
fn generators_have_documented_shapes() {
    // Non-property sanity checks that pin the generator shapes used in DESIGN.md.
    let grid = grid2d_5pt(10, 10);
    assert_eq!(grid.n(), 100);
    assert_eq!(grid.nnz_off_diagonal(), 2 * (2 * 10 * 9));
    let band = banded(50, 3);
    assert!(band.degree(25) == 6);
}
