//! Seeded property battery for the distributed wire format.
//!
//! Three properties, each over many seeded random instances:
//!
//! 1. **Round-trip exactness** — tasks and contribution frames decode back
//!    to bit-identical payloads (floats compared by `to_bits`, not `==`).
//! 2. **NaN-freedom** — non-finite floats cannot cross the wire in either
//!    direction: the encoder writes raw bit patterns, the decoder rejects
//!    them with a typed error.
//! 3. **Hostility tolerance** — truncating, padding, or corrupting a valid
//!    frame at any byte yields a typed [`WireError`] (the serving layer's
//!    clean 400), never a panic.

use distrib::{
    contribution_frame, decode_frame, encode_frame, ClaimReply, Contribution, SubtreeTask,
    WireError,
};
use engine::{EngineConfig, SubtreeParts};
use multifrontal::{ContributionStore, DenseMatrix};
use ordering::OrderingMethod;
use prng::{Rng, StdRng};
use sparsemat::gen::ProblemKind;

// Miri interprets every instruction, so it runs this battery for decoder
// memory-safety rather than statistical coverage; the native round counts
// would take hours there.
const TASK_ROUNDS: usize = if cfg!(miri) { 4 } else { 64 };
const CONTRIBUTION_ROUNDS: u64 = if cfg!(miri) { 3 } else { 48 };
const CORRUPTION_ROUNDS: usize = if cfg!(miri) { 32 } else { 500 };
const TRUNCATION_STRIDE: usize = if cfg!(miri) { 97 } else { 1 };

fn random_finite(rng: &mut StdRng) -> f64 {
    // Spread across magnitudes and signs; always finite.
    let magnitude = 10f64.powi(rng.gen_range(-30i32..=30));
    let value = (rng.gen::<f64>() * 2.0 - 1.0) * magnitude;
    if value.is_finite() {
        value
    } else {
        0.0
    }
}

fn random_parts(rng: &mut StdRng) -> SubtreeParts {
    let column_count = rng.gen_range(0usize..=12);
    let mut columns = Vec::with_capacity(column_count);
    for _ in 0..column_count {
        let column = rng.gen_range(0usize..100_000);
        let height = rng.gen_range(1usize..=8);
        let rows: Vec<usize> = (0..height)
            .map(|_| rng.gen_range(0usize..1 << 20))
            .collect();
        let values: Vec<f64> = (0..height).map(|_| random_finite(rng)).collect();
        columns.push((column, rows, values));
    }
    let mut blocks = ContributionStore::new();
    let mut block_entries = 0u64;
    let block_count = rng.gen_range(0usize..=4);
    let mut used: Vec<usize> = Vec::new();
    for _ in 0..block_count {
        let column = rng.gen_range(0usize..10_000);
        if used.contains(&column) {
            continue;
        }
        used.push(column);
        let n = rng.gen_range(1usize..=5);
        let rows: Vec<usize> = (0..n).map(|i| column + i).collect();
        let values: Vec<f64> = (0..n * n).map(|_| random_finite(rng)).collect();
        block_entries += (n * n) as u64;
        blocks.insert_block(column, rows, DenseMatrix::from_column_major(n, values));
    }
    SubtreeParts {
        columns,
        blocks,
        block_entries,
    }
}

fn assert_parts_bit_identical(decoded: &SubtreeParts, original: &SubtreeParts) {
    assert_eq!(decoded.columns.len(), original.columns.len());
    for ((ca, ra, va), (cb, rb, vb)) in decoded.columns.iter().zip(&original.columns) {
        assert_eq!(ca, cb);
        assert_eq!(ra, rb);
        assert_eq!(va.len(), vb.len());
        assert!(va.iter().zip(vb).all(|(a, b)| a.to_bits() == b.to_bits()));
    }
    assert_eq!(decoded.block_entries, original.block_entries);
    let decoded_blocks = decoded.blocks.sorted_blocks();
    let original_blocks = original.blocks.sorted_blocks();
    assert_eq!(decoded_blocks.len(), original_blocks.len());
    for ((ca, ra, ba), (cb, rb, bb)) in decoded_blocks.iter().zip(&original_blocks) {
        assert_eq!(ca, cb);
        assert_eq!(ra, rb);
        assert_eq!(ba.n(), bb.n());
        assert!(ba
            .column_major()
            .iter()
            .zip(bb.column_major())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}

#[test]
fn random_tasks_round_trip_exactly() {
    let config = EngineConfig::generated(ProblemKind::Grid2d, 400, 11)
        .with_ordering(OrderingMethod::NestedDissection)
        .with_numeric(true);
    let mut rng = StdRng::seed_from_u64(0x5eed_0001);
    for _ in 0..TASK_ROUNDS {
        let order_len = rng.gen_range(1usize..=64);
        let task = SubtreeTask {
            job: rng.gen::<u64>(),
            task: rng.gen_range(0usize..4096),
            epoch: rng.gen::<u64>(),
            lease_ms: rng.gen_range(10u64..=3_600_000),
            config: config.to_json(),
            order: (0..order_len)
                .map(|_| rng.gen_range(0usize..1 << 20))
                .collect(),
        };
        match ClaimReply::from_frame(&task.to_frame()).unwrap() {
            ClaimReply::Task(parsed) => assert_eq!(*parsed, task),
            other => panic!("expected a task, got {other:?}"),
        }
    }
}

#[test]
fn random_contributions_round_trip_bit_for_bit() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0002);
    for round in 0..CONTRIBUTION_ROUNDS {
        let parts = random_parts(&mut rng);
        let frame = contribution_frame(
            round,
            rng.gen_range(0usize..4096),
            rng.gen::<u64>(),
            &format!("worker-{round}"),
            rng.gen::<f64>() * 100.0,
            &parts,
        );
        let decoded = Contribution::from_frame(&frame).unwrap();
        assert_eq!(decoded.job, round);
        assert_eq!(decoded.worker, format!("worker-{round}"));
        assert_parts_bit_identical(&decoded.parts, &parts);
    }
}

#[test]
fn non_finite_floats_cannot_cross_the_wire() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let parts = SubtreeParts {
            columns: vec![(0, vec![0], vec![bad])],
            blocks: ContributionStore::new(),
            block_entries: 0,
        };
        let frame = contribution_frame(1, 0, 1, "w", 0.0, &parts);
        assert!(matches!(
            Contribution::from_frame(&frame),
            Err(WireError::NonFinite(_))
        ));
    }
}

#[test]
fn mangled_frames_never_panic() {
    let parts = SubtreeParts {
        columns: vec![(3, vec![3, 5], vec![2.0, -0.25])],
        blocks: ContributionStore::new(),
        block_entries: 0,
    };
    let frame = contribution_frame(2, 1, 3, "w-0", 1.5, &parts);

    // Every truncation point is a typed error (Miri samples the points).
    for cut in (0..frame.len()).step_by(TRUNCATION_STRIDE) {
        assert!(Contribution::from_frame(&frame[..cut]).is_err());
    }
    // Padding is a typed error.
    let mut padded = frame.clone();
    padded.extend_from_slice(b"garbage");
    assert!(matches!(
        Contribution::from_frame(&padded),
        Err(WireError::TrailingBytes { .. })
    ));

    // Seeded single-byte corruption: decode must return, never panic.
    // (Many corruptions still decode fine — e.g. a flipped value bit — so
    // only absence of panics and of non-finite leaks is asserted.)
    let mut rng = StdRng::seed_from_u64(0x5eed_0003);
    for _ in 0..CORRUPTION_ROUNDS {
        let mut mangled = frame.clone();
        let at = rng.gen_range(0usize..mangled.len());
        mangled[at] = rng.gen_range(0u64..=255) as u8;
        if let Ok(contribution) = Contribution::from_frame(&mangled) {
            for (_, _, values) in &contribution.parts.columns {
                assert!(values.iter().all(|value| value.is_finite()));
            }
        }
    }
}

#[test]
fn oversized_declared_lengths_are_rejected_before_allocation() {
    let huge = format!("distrib_wire/v1 {}\n", usize::MAX);
    assert!(matches!(
        decode_frame(huge.as_bytes()),
        Err(WireError::Oversized { .. })
    ));
    // A frame at exactly the declared size of its body still decodes.
    let ok = encode_frame("{}");
    assert_eq!(decode_frame(&ok).unwrap(), "{}");
}
