//! Cluster-wide counters for the coordinator's `/stats` endpoint.
//!
//! Every counter is a relaxed atomic: the serving layer bumps them from
//! request-handler threads and snapshots them lock-free; only the distinct
//! worker roster needs a mutex (it is touched once per worker lifetime).
//!
//! The counters obey one reconciliation invariant the serving tests assert:
//! once all jobs are complete, `tasks_claimed == tasks_completed +
//! lease_expiries` — every claim either produced an accepted contribution
//! or its lease was reaped and the task re-issued.

use std::sync::atomic::{AtomicU64, Ordering};

use treemem::sync::TrackedMutex;

/// Shared counter block; one per coordinator process.
#[derive(Debug)]
pub struct ClusterStats {
    /// Jobs registered with the coordinator.
    pub jobs_started: AtomicU64,
    /// Jobs whose every task has an accepted contribution.
    pub jobs_completed: AtomicU64,
    /// Task leases handed out (re-issues count again).
    pub tasks_claimed: AtomicU64,
    /// Contributions accepted.
    pub tasks_completed: AtomicU64,
    /// Tasks pushed back to the pending queue after a lease expired.
    pub tasks_requeued: AtomicU64,
    /// Leases reaped past their monotonic deadline.
    pub lease_expiries: AtomicU64,
    /// Contributions rejected for echoing a stale lease epoch.
    pub stale_contributions: AtomicU64,
    /// Accepted contribution payload bytes (frame bodies).
    pub contribution_bytes: AtomicU64,
    workers: TrackedMutex<Vec<String>>,
}

impl Default for ClusterStats {
    fn default() -> ClusterStats {
        ClusterStats {
            jobs_started: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            tasks_claimed: AtomicU64::new(0),
            tasks_completed: AtomicU64::new(0),
            tasks_requeued: AtomicU64::new(0),
            lease_expiries: AtomicU64::new(0),
            stale_contributions: AtomicU64::new(0),
            contribution_bytes: AtomicU64::new(0),
            workers: TrackedMutex::new(Vec::new(), "cluster-stats.workers"),
        }
    }
}

/// A point-in-time copy of [`ClusterStats`], safe to render after the
/// atomics move on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSnapshot {
    /// Jobs registered with the coordinator.
    pub jobs_started: u64,
    /// Jobs whose every task has an accepted contribution.
    pub jobs_completed: u64,
    /// Task leases handed out (re-issues count again).
    pub tasks_claimed: u64,
    /// Contributions accepted.
    pub tasks_completed: u64,
    /// Tasks pushed back to the pending queue after a lease expired.
    pub tasks_requeued: u64,
    /// Leases reaped past their monotonic deadline.
    pub lease_expiries: u64,
    /// Contributions rejected for echoing a stale lease epoch.
    pub stale_contributions: u64,
    /// Accepted contribution payload bytes.
    pub contribution_bytes: u64,
    /// Distinct worker identities seen, in first-claim order.
    pub workers: Vec<String>,
}

impl ClusterStats {
    /// Fresh, all-zero counters.
    pub fn new() -> ClusterStats {
        ClusterStats::default()
    }

    /// Record a worker identity; returns its roster index (first-claim
    /// order), which jobs use for per-worker busy-time accounting.
    pub fn note_worker(&self, worker: &str) -> usize {
        let mut roster = self.workers.lock();
        if let Some(index) = roster.iter().position(|known| known == worker) {
            index
        } else {
            roster.push(worker.to_string());
            roster.len() - 1
        }
    }

    /// Copy every counter.
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            jobs_started: self.jobs_started.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            tasks_claimed: self.tasks_claimed.load(Ordering::Relaxed),
            tasks_completed: self.tasks_completed.load(Ordering::Relaxed),
            tasks_requeued: self.tasks_requeued.load(Ordering::Relaxed),
            lease_expiries: self.lease_expiries.load(Ordering::Relaxed),
            stale_contributions: self.stale_contributions.load(Ordering::Relaxed),
            contribution_bytes: self.contribution_bytes.load(Ordering::Relaxed),
            workers: self.workers.lock().clone(),
        }
    }
}

/// Bump a counter by one.
pub(crate) fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

impl ClusterSnapshot {
    /// Render as the `cluster` object of the serving layer's `/stats`
    /// document.
    pub fn to_json_fragment(&self) -> String {
        let workers = self
            .workers
            .iter()
            .map(|worker| format!("\"{}\"", engine::json::escape(worker)))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"workers\": [{workers}], \"jobs_started\": {}, \"jobs_completed\": {}, \
             \"tasks_claimed\": {}, \"tasks_completed\": {}, \"tasks_requeued\": {}, \
             \"lease_expiries\": {}, \"stale_contributions\": {}, \"contribution_bytes\": {}}}",
            self.jobs_started,
            self.jobs_completed,
            self.tasks_claimed,
            self.tasks_completed,
            self.tasks_requeued,
            self.lease_expiries,
            self.stale_contributions,
            self.contribution_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::json::Json;

    #[test]
    fn the_worker_roster_dedupes_and_keeps_first_claim_order() {
        let stats = ClusterStats::new();
        assert_eq!(stats.note_worker("b"), 0);
        assert_eq!(stats.note_worker("a"), 1);
        assert_eq!(stats.note_worker("b"), 0);
        assert_eq!(stats.snapshot().workers, vec!["b", "a"]);
    }

    #[test]
    fn snapshots_render_as_valid_json() {
        let stats = ClusterStats::new();
        stats.note_worker("w-\"quoted\"");
        bump(&stats.tasks_claimed);
        bump(&stats.tasks_completed);
        let json = Json::parse(&stats.snapshot().to_json_fragment()).unwrap();
        assert_eq!(json.get("tasks_claimed").and_then(Json::as_u64), Some(1));
        assert_eq!(
            json.get("workers")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
    }
}
