//! Coordinator-side job registry: task leases, epochs and re-issue.
//!
//! A **job** is one distributed factorization: the coordinator plans the
//! cut, registers the per-task column orders and modeled peaks here, and
//! then workers drive the state machine over HTTP:
//!
//! ```text
//!            claim                    contribute (epoch match)
//! Pending ────────────▶ Leased{deadline} ────────────▶ Done
//!    ▲                      │
//!    └──────────────────────┘ lease reaped past its monotonic deadline
//! ```
//!
//! Two decisions carry the fault-tolerance story:
//!
//! * **Deadlines are monotonic.**  Lease deadlines come from
//!   [`engine::monotonic_millis`], never wall time — an NTP step or a
//!   suspended laptop must not mass-expire (or immortalize) leases.
//! * **Epochs fence stale work.**  A task's epoch increments on *every*
//!   claim, so a contribution from a worker whose lease was reaped and
//!   re-issued echoes an old epoch and is rejected with a typed error
//!   (HTTP 409 at the serving layer).  The re-issued lease's work is the
//!   bit-identical computation, so dropping the stale copy is lossless.
//!
//! Claims are gated by the job's [`BudgetLedger`]: a worker only receives a
//! task when its modeled peak fits the cluster-level memory budget next to
//! the peaks of currently-leased tasks and the retained contribution blocks
//! of finished ones.  The ledger force-admits the smallest pending task
//! when nothing is running, so a budget below the largest subtree degrades
//! to sequential issue instead of deadlocking the cluster.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use engine::{monotonic_millis, CancelToken, DistributedRuntime, SubtreeParts};
use multifrontal::parallel::{BudgetLedger, ReserveSelection};
use treemem::sync::{TrackedCondvar, TrackedGuard, TrackedMutex};

use crate::stats::{bump, ClusterStats};
use crate::wire::{ClaimReply, Contribution, SubtreeTask};

/// Everything the coordinator knows about a job at registration time.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Canonical engine-configuration JSON (workers re-derive the matrix
    /// and symbolic structure from this).
    pub config_json: String,
    /// Lease duration per claim, milliseconds.
    pub lease_ms: u64,
    /// Bottom-up column order of each subtree task.
    pub task_orders: Vec<Vec<usize>>,
    /// Modeled peak entries of each task (the ledger reservation).
    pub task_peaks: Vec<u64>,
    /// Cluster-level memory budget in entries, if bounded.
    pub budget_entries: Option<u64>,
}

/// Why a contribution was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContributeError {
    /// No job with that id (finished jobs are removed after the merge).
    UnknownJob,
    /// Task index out of range for the job's cut.
    UnknownTask,
    /// The contribution echoes an epoch older than the current lease —
    /// the sender's lease was reaped and the task re-issued.
    StaleEpoch,
    /// The task already has an accepted contribution.
    AlreadyDone,
}

impl std::fmt::Display for ContributeError {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContributeError::UnknownJob => write!(fmt, "unknown job"),
            ContributeError::UnknownTask => write!(fmt, "unknown task"),
            ContributeError::StaleEpoch => {
                write!(fmt, "stale lease epoch: the task was re-issued")
            }
            ContributeError::AlreadyDone => write!(fmt, "task already completed"),
        }
    }
}

impl std::error::Error for ContributeError {}

/// Why [`Job::wait_for_completion`] gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// The caller's timeout elapsed before every task completed.
    TimedOut,
    /// The caller's cancel token fired.
    Cancelled,
}

#[derive(Debug)]
enum Phase {
    Pending,
    Leased { deadline_ms: u64 },
    Done,
}

#[derive(Debug)]
struct TaskState {
    order: Vec<usize>,
    peak: u64,
    phase: Phase,
    /// Increments on every claim; the fence against stale contributions.
    epoch: u64,
    parts: Option<SubtreeParts>,
}

#[derive(Debug, Default)]
struct JobState {
    tasks: Vec<TaskState>,
    completed: usize,
    claimed: u64,
    requeued: u64,
    lease_expiries: u64,
    contribution_bytes: u64,
    /// Per-worker busy seconds, in first-claim order for this job.
    worker_busy: Vec<(String, f64)>,
}

impl JobState {
    /// Move every lease past its deadline back to `Pending`, releasing its
    /// ledger reservation and bumping the epoch so late contributions from
    /// the dead lease are fenced out.
    fn reap_expired(&mut self, now_ms: u64, ledger: &BudgetLedger, stats: &ClusterStats) {
        for task in &mut self.tasks {
            if let Phase::Leased { deadline_ms } = task.phase {
                if now_ms >= deadline_ms {
                    task.phase = Phase::Pending;
                    task.epoch += 1;
                    ledger.finish_task(task.peak, 0);
                    self.lease_expiries += 1;
                    self.requeued += 1;
                    bump(&stats.lease_expiries);
                    bump(&stats.tasks_requeued);
                }
            }
        }
    }
}

/// One registered distributed factorization.
pub struct Job {
    id: u64,
    config_json: String,
    lease_ms: u64,
    ledger: BudgetLedger,
    state: TrackedMutex<JobState>,
    progress: TrackedCondvar,
    /// Monotonic registration instant ([`monotonic_millis`]), so the
    /// claim-wall clock survives NTP steps like the lease deadlines do.
    started_ms: u64,
    stats: Arc<ClusterStats>,
}

impl Job {
    /// The coordinator-assigned id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of subtree tasks in the cut.
    pub fn task_count(&self) -> usize {
        self.state.lock().tasks.len()
    }

    fn lock(&self) -> TrackedGuard<'_, JobState> {
        self.state.lock()
    }

    /// Try to lease one pending task to `worker`.  Returns `None` when
    /// nothing is claimable right now — either every remaining task is
    /// leased out, or the budget gate is closed while other leases run.
    /// Never blocks beyond the state lock: HTTP handlers call this.
    pub fn try_claim(&self, worker: &str) -> Option<SubtreeTask> {
        let now_ms = monotonic_millis();
        let mut state = self.lock();
        state.reap_expired(now_ms, &self.ledger, &self.stats);
        let pending: Vec<usize> = state
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, task)| matches!(task.phase, Phase::Pending))
            .map(|(index, _)| index)
            .collect();
        if pending.is_empty() {
            return None;
        }
        let peaks: Vec<u64> = pending
            .iter()
            .map(|&index| state.tasks[index].peak)
            .collect();
        let chosen = match self.ledger.select_and_reserve(&peaks) {
            ReserveSelection::Selected(slot) => pending[slot],
            ReserveSelection::Blocked(_) => return None,
        };
        let task = &mut state.tasks[chosen];
        task.phase = Phase::Leased {
            deadline_ms: now_ms.saturating_add(self.lease_ms),
        };
        task.epoch += 1;
        let issued = SubtreeTask {
            job: self.id,
            task: chosen,
            epoch: task.epoch,
            lease_ms: self.lease_ms,
            config: self.config_json.clone(),
            order: task.order.clone(),
        };
        state.claimed += 1;
        if !state.worker_busy.iter().any(|(name, _)| name == worker) {
            state.worker_busy.push((worker.to_string(), 0.0));
        }
        bump(&self.stats.tasks_claimed);
        self.stats.note_worker(worker);
        Some(issued)
    }

    /// Accept one task's output, if its lease epoch is still current.
    /// `frame_bytes` is the size of the contribution frame, for the
    /// transfer-volume counters.
    pub fn contribute(
        &self,
        contribution: Contribution,
        frame_bytes: u64,
    ) -> Result<(), ContributeError> {
        let mut state = self.lock();
        // Reap first so a contribution racing its own expired lease is
        // consistently judged stale rather than winning the race.
        state.reap_expired(monotonic_millis(), &self.ledger, &self.stats);
        let task_count = state.tasks.len();
        let task = state
            .tasks
            .get_mut(contribution.task)
            .ok_or(ContributeError::UnknownTask)?;
        match task.phase {
            Phase::Done => {
                bump(&self.stats.stale_contributions);
                return Err(ContributeError::AlreadyDone);
            }
            Phase::Pending => {
                bump(&self.stats.stale_contributions);
                return Err(ContributeError::StaleEpoch);
            }
            Phase::Leased { .. } if contribution.epoch != task.epoch => {
                bump(&self.stats.stale_contributions);
                return Err(ContributeError::StaleEpoch);
            }
            Phase::Leased { .. } => {}
        }
        // The task's peak reservation shrinks to the contribution blocks it
        // leaves behind for the merge; those stay reserved until the
        // coordinator absorbs them (`release_retained` after the wait).
        self.ledger
            .finish_task(task.peak, contribution.parts.block_entries);
        task.phase = Phase::Done;
        task.parts = Some(contribution.parts);
        state.completed += 1;
        state.contribution_bytes += frame_bytes;
        if let Some(slot) = state
            .worker_busy
            .iter_mut()
            .find(|(name, _)| name == &contribution.worker)
        {
            slot.1 += contribution.busy_seconds;
        } else {
            state
                .worker_busy
                .push((contribution.worker.clone(), contribution.busy_seconds));
        }
        bump(&self.stats.tasks_completed);
        self.stats
            .contribution_bytes
            .fetch_add(frame_bytes, Ordering::Relaxed);
        if state.completed == task_count {
            bump(&self.stats.jobs_completed);
        }
        drop(state);
        self.progress.notify_all();
        Ok(())
    }

    /// Block until every task has an accepted contribution, reaping expired
    /// leases while waiting so dead workers' tasks go back on the queue.
    /// Returns the parts in task order plus the runtime half of the
    /// distributed report, and releases the retained ledger reservations.
    pub fn wait_for_completion(
        &self,
        timeout_ms: Option<u64>,
        cancel: Option<&CancelToken>,
    ) -> Result<(Vec<SubtreeParts>, DistributedRuntime), WaitError> {
        let wait_started = monotonic_millis();
        // Wake often enough to reap leases promptly, but at least every
        // 50ms so cancellation stays responsive.
        let tick = std::time::Duration::from_millis((self.lease_ms / 4).clamp(5, 50));
        let mut state = self.lock();
        loop {
            state.reap_expired(monotonic_millis(), &self.ledger, &self.stats);
            if state.completed == state.tasks.len() {
                break;
            }
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(WaitError::Cancelled);
            }
            if let Some(limit) = timeout_ms {
                if monotonic_millis().saturating_sub(wait_started) >= limit {
                    return Err(WaitError::TimedOut);
                }
            }
            let (next, _) = self.progress.wait_timeout(state, tick);
            state = next;
        }
        let mut parts = Vec::with_capacity(state.tasks.len());
        let mut retained = 0u64;
        for task in &mut state.tasks {
            let taken = task.parts.take().expect("completed task without parts");
            retained += taken.block_entries;
            parts.push(taken);
        }
        debug_assert_eq!(
            state.claimed,
            state.completed as u64 + state.lease_expiries,
            "every claim must end in a contribution or an expiry"
        );
        let runtime = DistributedRuntime {
            workers: state.worker_busy.len(),
            tasks_requeued: state.requeued,
            lease_expiries: state.lease_expiries,
            contribution_bytes: state.contribution_bytes,
            claim_wall_seconds: monotonic_millis().saturating_sub(self.started_ms) as f64 / 1e3,
            worker_busy_seconds: state.worker_busy.iter().map(|(_, busy)| *busy).collect(),
        };
        drop(state);
        self.ledger.release_retained(retained);
        Ok((parts, runtime))
    }

    /// Render progress as the `/internal/job/{id}` JSON document.
    pub fn progress_json(&self) -> String {
        let mut state = self.lock();
        state.reap_expired(monotonic_millis(), &self.ledger, &self.stats);
        let leased = state
            .tasks
            .iter()
            .filter(|task| matches!(task.phase, Phase::Leased { .. }))
            .count();
        format!(
            "{{\"job\": {}, \"tasks\": {}, \"completed\": {}, \"leased\": {}, \
             \"pending\": {}, \"claimed\": {}, \"requeued\": {}, \"lease_expiries\": {}, \
             \"contribution_bytes\": {}, \"done\": {}}}",
            self.id,
            state.tasks.len(),
            state.completed,
            leased,
            state.tasks.len() - state.completed - leased,
            state.claimed,
            state.requeued,
            state.lease_expiries,
            state.contribution_bytes,
            state.completed == state.tasks.len(),
        )
    }
}

/// All live jobs of one coordinator process.
pub struct JobRegistry {
    jobs: TrackedMutex<Vec<Arc<Job>>>,
    next_id: AtomicU64,
    stats: Arc<ClusterStats>,
}

impl JobRegistry {
    /// An empty registry sharing `stats` with the serving layer.
    pub fn new(stats: Arc<ClusterStats>) -> JobRegistry {
        JobRegistry {
            jobs: TrackedMutex::new(Vec::new(), "job-registry.jobs"),
            next_id: AtomicU64::new(1),
            stats,
        }
    }

    /// The shared counter block.
    pub fn stats(&self) -> &Arc<ClusterStats> {
        &self.stats
    }

    /// Register a job; its tasks become claimable immediately.
    pub fn register(&self, spec: JobSpec) -> Arc<Job> {
        assert_eq!(
            spec.task_orders.len(),
            spec.task_peaks.len(),
            "one peak per task order"
        );
        let tasks = spec
            .task_orders
            .into_iter()
            .zip(spec.task_peaks)
            .map(|(order, peak)| TaskState {
                order,
                peak,
                phase: Phase::Pending,
                epoch: 0,
                parts: None,
            })
            .collect();
        let job = Arc::new(Job {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            config_json: spec.config_json,
            lease_ms: spec.lease_ms,
            ledger: BudgetLedger::new(spec.budget_entries),
            state: TrackedMutex::new(
                JobState {
                    tasks,
                    ..JobState::default()
                },
                "job.state",
            ),
            progress: TrackedCondvar::new(),
            started_ms: monotonic_millis(),
            stats: Arc::clone(&self.stats),
        });
        self.jobs.lock().push(Arc::clone(&job));
        bump(&self.stats.jobs_started);
        job
    }

    /// Answer one worker claim poll: the first job (registration order)
    /// with a claimable task wins; `Wait` when jobs exist but nothing is
    /// claimable right now; `Idle` when no job needs work.
    pub fn claim(&self, worker: &str) -> ClaimReply {
        let jobs: Vec<Arc<Job>> = self.jobs.lock().clone();
        let mut any_incomplete = false;
        for job in jobs {
            if let Some(task) = job.try_claim(worker) {
                return ClaimReply::Task(Box::new(task));
            }
            let state = job.lock();
            any_incomplete |= state.completed < state.tasks.len();
        }
        if any_incomplete {
            ClaimReply::Wait {
                retry_ms: self.suggested_retry_ms(),
            }
        } else {
            ClaimReply::Idle
        }
    }

    fn suggested_retry_ms(&self) -> u64 {
        // A fraction of the shortest live lease keeps re-issued tasks from
        // sitting unclaimed; clamp so workers neither spin nor stall.
        let jobs = self.jobs.lock();
        let shortest = jobs.iter().map(|job| job.lease_ms).min().unwrap_or(1_000);
        (shortest / 4).clamp(10, 500)
    }

    /// Route a contribution to its job.
    pub fn contribute(
        &self,
        contribution: Contribution,
        frame_bytes: u64,
    ) -> Result<(), ContributeError> {
        let job = self
            .job(contribution.job)
            .ok_or(ContributeError::UnknownJob)?;
        job.contribute(contribution, frame_bytes)
    }

    /// Look up a live job.
    pub fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs.lock().iter().find(|job| job.id == id).cloned()
    }

    /// Drop a finished (or abandoned) job; subsequent contributions answer
    /// `UnknownJob`.
    pub fn remove(&self, id: u64) {
        self.jobs.lock().retain(|job| job.id != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::contribution_frame;
    use multifrontal::ContributionStore;

    fn registry() -> JobRegistry {
        JobRegistry::new(Arc::new(ClusterStats::new()))
    }

    fn spec(orders: Vec<Vec<usize>>, peaks: Vec<u64>, budget: Option<u64>) -> JobSpec {
        JobSpec {
            config_json: "{}".to_string(),
            lease_ms: 10_000,
            task_orders: orders,
            task_peaks: peaks,
            budget_entries: budget,
        }
    }

    fn parts(entries: u64) -> SubtreeParts {
        SubtreeParts {
            columns: vec![(0, vec![0], vec![1.0])],
            blocks: ContributionStore::new(),
            block_entries: entries,
        }
    }

    fn contribution_for(task: &SubtreeTask, entries: u64) -> (Contribution, u64) {
        contribution_from(task, "w-test", entries)
    }

    fn contribution_from(task: &SubtreeTask, worker: &str, entries: u64) -> (Contribution, u64) {
        let frame = contribution_frame(
            task.job,
            task.task,
            task.epoch,
            worker,
            0.25,
            &parts(entries),
        );
        let bytes = frame.len() as u64;
        (Contribution::from_frame(&frame).unwrap(), bytes)
    }

    #[test]
    fn the_full_lease_lifecycle_reconciles() {
        let registry = registry();
        let job = registry.register(spec(vec![vec![0], vec![1]], vec![5, 5], None));
        let first = job.try_claim("w-a").unwrap();
        let second = job.try_claim("w-b").unwrap();
        assert_ne!(first.task, second.task);
        assert!(job.try_claim("w-a").is_none());

        let (contribution, bytes) = contribution_from(&first, "w-a", 3);
        registry.contribute(contribution, bytes).unwrap();
        let (contribution, bytes) = contribution_from(&second, "w-b", 2);
        registry.contribute(contribution, bytes).unwrap();

        let (parts, runtime) = job.wait_for_completion(Some(1_000), None).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(runtime.workers, 2);
        assert_eq!(runtime.lease_expiries, 0);
        assert_eq!(runtime.tasks_requeued, 0);
        assert!(runtime.contribution_bytes > 0);

        let snapshot = registry.stats().snapshot();
        assert_eq!(snapshot.tasks_claimed, 2);
        assert_eq!(snapshot.tasks_completed, 2);
        assert_eq!(snapshot.jobs_completed, 1);
        assert_eq!(
            snapshot.tasks_claimed,
            snapshot.tasks_completed + snapshot.lease_expiries
        );
    }

    #[test]
    fn expired_leases_requeue_and_fence_out_the_old_epoch() {
        let registry = registry();
        let job = registry.register(JobSpec {
            lease_ms: 10,
            ..spec(vec![vec![0]], vec![5], None)
        });
        let stale = job.try_claim("w-dead").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));

        // The reap happens on the next claim: the task is re-issued with a
        // fresh epoch to a surviving worker.
        let reissued = job.try_claim("w-alive").unwrap();
        assert_eq!(reissued.task, stale.task);
        assert!(reissued.epoch > stale.epoch);

        // The dead worker's late contribution is fenced out...
        let (late, bytes) = contribution_for(&stale, 1);
        assert_eq!(
            registry.contribute(late, bytes),
            Err(ContributeError::StaleEpoch)
        );
        // ...and the re-issued lease's copy is accepted.
        let (fresh, bytes) = contribution_for(&reissued, 1);
        registry.contribute(fresh, bytes).unwrap();
        let (fresh_again, bytes) = contribution_for(&reissued, 1);
        assert_eq!(
            registry.contribute(fresh_again, bytes),
            Err(ContributeError::AlreadyDone)
        );

        let (_, runtime) = job.wait_for_completion(Some(1_000), None).unwrap();
        assert_eq!(runtime.lease_expiries, 1);
        assert_eq!(runtime.tasks_requeued, 1);
        let snapshot = registry.stats().snapshot();
        assert_eq!(snapshot.stale_contributions, 2);
        assert_eq!(
            snapshot.tasks_claimed,
            snapshot.tasks_completed + snapshot.lease_expiries
        );
    }

    #[test]
    fn the_budget_gate_serializes_claims_that_do_not_fit_together() {
        let registry = registry();
        let job = registry.register(spec(vec![vec![0], vec![1]], vec![8, 6], Some(10)));
        let first = job.try_claim("w-a").unwrap();
        assert_eq!(first.task, 0);
        // 8 reserved + 6 requested > 10 while a lease runs: gate closed.
        assert!(job.try_claim("w-b").is_none());
        match registry.claim("w-b") {
            ClaimReply::Wait { retry_ms } => assert!(retry_ms >= 10),
            other => panic!("expected Wait, got {other:?}"),
        }
        // Finishing the first task retains 4 entries of blocks; 4 + 6 = 10
        // now fits and the second task becomes claimable.
        let (contribution, bytes) = contribution_for(&first, 4);
        registry.contribute(contribution, bytes).unwrap();
        let second = job.try_claim("w-b").unwrap();
        assert_eq!(second.task, 1);
        let (contribution, bytes) = contribution_for(&second, 0);
        registry.contribute(contribution, bytes).unwrap();
        job.wait_for_completion(Some(1_000), None).unwrap();
    }

    #[test]
    fn waits_time_out_and_cancel_cleanly() {
        let registry = registry();
        let job = registry.register(spec(vec![vec![0]], vec![1], None));
        assert!(matches!(
            job.wait_for_completion(Some(30), None),
            Err(WaitError::TimedOut)
        ));
        let cancel = CancelToken::new();
        cancel.cancel();
        assert!(matches!(
            job.wait_for_completion(None, Some(&cancel)),
            Err(WaitError::Cancelled)
        ));
    }

    #[test]
    fn unknown_jobs_and_tasks_are_typed_errors() {
        let registry = registry();
        let job = registry.register(spec(vec![vec![0]], vec![1], None));
        let task = job.try_claim("w").unwrap();
        let (mut contribution, bytes) = contribution_for(&task, 0);
        contribution.job = 999;
        assert_eq!(
            registry.contribute(contribution, bytes),
            Err(ContributeError::UnknownJob)
        );
        let (mut contribution, bytes) = contribution_for(&task, 0);
        contribution.task = 7;
        assert_eq!(
            registry.contribute(contribution, bytes),
            Err(ContributeError::UnknownTask)
        );
        registry.remove(job.id());
        assert!(registry.job(job.id()).is_none());
        match registry.claim("w") {
            ClaimReply::Idle => {}
            other => panic!("expected Idle, got {other:?}"),
        }
    }
}
