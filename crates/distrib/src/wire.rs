//! The versioned, length-prefixed wire format of the distributed layer.
//!
//! Every internal message is one **frame**: an ASCII header line
//! `distrib_wire/v1 <body-bytes>\n` followed by exactly that many bytes of
//! JSON.  The explicit length makes truncation and trailing garbage typed
//! decode errors (the coordinator answers 400, never panics), and the
//! leading schema token lets a v2 reader reject v1 peers with a clear
//! message instead of a JSON parse error.
//!
//! Floating-point payloads — factor column values and contribution blocks —
//! must survive the trip **bit for bit**: the merged factor is gated on
//! being identical to the single-process one, and a shortest-decimal detour
//! would also re-introduce the NaN/Infinity literals `engine::json` rejects.
//! So every `f64` travels as the 16 lowercase hex digits of its IEEE-754
//! bit pattern (base-2 exact by construction), concatenated into one string
//! per vector; row indices travel as concatenated 8-hex-digit `u32`s.  This
//! also keeps 10⁶-node frames compact: one string allocation per column
//! instead of one JSON number node per entry.

use engine::json::{escape, Json, JsonError};
use engine::{EngineConfig, SubtreeParts};
use multifrontal::{ContributionStore, DenseMatrix, FactorColumn};

/// Schema token every frame leads with.
pub const WIRE_SCHEMA: &str = "distrib_wire/v1";

/// Hard cap on one frame's body.  Contribution frames scale with the factor
/// (~24 wire bytes per stored entry), so the cap is generous — but it must
/// exist: the length prefix arrives from the network, and an unchecked
/// claim of terabytes would drive allocation before any validation runs.
pub const MAX_FRAME_BYTES: usize = 256 * 1024 * 1024;

/// Typed decode failures.  Every variant maps to an HTTP 400 at the
/// serving layer; none of them may panic, whatever the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame header line is missing or malformed.
    BadHeader(String),
    /// The header announces more body bytes than are present.
    Truncated {
        /// Bytes the header announced.
        expected: usize,
        /// Bytes actually present after the header.
        got: usize,
    },
    /// Bytes follow the announced body (a concatenation or framing bug).
    TrailingBytes {
        /// Bytes the header announced.
        expected: usize,
        /// Bytes actually present after the header.
        got: usize,
    },
    /// The announced body length exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// Bytes the header announced.
        bytes: usize,
        /// The cap.
        max: usize,
    },
    /// The body is not valid JSON.
    Json(String),
    /// A required field is missing or has the wrong type.
    Field(&'static str),
    /// A hex-packed vector is malformed (odd length, non-hex digit).
    BadHex(&'static str),
    /// A decoded float is NaN or infinite where a finite value is required.
    NonFinite(&'static str),
    /// The embedded engine configuration does not parse.
    Config(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadHeader(detail) => write!(fmt, "bad frame header: {detail}"),
            WireError::Truncated { expected, got } => {
                write!(
                    fmt,
                    "truncated frame: header says {expected} bytes, got {got}"
                )
            }
            WireError::TrailingBytes { expected, got } => {
                write!(
                    fmt,
                    "trailing bytes after frame: header says {expected} bytes, got {got}"
                )
            }
            WireError::Oversized { bytes, max } => {
                write!(
                    fmt,
                    "oversized frame: {bytes} bytes exceeds the {max}-byte cap"
                )
            }
            WireError::Json(detail) => write!(fmt, "frame body is not valid JSON: {detail}"),
            WireError::Field(field) => write!(fmt, "missing or mistyped field '{field}'"),
            WireError::BadHex(field) => write!(fmt, "malformed hex vector in '{field}'"),
            WireError::NonFinite(field) => write!(fmt, "non-finite value in '{field}'"),
            WireError::Config(detail) => write!(fmt, "embedded config does not parse: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<JsonError> for WireError {
    fn from(err: JsonError) -> Self {
        WireError::Json(err.to_string())
    }
}

/// A frame as a `String`, for transports that post text bodies.  Frames are
/// built from JSON text and therefore always valid UTF-8; the lossy
/// conversion exists so a hypothetical violation degrades a payload instead
/// of panicking a request handler.
pub fn frame_string(frame: &[u8]) -> String {
    String::from_utf8_lossy(frame).into_owned()
}

/// Wrap a JSON body into one length-prefixed frame.
pub fn encode_frame(body: &str) -> Vec<u8> {
    let mut frame = Vec::with_capacity(body.len() + WIRE_SCHEMA.len() + 16);
    frame.extend_from_slice(WIRE_SCHEMA.as_bytes());
    frame.push(b' ');
    frame.extend_from_slice(body.len().to_string().as_bytes());
    frame.push(b'\n');
    frame.extend_from_slice(body.as_bytes());
    frame
}

/// Unwrap a frame back into its JSON body, verifying the schema token, the
/// announced length (both directions) and the size cap.
pub fn decode_frame(bytes: &[u8]) -> Result<&str, WireError> {
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| WireError::BadHeader("no header line".to_string()))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| WireError::BadHeader("header is not UTF-8".to_string()))?;
    let (schema, length) = header
        .split_once(' ')
        .ok_or_else(|| WireError::BadHeader(format!("no length in {header:?}")))?;
    if schema != WIRE_SCHEMA {
        return Err(WireError::BadHeader(format!(
            "unsupported schema {schema:?} (this peer speaks {WIRE_SCHEMA})"
        )));
    }
    let expected: usize = length
        .parse()
        .map_err(|_| WireError::BadHeader(format!("non-numeric length {length:?}")))?;
    if expected > MAX_FRAME_BYTES {
        return Err(WireError::Oversized {
            bytes: expected,
            max: MAX_FRAME_BYTES,
        });
    }
    let body = &bytes[newline + 1..];
    if body.len() < expected {
        return Err(WireError::Truncated {
            expected,
            got: body.len(),
        });
    }
    if body.len() > expected {
        return Err(WireError::TrailingBytes {
            expected,
            got: body.len(),
        });
    }
    std::str::from_utf8(body).map_err(|_| WireError::Json("body is not UTF-8".to_string()))
}

/// Pack `f64`s as concatenated 16-hex-digit IEEE-754 bit patterns.
pub fn hex_f64s(values: &[f64]) -> String {
    let mut out = String::with_capacity(values.len() * 16);
    for value in values {
        out.push_str(&format!("{:016x}", value.to_bits()));
    }
    out
}

/// Unpack [`hex_f64s`], rejecting malformed hex and non-finite values.
pub fn parse_hex_f64s(text: &str, field: &'static str) -> Result<Vec<f64>, WireError> {
    if !text.len().is_multiple_of(16) || !text.is_ascii() {
        return Err(WireError::BadHex(field));
    }
    let mut values = Vec::with_capacity(text.len() / 16);
    for chunk in text.as_bytes().chunks_exact(16) {
        let digits = std::str::from_utf8(chunk).map_err(|_| WireError::BadHex(field))?;
        let bits = u64::from_str_radix(digits, 16).map_err(|_| WireError::BadHex(field))?;
        let value = f64::from_bits(bits);
        if !value.is_finite() {
            return Err(WireError::NonFinite(field));
        }
        values.push(value);
    }
    Ok(values)
}

/// Pack row indices as concatenated 8-hex-digit `u32`s.  Panics if an index
/// exceeds `u32::MAX` — matrix dimensions are capped far below that.
pub fn hex_u32s(values: &[usize]) -> String {
    let mut out = String::with_capacity(values.len() * 8);
    for &value in values {
        let narrow = u32::try_from(value).expect("row index exceeds the u32 wire range");
        out.push_str(&format!("{narrow:08x}"));
    }
    out
}

/// Unpack [`hex_u32s`].
pub fn parse_hex_u32s(text: &str, field: &'static str) -> Result<Vec<usize>, WireError> {
    if !text.len().is_multiple_of(8) || !text.is_ascii() {
        return Err(WireError::BadHex(field));
    }
    let mut values = Vec::with_capacity(text.len() / 8);
    for chunk in text.as_bytes().chunks_exact(8) {
        let digits = std::str::from_utf8(chunk).map_err(|_| WireError::BadHex(field))?;
        let value = u32::from_str_radix(digits, 16).map_err(|_| WireError::BadHex(field))?;
        let wide = usize::try_from(value).map_err(|_| WireError::BadHex(field))?;
        values.push(wide);
    }
    Ok(values)
}

fn field<'a>(json: &'a Json, name: &'static str) -> Result<&'a Json, WireError> {
    json.get(name).ok_or(WireError::Field(name))
}

fn u64_field(json: &Json, name: &'static str) -> Result<u64, WireError> {
    field(json, name)?.as_u64().ok_or(WireError::Field(name))
}

fn usize_field(json: &Json, name: &'static str) -> Result<usize, WireError> {
    field(json, name)?.as_usize().ok_or(WireError::Field(name))
}

fn str_field<'a>(json: &'a Json, name: &'static str) -> Result<&'a str, WireError> {
    field(json, name)?.as_str().ok_or(WireError::Field(name))
}

fn check_type(json: &Json, expected: &'static str) -> Result<(), WireError> {
    match json.get("type").and_then(Json::as_str) {
        Some(kind) if kind == expected => Ok(()),
        _ => Err(WireError::Field("type")),
    }
}

/// One subtree task as the coordinator issues it to a worker: the job and
/// task identity, the lease epoch the contribution must echo, the full
/// engine configuration (so the worker derives the identical matrix and
/// symbolic structure), and the task's bottom-up column order.
#[derive(Debug, Clone, PartialEq)]
pub struct SubtreeTask {
    /// Coordinator-assigned job id.
    pub job: u64,
    /// Task index within the job's cut.
    pub task: usize,
    /// Lease epoch; a contribution echoing a stale epoch is rejected.
    pub epoch: u64,
    /// Lease duration granted for this claim, in milliseconds.
    pub lease_ms: u64,
    /// Canonical engine-configuration JSON of the job.
    pub config: String,
    /// Bottom-up column order of the subtree.
    pub order: Vec<usize>,
}

impl SubtreeTask {
    /// Render as a claim-response frame.
    pub fn to_frame(&self) -> Vec<u8> {
        let body = format!(
            "{{\"schema\": \"{WIRE_SCHEMA}\", \"type\": \"task\", \"job\": {}, \
             \"task\": {}, \"epoch\": {}, \"lease_ms\": {}, \"config\": \"{}\", \
             \"order\": \"{}\"}}",
            self.job,
            self.task,
            self.epoch,
            self.lease_ms,
            escape(&self.config),
            hex_u32s(&self.order),
        );
        encode_frame(&body)
    }

    /// Parse a claim-response body previously produced by
    /// [`SubtreeTask::to_frame`].
    pub fn from_json(json: &Json) -> Result<SubtreeTask, WireError> {
        check_type(json, "task")?;
        let config = str_field(json, "config")?.to_string();
        // Validate the embedded configuration eagerly: a worker must learn
        // about a corrupt config at claim time, not deep inside planning.
        EngineConfig::from_json(&config).map_err(|err| WireError::Config(err.to_string()))?;
        Ok(SubtreeTask {
            job: u64_field(json, "job")?,
            task: usize_field(json, "task")?,
            epoch: u64_field(json, "epoch")?,
            lease_ms: u64_field(json, "lease_ms")?,
            config,
            order: parse_hex_u32s(str_field(json, "order")?, "order")?,
        })
    }
}

/// What a worker's claim poll comes back with.
#[derive(Debug, Clone, PartialEq)]
pub enum ClaimReply {
    /// A leased subtree task.
    Task(Box<SubtreeTask>),
    /// Nothing claimable right now (all leased out, or the budget gate is
    /// closed); poll again after `retry_ms`.
    Wait {
        /// Suggested poll backoff in milliseconds.
        retry_ms: u64,
    },
    /// No active job has work; poll again later (workers are long-lived).
    Idle,
}

impl ClaimReply {
    /// Render as a frame.
    pub fn to_frame(&self) -> Vec<u8> {
        match self {
            ClaimReply::Task(task) => task.to_frame(),
            ClaimReply::Wait { retry_ms } => encode_frame(&format!(
                "{{\"schema\": \"{WIRE_SCHEMA}\", \"type\": \"wait\", \"retry_ms\": {retry_ms}}}"
            )),
            ClaimReply::Idle => encode_frame(&format!(
                "{{\"schema\": \"{WIRE_SCHEMA}\", \"type\": \"idle\"}}"
            )),
        }
    }

    /// Decode a claim-response frame.
    pub fn from_frame(bytes: &[u8]) -> Result<ClaimReply, WireError> {
        let json = Json::parse(decode_frame(bytes)?)?;
        match json.get("type").and_then(Json::as_str) {
            Some("task") => Ok(ClaimReply::Task(Box::new(SubtreeTask::from_json(&json)?))),
            Some("wait") => Ok(ClaimReply::Wait {
                retry_ms: u64_field(&json, "retry_ms")?,
            }),
            Some("idle") => Ok(ClaimReply::Idle),
            _ => Err(WireError::Field("type")),
        }
    }
}

/// A claim request: which worker is asking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimRequest {
    /// Stable worker identity (used for lease bookkeeping and per-worker
    /// timings; pick something unique per process).
    pub worker: String,
}

impl ClaimRequest {
    /// Render as a frame.
    pub fn to_frame(&self) -> Vec<u8> {
        encode_frame(&format!(
            "{{\"schema\": \"{WIRE_SCHEMA}\", \"type\": \"claim\", \"worker\": \"{}\"}}",
            escape(&self.worker)
        ))
    }

    /// Decode a claim-request frame.
    pub fn from_frame(bytes: &[u8]) -> Result<ClaimRequest, WireError> {
        let json = Json::parse(decode_frame(bytes)?)?;
        check_type(&json, "claim")?;
        Ok(ClaimRequest {
            worker: str_field(&json, "worker")?.to_string(),
        })
    }
}

/// Serialize one finished task's [`SubtreeParts`] as a contribution frame,
/// without materializing an owned copy (contributions are the large
/// messages — the factor columns dominate).
pub fn contribution_frame(
    job: u64,
    task: usize,
    epoch: u64,
    worker: &str,
    busy_seconds: f64,
    parts: &SubtreeParts,
) -> Vec<u8> {
    let mut body = String::with_capacity(256 + parts.columns.len() * 64);
    body.push_str(&format!(
        "{{\"schema\": \"{WIRE_SCHEMA}\", \"type\": \"contribution\", \"job\": {job}, \
         \"task\": {task}, \"epoch\": {epoch}, \"worker\": \"{}\", \
         \"busy_seconds\": {:.6}, \"block_entries\": {}, \"columns\": [",
        escape(worker),
        busy_seconds,
        parts.block_entries,
    ));
    for (index, (column, rows, values)) in parts.columns.iter().enumerate() {
        if index > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "[{column},\"{}\",\"{}\"]",
            hex_u32s(rows),
            hex_f64s(values)
        ));
    }
    body.push_str("], \"blocks\": [");
    // Sorted by column: deterministic wire bytes for identical parts.
    for (index, (column, rows, block)) in parts.blocks.sorted_blocks().iter().enumerate() {
        if index > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "[{column},\"{}\",{},\"{}\"]",
            hex_u32s(rows),
            block.n(),
            hex_f64s(block.column_major())
        ));
    }
    body.push_str("]}");
    encode_frame(&body)
}

/// A decoded contribution: one task's factor columns and root blocks plus
/// the lease bookkeeping needed to accept or reject it.
#[derive(Debug)]
pub struct Contribution {
    /// Coordinator-assigned job id.
    pub job: u64,
    /// Task index within the job's cut.
    pub task: usize,
    /// The lease epoch this work was claimed under.
    pub epoch: u64,
    /// The contributing worker's identity.
    pub worker: String,
    /// Wall-clock seconds the worker spent factoring the subtree.
    pub busy_seconds: f64,
    /// The decoded task output.
    pub parts: SubtreeParts,
}

impl Contribution {
    /// Decode a contribution frame produced by [`contribution_frame`].
    pub fn from_frame(bytes: &[u8]) -> Result<Contribution, WireError> {
        let json = Json::parse(decode_frame(bytes)?)?;
        check_type(&json, "contribution")?;
        let busy_seconds = field(&json, "busy_seconds")?
            .as_f64()
            .ok_or(WireError::Field("busy_seconds"))?;
        if !busy_seconds.is_finite() || busy_seconds < 0.0 {
            return Err(WireError::NonFinite("busy_seconds"));
        }

        let mut columns: Vec<FactorColumn> = Vec::new();
        for entry in field(&json, "columns")?
            .as_array()
            .ok_or(WireError::Field("columns"))?
        {
            let triple = entry.as_array().ok_or(WireError::Field("columns"))?;
            let [column, rows, values] = triple else {
                return Err(WireError::Field("columns"));
            };
            let column = column.as_usize().ok_or(WireError::Field("columns"))?;
            let rows = parse_hex_u32s(
                rows.as_str().ok_or(WireError::Field("columns"))?,
                "columns.rows",
            )?;
            let values = parse_hex_f64s(
                values.as_str().ok_or(WireError::Field("columns"))?,
                "columns.values",
            )?;
            if rows.len() != values.len() {
                return Err(WireError::Field("columns"));
            }
            columns.push((column, rows, values));
        }

        let mut blocks = ContributionStore::new();
        let mut seen: Vec<usize> = Vec::new();
        for entry in field(&json, "blocks")?
            .as_array()
            .ok_or(WireError::Field("blocks"))?
        {
            let quad = entry.as_array().ok_or(WireError::Field("blocks"))?;
            let [column, rows, n, values] = quad else {
                return Err(WireError::Field("blocks"));
            };
            let column = column.as_usize().ok_or(WireError::Field("blocks"))?;
            if seen.contains(&column) {
                return Err(WireError::Field("blocks"));
            }
            seen.push(column);
            let rows = parse_hex_u32s(
                rows.as_str().ok_or(WireError::Field("blocks"))?,
                "blocks.rows",
            )?;
            let n = n.as_usize().ok_or(WireError::Field("blocks"))?;
            let values = parse_hex_f64s(
                values.as_str().ok_or(WireError::Field("blocks"))?,
                "blocks.values",
            )?;
            if rows.len() != n
                || values.len() != n.checked_mul(n).ok_or(WireError::Field("blocks"))?
            {
                return Err(WireError::Field("blocks"));
            }
            blocks.insert_block(column, rows, DenseMatrix::from_column_major(n, values));
        }

        let block_entries = u64_field(&json, "block_entries")?;
        Ok(Contribution {
            job: u64_field(&json, "job")?,
            task: usize_field(&json, "task")?,
            epoch: u64_field(&json, "epoch")?,
            worker: str_field(&json, "worker")?.to_string(),
            busy_seconds,
            parts: SubtreeParts {
                columns,
                blocks,
                block_entries,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_parts() -> SubtreeParts {
        let mut blocks = ContributionStore::new();
        let block = DenseMatrix::from_column_major(2, vec![4.0, -1.5, -1.5, 3.25]);
        blocks.insert_block(7, vec![7, 9], block);
        SubtreeParts {
            columns: vec![(0, vec![0, 2], vec![2.0, -0.5]), (1, vec![1], vec![1.25])],
            blocks,
            block_entries: 4,
        }
    }

    #[test]
    fn frames_round_trip() {
        let frame = encode_frame("{\"a\": 1}");
        assert_eq!(decode_frame(&frame).unwrap(), "{\"a\": 1}");
    }

    #[test]
    fn truncated_and_padded_frames_are_typed_errors() {
        let frame = encode_frame("{\"a\": 1}");
        assert!(matches!(
            decode_frame(&frame[..frame.len() - 2]),
            Err(WireError::Truncated { .. })
        ));
        let mut padded = frame.clone();
        padded.push(b'x');
        assert!(matches!(
            decode_frame(&padded),
            Err(WireError::TrailingBytes { .. })
        ));
        assert!(matches!(
            decode_frame(b"nonsense"),
            Err(WireError::BadHeader(_))
        ));
        assert!(matches!(
            decode_frame(format!("{WIRE_SCHEMA} 999999999999\nhi").as_bytes()),
            Err(WireError::Oversized { .. })
        ));
        assert!(matches!(
            decode_frame(b"distrib_wire/v9 2\nhi"),
            Err(WireError::BadHeader(_))
        ));
    }

    #[test]
    fn hex_vectors_are_bit_exact() {
        let values = [0.1, -0.0, f64::MIN_POSITIVE, 1e300, -3.5];
        let packed = hex_f64s(&values);
        let unpacked = parse_hex_f64s(&packed, "test").unwrap();
        for (a, b) in values.iter().zip(&unpacked) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(matches!(
            parse_hex_f64s(&hex_f64s(&[f64::NAN]), "test"),
            Err(WireError::NonFinite("test"))
        ));
        assert!(matches!(
            parse_hex_f64s("xyz", "test"),
            Err(WireError::BadHex("test"))
        ));
        let rows = [0usize, 17, 4_000_000];
        assert_eq!(parse_hex_u32s(&hex_u32s(&rows), "test").unwrap(), rows);
    }

    #[test]
    fn subtree_tasks_round_trip() {
        let config = engine::EngineConfig::generated(sparsemat::gen::ProblemKind::Grid2d, 100, 1)
            .with_numeric(true);
        let task = SubtreeTask {
            job: 3,
            task: 1,
            epoch: 2,
            lease_ms: 5_000,
            config: config.to_json(),
            order: vec![5, 3, 8],
        };
        match ClaimReply::from_frame(&task.to_frame()).unwrap() {
            ClaimReply::Task(parsed) => assert_eq!(*parsed, task),
            other => panic!("expected a task, got {other:?}"),
        }
        let wait = ClaimReply::Wait { retry_ms: 250 };
        assert_eq!(ClaimReply::from_frame(&wait.to_frame()).unwrap(), wait);
        assert_eq!(
            ClaimReply::from_frame(&ClaimReply::Idle.to_frame()).unwrap(),
            ClaimReply::Idle
        );
        let claim = ClaimRequest {
            worker: "w-1".to_string(),
        };
        assert_eq!(ClaimRequest::from_frame(&claim.to_frame()).unwrap(), claim);
    }

    #[test]
    fn tasks_with_corrupt_configs_are_rejected_at_decode_time() {
        let task = SubtreeTask {
            job: 1,
            task: 0,
            epoch: 1,
            lease_ms: 1_000,
            config: "not a config".to_string(),
            order: vec![0],
        };
        assert!(matches!(
            ClaimReply::from_frame(&task.to_frame()),
            Err(WireError::Config(_))
        ));
    }

    #[test]
    fn contributions_round_trip_bit_for_bit() {
        let parts = sample_parts();
        let frame = contribution_frame(9, 2, 4, "w-0", 0.125, &parts);
        let decoded = Contribution::from_frame(&frame).unwrap();
        assert_eq!(decoded.job, 9);
        assert_eq!(decoded.task, 2);
        assert_eq!(decoded.epoch, 4);
        assert_eq!(decoded.worker, "w-0");
        assert_eq!(decoded.parts.columns, parts.columns);
        assert_eq!(decoded.parts.block_entries, parts.block_entries);
        let decoded_blocks = decoded.parts.blocks.sorted_blocks();
        let original_blocks = parts.blocks.sorted_blocks();
        assert_eq!(decoded_blocks.len(), original_blocks.len());
        for ((ca, ra, ba), (cb, rb, bb)) in decoded_blocks.iter().zip(&original_blocks) {
            assert_eq!(ca, cb);
            assert_eq!(ra, rb);
            assert_eq!(ba.n(), bb.n());
            let (va, vb) = (ba.column_major(), bb.column_major());
            assert!(va.iter().zip(vb).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn malformed_contributions_are_typed_errors() {
        let parts = sample_parts();
        let frame = contribution_frame(1, 0, 1, "w", 0.0, &parts);
        let body = decode_frame(&frame).unwrap().to_string();
        // Mismatched rows/values lengths.
        let bad = body.replace("\"columns\": [[0,\"", "\"columns\": [[0,\"00000000");
        assert!(Contribution::from_frame(&encode_frame(&bad)).is_err());
        // A block whose value payload is not n².
        let bad = body.replace(",2,\"", ",3,\"");
        assert!(Contribution::from_frame(&encode_frame(&bad)).is_err());
        // Garbage body.
        assert!(matches!(
            Contribution::from_frame(&encode_frame("[1,2,3]")),
            Err(WireError::Field("type"))
        ));
    }
}
