//! # distrib — multi-process distributed factorization
//!
//! One factorization, several OS processes.  A **coordinator** plans once,
//! runs the proportional cut, and exposes three internal endpoints; a fleet
//! of **workers** polls `claim`, factors subtrees with the blocked kernel,
//! and streams the results back:
//!
//! ```text
//!   worker ── POST /internal/claim ──────▶ coordinator   (lease a subtree)
//!   worker ── POST /internal/contribute ─▶ coordinator   (columns + blocks)
//!   anyone ── GET  /internal/job/{id} ───▶ coordinator   (progress JSON)
//! ```
//!
//! This crate is the transport- and policy-free core of that protocol; the
//! HTTP plumbing lives in `crates/server`:
//!
//! * [`wire`] — the versioned, length-prefixed frame format.  Floats cross
//!   the wire as IEEE-754 bit patterns in hex (base-2 exact), so the merged
//!   factor is **bit-identical** to a single-process run and `NaN` can never
//!   be smuggled past `engine::json`.
//! * [`job`] — the coordinator's lease state machine: monotonic deadlines,
//!   epoch fencing of stale contributions, automatic re-issue of tasks whose
//!   worker died, and claim admission through the cluster-level
//!   [`BudgetLedger`](multifrontal::parallel::BudgetLedger).
//! * [`stats`] — the cluster counters surfaced under `/stats`, with the
//!   reconciliation invariant `claimed == completed + lease_expiries`.

pub mod job;
pub mod stats;
pub mod wire;

pub use job::{ContributeError, Job, JobRegistry, JobSpec, WaitError};
pub use stats::{ClusterSnapshot, ClusterStats};
pub use wire::{
    contribution_frame, decode_frame, encode_frame, frame_string, ClaimReply, ClaimRequest,
    Contribution, SubtreeTask, WireError, MAX_FRAME_BYTES, WIRE_SCHEMA,
};
