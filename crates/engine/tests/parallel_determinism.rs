//! The parallel-execution determinism battery.
//!
//! The contract of the parallel layer is that worker count is a *pure
//! performance knob*: for any problem, the computed factor, the solve
//! residual and the whole report (modulo wall-clock timings and the
//! interleaving-dependent measured peak) are bit-identical for 1, 2, 4 and 8
//! workers — and match the sequential execution path.  The battery also
//! covers the budget ledger's edge cases: a budget smaller than the largest
//! single subtree (or frontal matrix) must degrade to sequential execution,
//! not deadlock.

use engine::prelude::*;
use multifrontal::parallel::{assemble_factor, factor_columns, BudgetLedger};
use multifrontal::{multifrontal_cholesky, ContributionStore, FrontArena, SymbolicStructure};
use sparsemat::gen::{spd_matrix_from_pattern, ProblemKind};
use treemem::partition::{default_node_work, proportional_cut};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn battery_nodes(kind: ProblemKind) -> usize {
    match kind {
        // The 3-D grid rounds to a cube; give it enough for 5³.
        ProblemKind::Grid3d => 125,
        _ => 150,
    }
}

fn numeric_config(kind: ProblemKind) -> EngineConfig {
    EngineConfig::generated(kind, battery_nodes(kind), 11)
        .with_ordering(ordering::OrderingMethod::NestedDissection)
        .with_numeric(true)
}

/// Reports are bit-identical across worker counts (and the residual matches
/// the sequential path bit for bit) for every problem kind.
#[test]
fn reports_are_bit_identical_for_every_worker_count_and_kind() {
    let engine = Engine::new();
    for kind in ProblemKind::ALL {
        let config = numeric_config(kind);
        let plan = engine.plan(&config).unwrap();
        let sequential = plan.schedule(&engine).unwrap().execute(&engine).unwrap();
        assert!(sequential.parallel.is_none());
        let sequential_numeric = sequential.numeric.as_ref().unwrap();
        assert!(
            sequential_numeric.solve_error < 1e-6,
            "{kind:?}: sequential residual {}",
            sequential_numeric.solve_error
        );

        let mut fingerprints = Vec::new();
        for workers in WORKER_COUNTS {
            let parallel = ParallelConfig::with_workers(workers)
                .with_max_tasks(8)
                .with_budget(BudgetShare::MultipleOfSequentialPeak(2.0));
            let report = plan
                .schedule_with(&engine, ScheduleSpec::default().parallel(parallel))
                .unwrap()
                .execute(&engine)
                .unwrap();
            let numeric = report.numeric.as_ref().unwrap();
            let parallel_report = report.parallel.as_ref().unwrap();
            assert_eq!(parallel_report.workers, workers, "{kind:?}");
            assert_eq!(
                parallel_report.subtree_count,
                parallel_report.task_seconds.len(),
                "{kind:?}"
            );
            // The residual is a function of the factor alone: bit equality
            // here means the factor did not depend on the worker count.
            assert_eq!(
                numeric.solve_error.to_bits(),
                sequential_numeric.solve_error.to_bits(),
                "{kind:?} at {workers} workers"
            );
            assert_eq!(numeric.factor_nnz, sequential_numeric.factor_nnz);
            fingerprints.push(report.fingerprint());
        }
        for fingerprint in &fingerprints[1..] {
            assert_eq!(fingerprint, &fingerprints[0], "{kind:?}");
        }
    }
}

/// A budget far below the largest single subtree peak (one entry!) must
/// degrade to one-task-at-a-time execution — oversized tasks are admitted
/// alone — and still produce the exact factor, at every worker count.
#[test]
fn undersized_budgets_degrade_to_sequential_instead_of_deadlocking() {
    let engine = Engine::new();
    let config = numeric_config(ProblemKind::Grid2d);
    let plan = engine.plan(&config).unwrap();
    let sequential = plan.schedule(&engine).unwrap().execute(&engine).unwrap();
    let baseline = sequential.numeric.as_ref().unwrap();

    for workers in WORKER_COUNTS {
        let parallel = ParallelConfig::with_workers(workers)
            .with_max_tasks(8)
            .with_budget(BudgetShare::Entries(1));
        let report = plan
            .schedule_with(&engine, ScheduleSpec::default().parallel(parallel))
            .unwrap()
            .execute(&engine)
            .unwrap();
        let parallel_report = report.parallel.as_ref().unwrap();
        assert_eq!(parallel_report.budget_entries, Some(1));
        // Every task is oversized, every admission is forced.
        assert_eq!(
            parallel_report.oversized_tasks,
            parallel_report.subtree_count
        );
        assert_eq!(
            parallel_report.forced_admissions,
            parallel_report.subtree_count as u64
        );
        let numeric = report.numeric.as_ref().unwrap();
        assert_eq!(
            numeric.solve_error.to_bits(),
            baseline.solve_error.to_bits()
        );
    }
}

/// A budget exactly at the largest single task peak serializes the big
/// tasks without forcing anything (nothing is oversized).
#[test]
fn tight_budgets_run_without_forced_admissions() {
    let engine = Engine::new();
    let config = numeric_config(ProblemKind::Banded);
    let plan = engine.plan(&config).unwrap();
    // Probe the static peaks with an unbounded run.  A budget of (merge
    // peak + largest task peak) is always sufficient: the reserved side
    // never exceeds the retained blocks (bounded by the merge peak) plus
    // one admitted task, so the gate never has to force anything.
    let probe = plan
        .schedule_with(
            &engine,
            ScheduleSpec::default().parallel(ParallelConfig::with_workers(2).with_max_tasks(8)),
        )
        .unwrap()
        .execute(&engine)
        .unwrap();
    let probe_parallel = probe.parallel.as_ref().unwrap();
    let sufficient = probe_parallel.merge_peak_entries + probe_parallel.max_task_peak_entries;

    for workers in WORKER_COUNTS {
        let parallel = ParallelConfig::with_workers(workers)
            .with_max_tasks(8)
            .with_budget(BudgetShare::Entries(sufficient));
        let report = plan
            .schedule_with(&engine, ScheduleSpec::default().parallel(parallel))
            .unwrap()
            .execute(&engine)
            .unwrap();
        let parallel_report = report.parallel.as_ref().unwrap();
        assert_eq!(parallel_report.oversized_tasks, 0);
        assert_eq!(parallel_report.forced_admissions, 0);
        assert!(report.numeric.as_ref().unwrap().solve_error < 1e-6);
    }
}

/// Drive the public multifrontal building blocks from real concurrent
/// threads and compare the factor to the classical sequential factorization
/// entry for entry: subtree scheduling must never change a single bit.
#[test]
fn threaded_subtree_factorization_is_bitwise_equal_to_sequential() {
    let pattern = sparsemat::gen::random_spd_pattern(220, 3.5, 21);
    let matrix = spd_matrix_from_pattern(&pattern, 21);
    let n = matrix.n();
    let structure = SymbolicStructure::from_pattern(&matrix.pattern());
    let children = structure.etree.children();
    let order = symbolic::etree::etree_postorder(&structure.etree);
    let reference = multifrontal_cholesky(&matrix, Some(&order)).unwrap();

    let model = multifrontal::memory::per_column_model(&structure);
    let partition = proportional_cut(&model, 12, &default_node_work(&model));
    let mut task_orders: Vec<Vec<usize>> = vec![Vec::new(); partition.task_count()];
    let mut merge_order = Vec::new();
    for &j in &order {
        match partition.task_of[j] {
            Some(task) => task_orders[task].push(j),
            None => merge_order.push(j),
        }
    }

    for threads in [2usize, 4, 8] {
        let ledger = BudgetLedger::new(None);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: Vec<std::sync::Mutex<Option<_>>> = task_orders
            .iter()
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut arena = FrontArena::new();
                    loop {
                        let task = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if task >= task_orders.len() {
                            break;
                        }
                        let outcome = factor_columns(
                            &matrix,
                            &structure,
                            &children,
                            &task_orders[task],
                            ContributionStore::new(),
                            &ledger,
                            &mut arena,
                        )
                        .unwrap();
                        *results[task].lock().unwrap() = Some(outcome);
                    }
                });
            }
        });

        let mut merge_blocks = ContributionStore::new();
        let mut parts = Vec::new();
        for slot in results {
            let outcome = slot.into_inner().unwrap().unwrap();
            merge_blocks.absorb(outcome.blocks);
            parts.extend(outcome.columns);
        }
        let merge = factor_columns(
            &matrix,
            &structure,
            &children,
            &merge_order,
            merge_blocks,
            &ledger,
            &mut FrontArena::new(),
        )
        .unwrap();
        parts.extend(merge.columns);
        let factor = assemble_factor(n, parts).unwrap();
        for j in 0..n {
            assert_eq!(factor.columns[j], reference.columns[j]);
            assert_eq!(
                factor.values[j], reference.values[j],
                "column {j} with {threads} threads"
            );
        }
    }
}

/// Satellite regression: the plan cache must never serve a serial plan for
/// a parallel request (the parallel section is part of the effective-config
/// hash, so the two are distinct cache entries).
#[test]
fn plan_cache_distinguishes_serial_and_parallel_requests() {
    let engine = Engine::new();
    let cache = PlanCache::new(8, None);
    let serial = numeric_config(ProblemKind::Grid2d);
    let parallel = serial
        .clone()
        .with_parallel(ParallelConfig::with_workers(4).with_max_tasks(8));

    let (serial_plan, hit) = cache.get_or_plan(&engine, &serial).unwrap();
    assert!(!hit);
    // The parallel request must miss: serving the cached serial plan would
    // execute with the wrong parallel section.
    let (parallel_plan, hit) = cache.get_or_plan(&engine, &parallel).unwrap();
    assert!(!hit, "a serial plan was served for a parallel request");
    assert_ne!(serial_plan.config_hash(), parallel_plan.config_hash());

    // Each plan executes with its own parallel section.
    let serial_report = serial_plan
        .schedule(&engine)
        .unwrap()
        .execute(&engine)
        .unwrap();
    assert!(serial_report.parallel.is_none());
    let parallel_report = parallel_plan
        .schedule(&engine)
        .unwrap()
        .execute(&engine)
        .unwrap();
    assert_eq!(parallel_report.parallel.as_ref().unwrap().workers, 4);

    // And the cache now hits each of them independently.
    assert!(cache.get_or_plan(&engine, &serial).unwrap().1);
    assert!(cache.get_or_plan(&engine, &parallel).unwrap().1);
}
