//! Hostile-input battery for `engine::json` plus round-trip property tests
//! over generated `EngineConfig`s.
//!
//! The parser reads sockets once the serving layer is in front of it, so
//! every malformed document must come back as a typed [`JsonError`] with a
//! sane byte offset — never a panic, never an abort.  The round-trip half
//! generates seeded random configurations (including adversarial strings:
//! quotes, backslashes, control characters, non-BMP scalars) and asserts
//! `from_json(to_json(c)) == c` exactly.

use engine::json::{escape, Json, JsonError};
use engine::prelude::*;
use prng::{Rng, StdRng};
use treemem::random::random_attachment_tree;

// Miri runs this battery for parser memory-safety, not statistical
// coverage; the native case counts would take hours under interpretation.
const BOMB_DEPTH: usize = if cfg!(miri) { 2_000 } else { 50_000 };
const GARBAGE_ROUNDS: usize = if cfg!(miri) { 100 } else { 2_000 };
const CONFIG_ROUNDS: usize = if cfg!(miri) { 10 } else { 300 };
const ESCAPE_ROUNDS: usize = if cfg!(miri) { 100 } else { 2_000 };

/// Parse and demand a `JsonError` whose offset points into (or just past)
/// the document.
fn expect_error(doc: &str) -> JsonError {
    match Json::parse(doc) {
        Ok(value) => panic!("{doc:?} unexpectedly parsed to {value:?}"),
        Err(error) => {
            assert!(
                error.offset <= doc.len(),
                "offset {} out of bounds for {doc:?}",
                error.offset
            );
            error
        }
    }
}

#[test]
fn truncated_and_malformed_numbers() {
    for doc in [
        "1.", ".5", "01", "007", "+5", "-", "--1", "1e", "1e+", "1e-", "2.5e", "1..2", "1.e5",
        "0x10", "1_000",
    ] {
        expect_error(doc);
    }
}

#[test]
fn nan_and_infinity_literals_are_rejected() {
    // Rust's `f64::from_str` would happily accept several of these, which is
    // why the parser validates the JSON grammar instead.
    for doc in [
        "NaN",
        "nan",
        "Infinity",
        "-Infinity",
        "inf",
        "-inf",
        "1e99999x",
    ] {
        expect_error(doc);
    }
}

#[test]
fn bad_escapes() {
    for doc in [
        r#""\x41""#,   // unknown escape letter
        r#""\u12""#,   // truncated hex
        r#""\u12zz""#, // non-hex digits
        r#""\u+1f3""#, // sign accepted by from_str_radix, not by JSON
        r#""\u-1f3""#,
        r#""\u""#,            // nothing after the u
        r#""\"#,              // backslash at end of input
        "\"\\ud83d\\uzz00\"", // high surrogate followed by broken escape
    ] {
        expect_error(doc);
    }
}

#[test]
fn deep_nesting_returns_an_error() {
    for opener in ["[", "{\"k\":", "[[", "[{\"k\":"] {
        let bomb = opener.repeat(BOMB_DEPTH);
        let error = expect_error(&bomb);
        assert!(error.message.contains("nesting"), "{error}");
    }
    // A mixed close-delimiter bomb, for good measure.
    let mixed: String = (0..BOMB_DEPTH)
        .map(|i| if i % 2 == 0 { "[" } else { "{\"x\":" })
        .collect();
    expect_error(&mixed);
}

#[test]
fn duplicate_keys_are_rejected_with_the_key_offset() {
    let doc = r#"{"solver": "minmem", "solver": "liu"}"#;
    let error = expect_error(doc);
    assert!(error.message.contains("duplicate key"), "{error}");
    // The offset points at the second occurrence of the key.
    assert_eq!(&doc[error.offset..error.offset + 8], "\"solver\"");
}

#[test]
fn raw_control_characters_in_strings_are_rejected() {
    for byte in 0u8..0x20 {
        let doc = format!("\"a{}b\"", byte as char);
        let error = expect_error(&doc);
        assert!(
            error.message.contains("control character"),
            "byte 0x{byte:02x}: {error}"
        );
    }
}

#[test]
fn structural_garbage() {
    for doc in [
        "",
        " ",
        "{",
        "}",
        "[",
        "]",
        "{]",
        "[}",
        "[1 2]",
        "{\"a\" 1}",
        "{\"a\":}",
        "{:1}",
        "[1,]",
        "{\"a\":1,}",
        "tru",
        "nul",
        "falsey",
        "\"open",
        "{} {}",
        "[1][2]",
        ",",
    ] {
        expect_error(doc);
    }
}

#[test]
fn seeded_random_garbage_never_panics() {
    // Random byte soup (valid UTF-8 by construction) must always produce a
    // clean parse or a clean error.
    let mut rng = StdRng::seed_from_u64(0x5eed_badd);
    let alphabet: Vec<char> = "{}[]\",:0123456789.eE+-truefalsn \\u\nд😀\u{1}"
        .chars()
        .collect();
    for _ in 0..GARBAGE_ROUNDS {
        let len = rng.gen_range(0..60usize);
        let doc: String = (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect();
        match Json::parse(&doc) {
            Ok(_) => {}
            Err(error) => assert!(error.offset <= doc.len()),
        }
    }
}

/// A seeded random string drawing from an adversarial alphabet.
fn random_string(rng: &mut StdRng) -> String {
    let alphabet: Vec<char> = "ab\"\\/\n\r\t\u{0}\u{1f}\u{7f}\u{9b}é漢😀\u{10ffff} "
        .chars()
        .collect();
    let len = rng.gen_range(0..12usize);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

fn random_config(rng: &mut StdRng) -> EngineConfig {
    let source = match rng.gen_range(0..3u32) {
        0 => {
            let kind = ProblemKind::ALL[rng.gen_range(0..ProblemKind::ALL.len())];
            EngineConfig::generated(kind, rng.gen_range(1..5_000usize), rng.gen::<u64>())
        }
        1 => EngineConfig::matrix_market(format!("data/{}.mtx", random_string(rng))),
        _ => {
            let nodes = rng.gen_range(1..40usize);
            EngineConfig::prebuilt(random_attachment_tree(nodes, 50, 50, rng.gen::<u64>()))
        }
    };
    let orderings = [
        OrderingMethod::Natural,
        OrderingMethod::MinimumDegree,
        OrderingMethod::NestedDissection,
        OrderingMethod::ReverseCuthillMcKee,
    ];
    let memory = match rng.gen_range(0..3u32) {
        0 => MemoryBudget::Unlimited,
        1 => MemoryBudget::Absolute(rng.gen_range(0..1_000_000i64)),
        _ => MemoryBudget::FractionOfPeak(rng.gen::<f64>()),
    };
    source
        .with_ordering(orderings[rng.gen_range(0..orderings.len())])
        .with_amalgamation(rng.gen_range(1..64usize))
        .with_solver(random_string(rng))
        .with_policy(random_string(rng))
        .with_memory(memory)
        .with_numeric(rng.gen_bool(0.3))
}

#[test]
fn generated_configs_round_trip_exactly() {
    let mut rng = StdRng::seed_from_u64(0xc0ff_ee00);
    for case in 0..CONFIG_ROUNDS {
        let config = random_config(&mut rng);
        let json = config.to_json();
        let parsed =
            EngineConfig::from_json(&json).unwrap_or_else(|e| panic!("case {case}: {e}\n{json}"));
        assert_eq!(parsed, config, "case {case}");
        assert_eq!(parsed.hash(), config.hash(), "case {case}");
        // Serialisation is canonical: a second trip is byte-identical.
        assert_eq!(parsed.to_json(), json, "case {case}");
    }
}

#[test]
fn escape_parse_is_a_bijection_on_random_strings() {
    let mut rng = StdRng::seed_from_u64(0xdead_f00d);
    for _ in 0..ESCAPE_ROUNDS {
        let text = random_string(&mut rng);
        let doc = format!("\"{}\"", escape(&text));
        assert_eq!(
            Json::parse(&doc).unwrap().as_str(),
            Some(text.as_str()),
            "{text:?} failed the trip"
        );
    }
}
