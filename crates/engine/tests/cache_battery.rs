//! Seeded property battery for the shared serving-cache core.
//!
//! Every policy in the builtin registry — native online implementations and
//! simulation heuristics served through the bridge alike — is driven through
//! the same churn workloads, and the properties the serving layer depends on
//! are asserted the same way for all of them:
//!
//! * byte accounting never drifts (the internal audit passes at every
//!   sampled point, under churn and after TTL expiry);
//! * the byte capacity is never exceeded, no matter what the policy picks;
//! * per-tenant quotas confine each tenant's resident bytes;
//! * the fair-share floor keeps a well-behaved tenant's working set
//!   resident through another tenant's scan flood.
//!
//! Workloads are seeded (`prng::StdRng`), so a failure here reproduces
//! bit-for-bit with the printed policy name and seed.

use std::sync::Arc;
use std::time::Duration;

use engine::cache::{CacheConfig, CacheCore, ServingPolicyRegistry};
use prng::{Rng, StdRng};

const KIB: u64 = 1024;

fn core_with(
    registry: &ServingPolicyRegistry,
    policy: &str,
    config: CacheConfig,
) -> CacheCore<u64> {
    let config = CacheConfig {
        policy: policy.to_string(),
        lock_class: "cache-battery.inner",
        ..config
    };
    CacheCore::new(config, registry)
        .unwrap_or_else(|e| panic!("policy '{policy}' must be registered: {e}"))
}

/// The audit that every sampled point of every workload must pass.
fn audit(core: &CacheCore<u64>, policy: &str, capacity: u64, quota: Option<u64>) {
    core.validate_accounting()
        .unwrap_or_else(|e| panic!("policy '{policy}': accounting drifted: {e}"));
    let stats = core.stats();
    assert!(
        stats.bytes_used <= capacity,
        "policy '{policy}': {} bytes resident exceeds the {capacity}-byte capacity",
        stats.bytes_used
    );
    if let Some(quota) = quota {
        for tenant in &stats.per_tenant {
            assert!(
                tenant.bytes <= quota,
                "policy '{policy}': tenant '{}' holds {} bytes over its {quota}-byte quota",
                tenant.tenant,
                tenant.bytes
            );
        }
    }
}

#[test]
fn every_policy_keeps_accounting_and_capacity_under_churn() {
    let registry = ServingPolicyRegistry::with_builtin();
    let capacity = 256 * KIB;
    for policy in registry.names() {
        let core = core_with(
            &registry,
            &policy,
            CacheConfig {
                bytes_capacity: capacity,
                ..CacheConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(0xBA77E2);
        for round in 0..4_000u64 {
            let key = format!("k{}", rng.gen_range(0..600));
            if core.get(&key, "public").is_none() {
                // 1–24 KiB entries: far smaller than capacity, so the cache
                // churns through many evictions without ever being trivially
                // empty or trivially full.
                let bytes = rng.gen_range(KIB..24 * KIB);
                core.insert(&key, "public", Arc::new(round), bytes);
            }
            if round % 251 == 0 {
                audit(&core, &policy, capacity, None);
            }
        }
        audit(&core, &policy, capacity, None);
        let stats = core.stats();
        assert!(
            stats.evictions > 0,
            "policy '{policy}': churn produced no evictions (capacity never exercised)"
        );
        assert!(
            stats.hits > 0,
            "policy '{policy}': churn produced no hits (working set never resident)"
        );
    }
}

#[test]
fn every_policy_confines_tenants_to_their_quota() {
    let registry = ServingPolicyRegistry::with_builtin();
    let capacity = 256 * KIB;
    let quota = capacity / 4;
    for policy in registry.names() {
        let core = core_with(
            &registry,
            &policy,
            CacheConfig {
                bytes_capacity: capacity,
                tenant_quota_bytes: Some(quota),
                ..CacheConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(0x900DA);
        let tenants = ["alpha", "beta", "gamma"];
        for round in 0..3_000u64 {
            let tenant = tenants[rng.gen_range(0..tenants.len())];
            let key = format!("{tenant}:{}", rng.gen_range(0..200));
            if core.get(&key, tenant).is_none() {
                let bytes = rng.gen_range(KIB..16 * KIB);
                core.insert(&key, tenant, Arc::new(round), bytes);
            }
            if round % 199 == 0 {
                audit(&core, &policy, capacity, Some(quota));
            }
        }
        audit(&core, &policy, capacity, Some(quota));
    }
}

#[test]
fn every_policy_expires_ttl_entries_without_accounting_drift() {
    let registry = ServingPolicyRegistry::with_builtin();
    let capacity = 256 * KIB;
    for policy in registry.names() {
        let core = core_with(
            &registry,
            &policy,
            CacheConfig {
                bytes_capacity: capacity,
                ttl: Some(Duration::from_millis(25)),
                ..CacheConfig::default()
            },
        );
        for index in 0..8u64 {
            let key = format!("t{index}");
            core.insert(&key, "public", Arc::new(index), 4 * KIB);
        }
        std::thread::sleep(Duration::from_millis(60));
        for index in 0..8u64 {
            let key = format!("t{index}");
            assert!(
                core.get(&key, "public").is_none(),
                "policy '{policy}': '{key}' survived past its TTL"
            );
        }
        audit(&core, &policy, capacity, None);
        let stats = core.stats();
        assert!(
            stats.expirations >= 8,
            "policy '{policy}': only {} expirations recorded for 8 dead entries",
            stats.expirations
        );
        assert_eq!(
            stats.entries, 0,
            "policy '{policy}': expired entries still resident"
        );
    }
}

/// The tenant-isolation property the serving layer advertises: with the
/// fair-share floor armed, one tenant's scan flood cannot evict another
/// tenant's working set below its floor share.  Asserted for every policy —
/// the floor is enforced by the core's candidate filter, upstream of
/// whatever the policy would pick.
#[test]
fn scan_flood_cannot_push_another_tenant_below_the_floor() {
    let registry = ServingPolicyRegistry::with_builtin();
    let capacity = 1024 * KIB;
    let floor = 0.8;
    for policy in registry.names() {
        let core = core_with(
            &registry,
            &policy,
            CacheConfig {
                bytes_capacity: capacity,
                tenant_floor: floor,
                ..CacheConfig::default()
            },
        );
        // Tenant beta parks a working set of 40 × 10 KiB = 400 KiB, right at
        // its two-tenant floor share (0.8 × 1 MiB / 2 = 409.6 KiB).
        let hot: Vec<String> = (0..40).map(|i| format!("hot{i}")).collect();
        for (index, key) in hot.iter().enumerate() {
            let admission = core.insert(key, "beta", Arc::new(index as u64), 10 * KIB);
            assert!(
                admission.is_cached(),
                "policy '{policy}': beta's working set did not fit an empty cache"
            );
        }
        // Tenant alpha floods 300 one-shot 50 KiB entries — 15 MiB through a
        // 1 MiB cache.  Without the floor this wipes beta out completely.
        let mut rng = StdRng::seed_from_u64(0xF100D);
        for index in 0..300u64 {
            let bytes = rng.gen_range(40 * KIB..60 * KIB);
            core.insert(&format!("scan{index}"), "alpha", Arc::new(index), bytes);
        }
        audit(&core, &policy, capacity, None);
        let stats = core.stats();
        let beta_bytes = stats
            .per_tenant
            .iter()
            .find(|t| t.tenant == "beta")
            .map(|t| t.bytes)
            .unwrap_or(0);
        let floor_bytes = (floor * capacity as f64 / 2.0) as u64;
        assert!(
            beta_bytes >= floor_bytes.saturating_sub(10 * KIB),
            "policy '{policy}': alpha's flood pushed beta to {beta_bytes} bytes, \
             below the {floor_bytes}-byte fair-share floor"
        );
        // And the survivors actually serve: replaying the hot set hits for
        // at least the floor's worth of entries.
        let hits = hot
            .iter()
            .filter(|key| core.get(key, "beta").is_some())
            .count();
        assert!(
            hits * 10 * KIB as usize >= floor_bytes.saturating_sub(10 * KIB) as usize,
            "policy '{policy}': only {hits}/40 of beta's hot set survived the flood"
        );
    }
}
