//! The serializable problem description the engine plans from.
//!
//! An [`EngineConfig`] names everything the pipeline needs — where the
//! problem comes from, how it is ordered and amalgamated, which MinMemory
//! solver and eviction policy to use, and how much main memory the simulated
//! execution gets — and round-trips through JSON
//! ([`EngineConfig::to_json`] / [`EngineConfig::from_json`]), so whole
//! experiment grids can be stored, shipped to a server, or replayed later.

use ordering::OrderingMethod;
use sparsemat::gen::ProblemKind;
use treemem::tree::Size;
use treemem::Tree;

use crate::json::{escape, Json, JsonError};

/// Where the problem comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemSource {
    /// A synthetic matrix from one of the [`ProblemKind`] generators.
    Generated {
        /// The generator.
        kind: ProblemKind,
        /// Target number of unknowns.
        nodes: usize,
        /// Generator seed.
        seed: u64,
    },
    /// A MatrixMarket coordinate file on disk.
    MatrixMarket {
        /// Path to the `.mtx` file.
        path: String,
    },
    /// A prebuilt weighted tree: the ordering/symbolic stages are skipped and
    /// the traversal stages run directly on it (used for gadget trees and
    /// re-weighted corpora).
    Prebuilt {
        /// The tree.
        tree: Tree,
    },
}

/// The main-memory budget of the out-of-core stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemoryBudget {
    /// Enough memory for the chosen traversal: no I/O is ever needed.
    Unlimited,
    /// An absolute budget, in the tree's file-size units.
    Absolute(Size),
    /// A fraction of the way from the hardest feasible budget (the largest
    /// single-node requirement, at `0.0`) to the chosen traversal's peak
    /// (at `1.0`, where no I/O is needed) — the same convention as the
    /// sweep engine's memory fractions.
    FractionOfPeak(f64),
}

impl MemoryBudget {
    /// Resolve the budget to an absolute memory size, given the hardest
    /// feasible budget `lower` (the largest single-node requirement) and the
    /// chosen traversal's `peak`.  This is the single definition of the
    /// fraction convention; the sweep helpers delegate to it.
    pub fn resolve(&self, lower: Size, peak: Size) -> Size {
        match *self {
            MemoryBudget::Unlimited => peak,
            MemoryBudget::Absolute(size) => size,
            MemoryBudget::FractionOfPeak(fraction) => {
                let f = fraction.clamp(0.0, 1.0);
                lower + (((peak - lower) as f64) * f).round() as Size
            }
        }
    }
}

/// How the parallel execution layer shares memory between concurrent
/// subtree tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetShare {
    /// No shared budget: tasks are admitted as soon as a worker is free.
    Unbounded,
    /// The budget is this multiple of the *sequential* model peak of the
    /// chosen traversal (the MinMemory bound), in matrix entries.
    MultipleOfSequentialPeak(f64),
    /// An absolute budget in matrix entries.
    Entries(u64),
}

impl BudgetShare {
    /// Resolve the budget to absolute matrix entries, given the sequential
    /// model peak of the chosen traversal.
    pub fn resolve(&self, sequential_peak_entries: u64) -> Option<u64> {
        match *self {
            BudgetShare::Unbounded => None,
            BudgetShare::MultipleOfSequentialPeak(multiple) => {
                Some((sequential_peak_entries as f64 * multiple).ceil() as u64)
            }
            BudgetShare::Entries(entries) => Some(entries),
        }
    }

    fn to_json_fragment(self) -> String {
        match self {
            BudgetShare::Unbounded => "{\"type\": \"unbounded\"}".to_string(),
            // A non-finite multiple would render as bare `NaN`/`inf` — not
            // JSON.  Serialize it as `null` so the document stays
            // well-formed; the parser then reports the missing value and
            // plan-time validation rejects the multiple anyway.
            BudgetShare::MultipleOfSequentialPeak(multiple) if !multiple.is_finite() => {
                "{\"type\": \"multiple\", \"value\": null}".to_string()
            }
            BudgetShare::MultipleOfSequentialPeak(multiple) => {
                format!("{{\"type\": \"multiple\", \"value\": {multiple}}}")
            }
            BudgetShare::Entries(entries) => {
                format!("{{\"type\": \"entries\", \"value\": {entries}}}")
            }
        }
    }

    fn from_json(json: &Json, field: &'static str) -> Result<BudgetShare, ConfigParseError> {
        Ok(match json.get("type").and_then(Json::as_str) {
            Some("unbounded") => BudgetShare::Unbounded,
            Some("multiple") => BudgetShare::MultipleOfSequentialPeak(
                json.get("value")
                    .and_then(Json::as_f64)
                    .ok_or(missing(field))?,
            ),
            Some("entries") => BudgetShare::Entries(
                json.get("value")
                    .and_then(Json::as_u64)
                    .ok_or(missing(field))?,
            ),
            other => {
                return Err(invalid(format!("unknown budget type {other:?} in {field}")));
            }
        })
    }
}

/// The parallel execution section of an [`EngineConfig`]: worker count, cut
/// granularity and budget-sharing mode for the numeric multifrontal stage.
///
/// `workers == 0` (the default) keeps the numeric stage sequential.  With
/// `workers >= 1` the per-column tree is cut into at most `max_tasks`
/// balanced subtrees (`treemem::partition::proportional_cut`) that are
/// factored concurrently under the shared budget, followed by a sequential
/// merge phase above the cut.  The cut depends on `max_tasks` but *not* on
/// `workers`, so reports are bit-identical (modulo timings and runtime
/// memory measurements) across worker counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelConfig {
    /// Worker threads for the numeric stage (0 = sequential execution).
    pub workers: usize,
    /// Maximum number of subtree tasks the cut may produce.
    pub max_tasks: usize,
    /// Budget-sharing mode of the concurrent tasks.
    pub budget: BudgetShare,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: 0,
            max_tasks: 64,
            budget: BudgetShare::Unbounded,
        }
    }
}

impl ParallelConfig {
    /// A parallel section with `workers` workers and default cut/budget.
    pub fn with_workers(workers: usize) -> Self {
        ParallelConfig {
            workers,
            ..ParallelConfig::default()
        }
    }

    /// Set the cut granularity.
    pub fn with_max_tasks(mut self, max_tasks: usize) -> Self {
        self.max_tasks = max_tasks;
        self
    }

    /// Set the budget-sharing mode.
    pub fn with_budget(mut self, budget: BudgetShare) -> Self {
        self.budget = budget;
        self
    }

    /// Whether the parallel execution layer is active.
    pub fn enabled(&self) -> bool {
        self.workers >= 1
    }

    fn to_json_fragment(self) -> String {
        format!(
            "{{\"workers\": {}, \"max_tasks\": {}, \"budget\": {}}}",
            self.workers,
            self.max_tasks,
            self.budget.to_json_fragment()
        )
    }

    fn from_json(json: &Json) -> Result<ParallelConfig, ConfigParseError> {
        let budget = json.get("budget").ok_or(missing("parallel.budget"))?;
        let budget = BudgetShare::from_json(budget, "parallel.budget.value")?;
        Ok(ParallelConfig {
            workers: json
                .get("workers")
                .and_then(Json::as_usize)
                .ok_or(missing("parallel.workers"))?,
            max_tasks: json
                .get("max_tasks")
                .and_then(Json::as_usize)
                .ok_or(missing("parallel.max_tasks"))?,
            budget,
        })
    }
}

/// The distributed execution section of an [`EngineConfig`]: how many
/// subtree tasks one factorization is sharded into across worker
/// *processes*, the cluster-level memory budget their admissions share, and
/// the lease under which the coordinator hands a task out.
///
/// `tasks == 0` (the default) keeps execution in-process.  With
/// `tasks >= 2` a coordinator `serve` process plans the problem, cuts the
/// per-column tree into at most `tasks` balanced subtrees, and hands them to
/// worker processes over the internal claim/contribute endpoints; the
/// coordinator then merges the above-cut columns in tree order, so the
/// factor is bit-identical to the single-process path.  Like the in-process
/// cut, the task set depends only on the plan and `tasks` — never on how
/// many worker processes happen to be attached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedConfig {
    /// Maximum number of subtree tasks to shard into (0 = not distributed).
    pub tasks: usize,
    /// Cluster-level budget the coordinator's ledger admits tasks under.
    pub budget: BudgetShare,
    /// Lease duration per claimed task, in milliseconds (monotonic clock):
    /// a worker that neither contributes nor extends within the lease is
    /// presumed dead and its task is re-issued.
    pub lease_ms: u64,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            tasks: 0,
            budget: BudgetShare::Unbounded,
            lease_ms: 30_000,
        }
    }
}

impl DistributedConfig {
    /// A distributed section sharding into at most `tasks` subtree tasks,
    /// with an unbounded budget and the default 30 s lease.
    pub fn with_tasks(tasks: usize) -> Self {
        DistributedConfig {
            tasks,
            ..DistributedConfig::default()
        }
    }

    /// Set the cluster-level budget-sharing mode.
    pub fn with_budget(mut self, budget: BudgetShare) -> Self {
        self.budget = budget;
        self
    }

    /// Set the task lease duration in milliseconds.
    pub fn with_lease_ms(mut self, lease_ms: u64) -> Self {
        self.lease_ms = lease_ms;
        self
    }

    /// Whether distributed execution is requested (sharding needs at least
    /// two tasks to mean anything).
    pub fn enabled(&self) -> bool {
        self.tasks >= 2
    }

    fn to_json_fragment(self) -> String {
        format!(
            "{{\"tasks\": {}, \"budget\": {}, \"lease_ms\": {}}}",
            self.tasks,
            self.budget.to_json_fragment(),
            self.lease_ms
        )
    }

    fn from_json(json: &Json) -> Result<DistributedConfig, ConfigParseError> {
        let budget = json.get("budget").ok_or(missing("distributed.budget"))?;
        let budget = BudgetShare::from_json(budget, "distributed.budget.value")?;
        Ok(DistributedConfig {
            tasks: json
                .get("tasks")
                .and_then(Json::as_usize)
                .ok_or(missing("distributed.tasks"))?,
            budget,
            lease_ms: json
                .get("lease_ms")
                .and_then(Json::as_u64)
                .ok_or(missing("distributed.lease_ms"))?,
        })
    }
}

/// Where the right-hand sides of the solve stage come from.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveRhs {
    /// `count` deterministic pseudo-random right-hand sides derived from
    /// `seed` (entries in `[-1, 1)`), generated after the factorization so
    /// the problem dimension is known.
    Generated {
        /// Number of right-hand sides.
        count: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Explicit right-hand-side vectors, each of the problem dimension.
    Vectors(Vec<Vec<f64>>),
}

/// The solve section of an [`EngineConfig`]: whether `execute` follows the
/// numeric factorization with forward/backward substitution, what
/// right-hand sides it solves, and whether the residual is checked.
///
/// Solving requires the numeric stage (`numeric: true`); the batch is
/// processed through [`multifrontal::CholeskyFactor::solve_batch`], so a
/// `k`-column batch costs one pass over the factor, not `k`.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveConfig {
    /// Whether the solve stage runs at all.
    pub enabled: bool,
    /// The right-hand sides.
    pub rhs: SolveRhs,
    /// Whether to compute the max-norm residual `‖Ax − b‖∞` per right-hand
    /// side (costs one symmetric multiply each).
    pub check_residual: bool,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            enabled: false,
            rhs: SolveRhs::Generated { count: 1, seed: 1 },
            check_residual: true,
        }
    }
}

impl SolveConfig {
    /// An enabled solve section with `count` generated right-hand sides.
    pub fn generated(count: usize, seed: u64) -> Self {
        SolveConfig {
            enabled: true,
            rhs: SolveRhs::Generated { count, seed },
            check_residual: true,
        }
    }

    /// An enabled solve section with explicit right-hand sides.
    pub fn vectors(vectors: Vec<Vec<f64>>) -> Self {
        SolveConfig {
            enabled: true,
            rhs: SolveRhs::Vectors(vectors),
            check_residual: true,
        }
    }

    /// Enable or disable the residual check.
    pub fn with_check(mut self, check_residual: bool) -> Self {
        self.check_residual = check_residual;
        self
    }

    /// Number of right-hand sides this section asks for.
    pub fn rhs_count(&self) -> usize {
        match &self.rhs {
            SolveRhs::Generated { count, .. } => *count,
            SolveRhs::Vectors(vectors) => vectors.len(),
        }
    }

    fn to_json_fragment(&self) -> String {
        let rhs = match &self.rhs {
            SolveRhs::Generated { count, seed } => {
                format!("{{\"type\": \"generated\", \"count\": {count}, \"seed\": {seed}}}")
            }
            SolveRhs::Vectors(vectors) => {
                let rendered: Vec<String> = vectors
                    .iter()
                    .map(|vector| {
                        let entries: Vec<String> = vector
                            .iter()
                            // Non-finite entries are not JSON; `null` keeps
                            // the document well-formed and the parser then
                            // reports the mistyped entry (validation rejects
                            // non-finite right-hand sides anyway).
                            .map(|v| {
                                if v.is_finite() {
                                    format!("{v}")
                                } else {
                                    "null".to_string()
                                }
                            })
                            .collect();
                        format!("[{}]", entries.join(","))
                    })
                    .collect();
                format!(
                    "{{\"type\": \"vectors\", \"values\": [{}]}}",
                    rendered.join(",")
                )
            }
        };
        format!(
            "{{\"enabled\": {}, \"rhs\": {rhs}, \"check_residual\": {}}}",
            self.enabled, self.check_residual
        )
    }

    fn from_json(json: &Json) -> Result<SolveConfig, ConfigParseError> {
        let rhs = json.get("rhs").ok_or(missing("solve.rhs"))?;
        let rhs = match rhs.get("type").and_then(Json::as_str) {
            Some("generated") => SolveRhs::Generated {
                count: rhs
                    .get("count")
                    .and_then(Json::as_usize)
                    .ok_or(missing("solve.rhs.count"))?,
                seed: rhs
                    .get("seed")
                    .and_then(Json::as_u64)
                    .ok_or(missing("solve.rhs.seed"))?,
            },
            Some("vectors") => {
                let values = rhs
                    .get("values")
                    .and_then(Json::as_array)
                    .ok_or(missing("solve.rhs.values"))?;
                let vectors: Result<Vec<Vec<f64>>, ConfigParseError> = values
                    .iter()
                    .map(|vector| {
                        vector
                            .as_array()
                            .ok_or(missing("solve.rhs.values"))?
                            .iter()
                            .map(|v| {
                                v.as_f64()
                                    .ok_or_else(|| invalid("non-numeric RHS entry".to_string()))
                            })
                            .collect()
                    })
                    .collect();
                SolveRhs::Vectors(vectors?)
            }
            other => {
                return Err(invalid(format!("unknown solve rhs type {other:?}")));
            }
        };
        Ok(SolveConfig {
            enabled: json
                .get("enabled")
                .and_then(Json::as_bool)
                .ok_or(missing("solve.enabled"))?,
            rhs,
            check_residual: json
                .get("check_residual")
                .and_then(Json::as_bool)
                .ok_or(missing("solve.check_residual"))?,
        })
    }
}

/// A full problem description; see the module docs.
///
/// ```
/// use engine::{EngineConfig, MemoryBudget};
/// use sparsemat::gen::ProblemKind;
///
/// let config = EngineConfig::generated(ProblemKind::Grid2d, 400, 42)
///     .with_solver("minmem")
///     .with_policy("FirstFit")
///     .with_memory(MemoryBudget::FractionOfPeak(0.5));
/// // The configuration round-trips through JSON bit-for-bit.
/// let parsed = EngineConfig::from_json(&config.to_json()).unwrap();
/// assert_eq!(parsed, config);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// The problem source.
    pub source: ProblemSource,
    /// Fill-reducing ordering (ignored for [`ProblemSource::Prebuilt`]).
    pub ordering: OrderingMethod,
    /// Relaxed-amalgamation allowance (ignored for prebuilt trees).
    pub amalgamation: usize,
    /// MinMemory solver name (resolved in the engine's `SolverRegistry`).
    pub solver: String,
    /// Eviction policy name (resolved in the engine's `PolicyRegistry`).
    pub policy: String,
    /// Main-memory budget of the out-of-core stage.
    pub memory: MemoryBudget,
    /// Whether `execute` also runs the numeric multifrontal factorization
    /// (requires a matrix source).
    pub numeric: bool,
    /// The solve stage (off by default; requires `numeric`).
    pub solve: SolveConfig,
    /// Parallel execution of the numeric stage (off by default).
    pub parallel: ParallelConfig,
    /// Distributed (multi-process) execution of the numeric stage (off by
    /// default).
    pub distributed: DistributedConfig,
}

impl EngineConfig {
    /// A configuration for a generated problem, with default ordering
    /// (minimum degree), no amalgamation, the `minmem` solver, the `LSNF`
    /// policy, unlimited memory and no numeric run.
    pub fn generated(kind: ProblemKind, nodes: usize, seed: u64) -> Self {
        Self::with_source(ProblemSource::Generated { kind, nodes, seed })
    }

    /// A configuration reading a MatrixMarket file; defaults as in
    /// [`EngineConfig::generated`].
    pub fn matrix_market(path: impl Into<String>) -> Self {
        Self::with_source(ProblemSource::MatrixMarket { path: path.into() })
    }

    /// A configuration for a prebuilt tree; defaults as in
    /// [`EngineConfig::generated`].
    pub fn prebuilt(tree: Tree) -> Self {
        Self::with_source(ProblemSource::Prebuilt { tree })
    }

    fn with_source(source: ProblemSource) -> Self {
        EngineConfig {
            source,
            ordering: OrderingMethod::MinimumDegree,
            amalgamation: 1,
            solver: "minmem".to_string(),
            policy: "LSNF".to_string(),
            memory: MemoryBudget::Unlimited,
            numeric: false,
            solve: SolveConfig::default(),
            parallel: ParallelConfig::default(),
            distributed: DistributedConfig::default(),
        }
    }

    /// Set the ordering method.
    pub fn with_ordering(mut self, ordering: OrderingMethod) -> Self {
        self.ordering = ordering;
        self
    }

    /// Set the relaxed-amalgamation allowance.
    pub fn with_amalgamation(mut self, amalgamation: usize) -> Self {
        self.amalgamation = amalgamation;
        self
    }

    /// Set the solver name.
    pub fn with_solver(mut self, solver: impl Into<String>) -> Self {
        self.solver = solver.into();
        self
    }

    /// Set the eviction policy name.
    pub fn with_policy(mut self, policy: impl Into<String>) -> Self {
        self.policy = policy.into();
        self
    }

    /// Set the memory budget.
    pub fn with_memory(mut self, memory: MemoryBudget) -> Self {
        self.memory = memory;
        self
    }

    /// Enable or disable the numeric factorization stage.
    pub fn with_numeric(mut self, numeric: bool) -> Self {
        self.numeric = numeric;
        self
    }

    /// Set the solve section (solving additionally requires the numeric
    /// stage).
    pub fn with_solve(mut self, solve: SolveConfig) -> Self {
        self.solve = solve;
        self
    }

    /// Set the parallel execution section (implies nothing about `numeric`;
    /// parallel execution additionally requires the numeric stage).
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Set the distributed execution section (distributed execution
    /// additionally requires the numeric stage).
    pub fn with_distributed(mut self, distributed: DistributedConfig) -> Self {
        self.distributed = distributed;
        self
    }

    /// A short human-readable name of the problem source, used in reports.
    pub fn source_name(&self) -> String {
        match &self.source {
            ProblemSource::Generated { kind, nodes, seed } => {
                format!("{}-{}-s{}", kind.name(), nodes, seed)
            }
            ProblemSource::MatrixMarket { path } => path.clone(),
            ProblemSource::Prebuilt { tree } => format!("prebuilt-{}", tree.len()),
        }
    }

    /// Render the configuration as a JSON document (schema
    /// `engine_config/v1`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"engine_config/v1\",\n");
        match &self.source {
            ProblemSource::Generated { kind, nodes, seed } => {
                out.push_str(&format!(
                    "  \"source\": {{\"type\": \"generated\", \"kind\": \"{}\", \
                     \"nodes\": {nodes}, \"seed\": {seed}}},\n",
                    kind.name()
                ));
            }
            ProblemSource::MatrixMarket { path } => {
                out.push_str(&format!(
                    "  \"source\": {{\"type\": \"matrix_market\", \"path\": \"{}\"}},\n",
                    escape(path)
                ));
            }
            ProblemSource::Prebuilt { tree } => {
                let parents: Vec<String> = tree
                    .parents()
                    .iter()
                    .map(|p| match p {
                        Some(parent) => parent.to_string(),
                        None => "-1".to_string(),
                    })
                    .collect();
                let files: Vec<String> = tree.files().iter().map(|f| f.to_string()).collect();
                let weights: Vec<String> = tree.weights().iter().map(|w| w.to_string()).collect();
                out.push_str(&format!(
                    "  \"source\": {{\"type\": \"prebuilt\", \"parents\": [{}], \
                     \"files\": [{}], \"weights\": [{}]}},\n",
                    parents.join(","),
                    files.join(","),
                    weights.join(",")
                ));
            }
        }
        out.push_str(&format!("  \"ordering\": \"{}\",\n", self.ordering.name()));
        out.push_str(&format!("  \"amalgamation\": {},\n", self.amalgamation));
        out.push_str(&format!("  \"solver\": \"{}\",\n", escape(&self.solver)));
        out.push_str(&format!("  \"policy\": \"{}\",\n", escape(&self.policy)));
        match self.memory {
            MemoryBudget::Unlimited => {
                out.push_str("  \"memory\": {\"type\": \"unlimited\"},\n");
            }
            MemoryBudget::Absolute(size) => {
                out.push_str(&format!(
                    "  \"memory\": {{\"type\": \"absolute\", \"value\": {size}}},\n"
                ));
            }
            MemoryBudget::FractionOfPeak(fraction) => {
                // `{}` on f64 prints the shortest representation that parses
                // back to the same value, so the round-trip is exact.
                out.push_str(&format!(
                    "  \"memory\": {{\"type\": \"fraction\", \"value\": {fraction}}},\n"
                ));
            }
        }
        out.push_str(&format!("  \"numeric\": {},\n", self.numeric));
        out.push_str(&format!(
            "  \"solve\": {},\n",
            self.solve.to_json_fragment()
        ));
        // The distributed section is emitted only when it differs from the
        // default: the config hash is FNV-1a over these bytes, and every
        // config written before the section existed must keep its hash.
        if self.distributed == DistributedConfig::default() {
            out.push_str(&format!(
                "  \"parallel\": {}\n",
                self.parallel.to_json_fragment()
            ));
        } else {
            out.push_str(&format!(
                "  \"parallel\": {},\n",
                self.parallel.to_json_fragment()
            ));
            out.push_str(&format!(
                "  \"distributed\": {}\n",
                self.distributed.to_json_fragment()
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Parse a configuration produced by [`EngineConfig::to_json`].
    pub fn from_json(text: &str) -> Result<EngineConfig, ConfigParseError> {
        let json = Json::parse(text)?;
        let source = json.get("source").ok_or(missing("source"))?;
        let source = match source.get("type").and_then(Json::as_str) {
            Some("generated") => {
                let kind_name = source
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or(missing("source.kind"))?;
                let kind = ProblemKind::from_name(kind_name)
                    .ok_or_else(|| invalid(format!("unknown problem kind '{kind_name}'")))?;
                ProblemSource::Generated {
                    kind,
                    nodes: source
                        .get("nodes")
                        .and_then(Json::as_usize)
                        .ok_or(missing("source.nodes"))?,
                    seed: source
                        .get("seed")
                        .and_then(Json::as_u64)
                        .ok_or(missing("source.seed"))?,
                }
            }
            Some("matrix_market") => ProblemSource::MatrixMarket {
                path: source
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or(missing("source.path"))?
                    .to_string(),
            },
            Some("prebuilt") => {
                let parents = int_array(source, "parents")?;
                let parents: Vec<Option<usize>> = parents
                    .iter()
                    .map(|&p| if p < 0 { None } else { Some(p as usize) })
                    .collect();
                let files = int_array(source, "files")?;
                let weights = int_array(source, "weights")?;
                let tree = Tree::from_parents(&parents, &files, &weights)
                    .map_err(|e| invalid(format!("invalid prebuilt tree: {e}")))?;
                ProblemSource::Prebuilt { tree }
            }
            other => {
                return Err(invalid(format!("unknown source type {other:?}")));
            }
        };
        let ordering_name = json
            .get("ordering")
            .and_then(Json::as_str)
            .ok_or(missing("ordering"))?;
        let ordering = OrderingMethod::from_name(ordering_name)
            .ok_or_else(|| invalid(format!("unknown ordering '{ordering_name}'")))?;
        let memory = json.get("memory").ok_or(missing("memory"))?;
        let memory = match memory.get("type").and_then(Json::as_str) {
            Some("unlimited") => MemoryBudget::Unlimited,
            Some("absolute") => MemoryBudget::Absolute(
                memory
                    .get("value")
                    .and_then(Json::as_i64)
                    .ok_or(missing("memory.value"))?,
            ),
            Some("fraction") => MemoryBudget::FractionOfPeak(
                memory
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or(missing("memory.value"))?,
            ),
            other => {
                return Err(invalid(format!("unknown memory type {other:?}")));
            }
        };
        Ok(EngineConfig {
            source,
            ordering,
            amalgamation: json
                .get("amalgamation")
                .and_then(Json::as_usize)
                .ok_or(missing("amalgamation"))?,
            solver: json
                .get("solver")
                .and_then(Json::as_str)
                .ok_or(missing("solver"))?
                .to_string(),
            policy: json
                .get("policy")
                .and_then(Json::as_str)
                .ok_or(missing("policy"))?
                .to_string(),
            memory,
            numeric: json
                .get("numeric")
                .and_then(Json::as_bool)
                .ok_or(missing("numeric"))?,
            // Absent in documents written before the solve stage existed;
            // the default (disabled) section keeps them parseable.
            solve: match json.get("solve") {
                Some(section) => SolveConfig::from_json(section)?,
                None => SolveConfig::default(),
            },
            // Absent in documents written before the parallel layer existed;
            // the default (sequential) section keeps them parseable.
            parallel: match json.get("parallel") {
                Some(section) => ParallelConfig::from_json(section)?,
                None => ParallelConfig::default(),
            },
            // Absent in documents that never requested distributed
            // execution; default on parse.
            distributed: match json.get("distributed") {
                Some(section) => DistributedConfig::from_json(section)?,
                None => DistributedConfig::default(),
            },
        })
    }

    /// A stable 64-bit FNV-1a hash of the canonical JSON form, as a
    /// 16-character hex string.  Reports carry it as provenance so results
    /// can be traced back to the exact configuration that produced them.
    pub fn hash(&self) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.to_json().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        format!("{hash:016x}")
    }
}

fn int_array(json: &Json, key: &'static str) -> Result<Vec<i64>, ConfigParseError> {
    json.get(key)
        .and_then(Json::as_array)
        .ok_or(missing(key))?
        .iter()
        .map(|v| {
            v.as_i64()
                .ok_or_else(|| invalid(format!("non-integer in '{key}'")))
        })
        .collect()
}

/// Errors raised while parsing an [`EngineConfig`] from JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigParseError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// A required field is missing or has the wrong type.
    MissingField(&'static str),
    /// A field has an invalid value.
    Invalid(String),
}

fn missing(field: &'static str) -> ConfigParseError {
    ConfigParseError::MissingField(field)
}

fn invalid(message: String) -> ConfigParseError {
    ConfigParseError::Invalid(message)
}

impl std::fmt::Display for ConfigParseError {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigParseError::Json(err) => write!(fmt, "{err}"),
            ConfigParseError::MissingField(field) => {
                write!(fmt, "missing or mistyped field '{field}'")
            }
            ConfigParseError::Invalid(message) => write!(fmt, "{message}"),
        }
    }
}

impl std::error::Error for ConfigParseError {}

impl From<JsonError> for ConfigParseError {
    fn from(err: JsonError) -> Self {
        ConfigParseError::Json(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treemem::gadgets::harpoon;

    #[test]
    fn every_source_kind_round_trips() {
        let configs = vec![
            EngineConfig::generated(ProblemKind::PowerLaw, 300, 0x9e37_79b9_7f4a_7c15)
                .with_ordering(OrderingMethod::NestedDissection)
                .with_amalgamation(16)
                .with_solver("liu")
                .with_policy("BestKComb")
                .with_memory(MemoryBudget::FractionOfPeak(0.3751))
                .with_numeric(true),
            EngineConfig::matrix_market("data/with \"quotes\"\n.mtx")
                .with_memory(MemoryBudget::Absolute(12_345)),
            EngineConfig::prebuilt(harpoon(3, 300, 1)),
        ];
        for config in configs {
            let parsed = EngineConfig::from_json(&config.to_json()).unwrap();
            assert_eq!(parsed, config);
            assert_eq!(parsed.hash(), config.hash());
        }
    }

    #[test]
    fn hashes_distinguish_configurations() {
        let a = EngineConfig::generated(ProblemKind::Grid2d, 400, 1);
        let b = a.clone().with_policy("FirstFit");
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn parallel_sections_round_trip() {
        let sections = [
            ParallelConfig::default(),
            ParallelConfig::with_workers(4),
            ParallelConfig::with_workers(8)
                .with_max_tasks(17)
                .with_budget(BudgetShare::MultipleOfSequentialPeak(1.75)),
            ParallelConfig::with_workers(2).with_budget(BudgetShare::Entries(123_456)),
        ];
        for parallel in sections {
            let config = EngineConfig::generated(ProblemKind::Grid2d, 200, 1)
                .with_numeric(true)
                .with_parallel(parallel);
            let parsed = EngineConfig::from_json(&config.to_json()).unwrap();
            assert_eq!(parsed, config);
        }
    }

    #[test]
    fn solve_sections_round_trip() {
        let sections = [
            SolveConfig::default(),
            SolveConfig::generated(4, 99),
            SolveConfig::generated(1, 0).with_check(false),
            SolveConfig::vectors(vec![vec![1.0, -2.5, 0.125], vec![0.0, 3.0, -1.0]]),
        ];
        for solve in sections {
            let config = EngineConfig::generated(ProblemKind::Grid2d, 200, 1)
                .with_numeric(true)
                .with_solve(solve);
            let parsed = EngineConfig::from_json(&config.to_json()).unwrap();
            assert_eq!(parsed, config);
        }
    }

    #[test]
    fn solve_section_changes_the_hash() {
        // A cached factor keyed by config hash must never be shared between
        // a request that solves and one that does not.
        let plain = EngineConfig::generated(ProblemKind::Grid2d, 200, 1).with_numeric(true);
        let solving = plain.clone().with_solve(SolveConfig::generated(2, 7));
        assert_ne!(plain.hash(), solving.hash());
        let unchecked = plain
            .clone()
            .with_solve(SolveConfig::generated(2, 7).with_check(false));
        assert_ne!(solving.hash(), unchecked.hash());
    }

    #[test]
    fn documents_without_a_solve_section_still_parse() {
        let config = EngineConfig::generated(ProblemKind::Grid2d, 200, 1);
        let legacy: String = config
            .to_json()
            .lines()
            .filter(|line| !line.contains("\"solve\""))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = EngineConfig::from_json(&legacy).unwrap();
        assert_eq!(parsed, config);
    }

    #[test]
    fn non_finite_rhs_entries_still_serialize_to_valid_json() {
        let config = EngineConfig::generated(ProblemKind::Grid2d, 100, 1)
            .with_solve(SolveConfig::vectors(vec![vec![1.0, f64::NAN]]));
        let json = config.to_json();
        assert!(crate::json::Json::parse(&json).is_ok(), "{json}");
        assert!(matches!(
            EngineConfig::from_json(&json),
            Err(ConfigParseError::Invalid(_))
        ));
    }

    #[test]
    fn parallel_section_changes_the_hash() {
        // The effective-config hash must distinguish a serial request from a
        // parallel one, or a plan cache would serve the wrong plan.
        let serial = EngineConfig::generated(ProblemKind::Grid2d, 200, 1).with_numeric(true);
        let parallel = serial
            .clone()
            .with_parallel(ParallelConfig::with_workers(4));
        assert_ne!(serial.hash(), parallel.hash());
        let rebudgeted = serial
            .clone()
            .with_parallel(ParallelConfig::with_workers(4).with_budget(BudgetShare::Entries(10)));
        assert_ne!(parallel.hash(), rebudgeted.hash());
    }

    #[test]
    fn documents_without_a_parallel_section_still_parse() {
        // Configs serialized before the parallel layer existed have no
        // "parallel" key (and predate the solve section too); they must keep
        // parsing with the default sections.
        let config = EngineConfig::generated(ProblemKind::Grid2d, 200, 1);
        let legacy: String = config
            .to_json()
            .lines()
            .filter(|line| !line.contains("\"parallel\"") && !line.contains("\"solve\""))
            .collect::<Vec<_>>()
            .join("\n")
            .replace("\"numeric\": false,", "\"numeric\": false");
        let parsed = EngineConfig::from_json(&legacy).unwrap();
        assert_eq!(parsed, config);
    }

    #[test]
    fn non_finite_budget_multiples_still_serialize_to_valid_json() {
        // A bare NaN/inf is not JSON; the serializer must stay well-formed
        // even for a configuration that validation will reject later.
        for multiple in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let config = EngineConfig::generated(ProblemKind::Grid2d, 100, 1).with_parallel(
                ParallelConfig::with_workers(2)
                    .with_budget(BudgetShare::MultipleOfSequentialPeak(multiple)),
            );
            let json = config.to_json();
            assert!(crate::json::Json::parse(&json).is_ok(), "{json}");
            // The round-trip fails with a *typed* parse error, not a JSON
            // syntax error.
            assert!(matches!(
                EngineConfig::from_json(&json),
                Err(ConfigParseError::MissingField("parallel.budget.value"))
            ));
        }
    }

    #[test]
    fn distributed_sections_round_trip() {
        let sections = [
            DistributedConfig::with_tasks(2),
            DistributedConfig::with_tasks(64)
                .with_budget(BudgetShare::MultipleOfSequentialPeak(1.25))
                .with_lease_ms(2_000),
            DistributedConfig::with_tasks(8).with_budget(BudgetShare::Entries(9_999)),
        ];
        for distributed in sections {
            let config = EngineConfig::generated(ProblemKind::Grid2d, 200, 1)
                .with_numeric(true)
                .with_distributed(distributed);
            let parsed = EngineConfig::from_json(&config.to_json()).unwrap();
            assert_eq!(parsed, config);
        }
    }

    #[test]
    fn distributed_section_changes_the_hash() {
        // A factor cached from a local run may be *reused* by a distributed
        // run only via an explicit lookup, never by hash collision.
        let local = EngineConfig::generated(ProblemKind::Grid2d, 200, 1).with_numeric(true);
        let sharded = local
            .clone()
            .with_distributed(DistributedConfig::with_tasks(4));
        assert_ne!(local.hash(), sharded.hash());
        let released = local
            .clone()
            .with_distributed(DistributedConfig::with_tasks(4).with_lease_ms(1_000));
        assert_ne!(sharded.hash(), released.hash());
    }

    #[test]
    fn default_distributed_sections_leave_the_document_unchanged() {
        // Emitting the section only when non-default keeps every pre-existing
        // config hash stable.
        let config = EngineConfig::generated(ProblemKind::Grid2d, 200, 1).with_numeric(true);
        let explicit_default = config
            .clone()
            .with_distributed(DistributedConfig::default());
        assert_eq!(config.to_json(), explicit_default.to_json());
        assert!(!config.to_json().contains("\"distributed\""));
        assert_eq!(config.hash(), explicit_default.hash());
        let parsed = EngineConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(parsed.distributed, DistributedConfig::default());
    }

    #[test]
    fn distributed_enablement_needs_at_least_two_tasks() {
        assert!(!DistributedConfig::default().enabled());
        assert!(!DistributedConfig::with_tasks(1).enabled());
        assert!(DistributedConfig::with_tasks(2).enabled());
    }

    #[test]
    fn budget_share_resolves_against_the_sequential_peak() {
        assert_eq!(BudgetShare::Unbounded.resolve(1000), None);
        assert_eq!(
            BudgetShare::MultipleOfSequentialPeak(1.5).resolve(1000),
            Some(1500)
        );
        assert_eq!(BudgetShare::Entries(7).resolve(1000), Some(7));
    }

    #[test]
    fn parse_rejects_malformed_configs() {
        assert!(matches!(
            EngineConfig::from_json("not json"),
            Err(ConfigParseError::Json(_))
        ));
        assert!(matches!(
            EngineConfig::from_json("{}"),
            Err(ConfigParseError::MissingField("source"))
        ));
        let bad_kind =
            r#"{"source": {"type": "generated", "kind": "nope", "nodes": 10, "seed": 1}}"#;
        assert!(matches!(
            EngineConfig::from_json(bad_kind),
            Err(ConfigParseError::Invalid(_))
        ));
    }
}
