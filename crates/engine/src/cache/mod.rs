//! The serving cache layer: a byte-sized, policy-pluggable core shared by
//! the plan cache and the server's factor cache.
//!
//! The workspace ships nine registry-indexed eviction policies
//! ([`minio::PolicyRegistry`]) that historically only ran inside MinIO
//! simulations, while the serving caches were plain count-based LRUs.  This
//! module unifies the two worlds:
//!
//! * [`core`] — [`CacheCore`], a keyed cache of [`Arc`](std::sync::Arc)ed
//!   values with byte-accurate accounting, TTL expiry, per-tenant quotas and
//!   a fair-share floor, evicting through any registered serving policy.
//! * [`policy`] — the [`ServingPolicy`] abstraction: native online
//!   implementations of LRU, size-aware GDSF and S3-FIFO, plus a bridge
//!   ([`minio::serving`]) that lets every simulation heuristic (LSNF,
//!   FirstFit, BestFit, FirstFill, BestFill, BestKComb, LruDist) drive an
//!   online cache.  [`ServingPolicyRegistry::with_builtin`] catalogues all
//!   ten by name.
//! * [`plan`] — [`PlanCache`], the single-flight, TTL-aware plan cache
//!   rebuilt on the core; its legacy count-bounded constructor keeps the
//!   historical LRU semantics bit-for-bit.
//!
//! Capacity is expressed in **bytes** (entry footprints are estimated at
//! insert time via `Plan::approx_heap_bytes` and friends); the legacy
//! entry-count bound remains available for compatibility and tests.  Tenancy
//! is cooperative: every operation names a tenant (default `"public"`), a
//! tenant over its byte quota makes room among its *own* entries, and the
//! fair-share floor keeps one tenant's cold scan from evicting another
//! tenant's hot working set — over-quota inserts are *admitted but
//! uncacheable* ([`Admission`]), never rejected.

pub mod core;
pub mod plan;
pub mod policy;

pub use self::core::{fingerprint64, Admission, CacheConfig, CacheCore};
pub use plan::{PlanCache, PlanCacheConfig, DEFAULT_TENANT};
pub use policy::{EntryMeta, EvictionPrompt, ServingPolicy, ServingPolicyRegistry, ServingSession};

/// Point-in-time counters of a serving cache; see the field docs.
///
/// The counter fields predate the byte-sized core and keep their exact names
/// (`/stats` compatibility); the policy name, byte accounting and per-tenant
/// usage were added with the pluggable core.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only an expired entry).
    pub misses: u64,
    /// Entries dropped to keep the cache within its capacity or a quota.
    pub evictions: u64,
    /// Entries dropped because they outlived the TTL.
    pub expirations: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum number of resident entries (0 when bounded by bytes only).
    pub capacity: usize,
    /// Name of the eviction policy in charge.
    pub policy: String,
    /// Bytes currently resident.
    pub bytes_used: u64,
    /// Byte capacity (`u64::MAX` when bounded by entry count only).
    pub bytes_capacity: u64,
    /// Inserts admitted but not cached (too large, over quota, contended).
    pub uncacheable: u64,
    /// Per-tenant usage, sorted by tenant name.
    pub per_tenant: Vec<TenantUsage>,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One tenant's slice of a cache, reported inside [`CacheStats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantUsage {
    /// Tenant name (the `X-Tenant` header value; `"public"` by default).
    pub tenant: String,
    /// Bytes this tenant's entries occupy.
    pub bytes: u64,
    /// Number of resident entries charged to this tenant.
    pub entries: usize,
    /// Lookups by this tenant that hit.
    pub hits: u64,
    /// Lookups by this tenant that missed.
    pub misses: u64,
    /// This tenant's inserts that were admitted but not cached.
    pub uncacheable: u64,
}
