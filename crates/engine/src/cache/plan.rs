//! A single-flight, TTL-aware cache of [`Plan`]s keyed by effective-config
//! hash, built on [`CacheCore`].
//!
//! Planning — problem acquisition, fill-reducing ordering, elimination tree,
//! column counts, amalgamation — dominates the cost of a request, while a
//! [`Plan`] is immutable-after-build and internally caches its solver
//! traversals and divisible bounds.  A server handling repeated
//! configurations therefore wants exactly one `Plan` per distinct effective
//! configuration, shared via [`Arc`] across worker threads; this module
//! provides that cache plus the counters the `/stats` endpoint reports.
//!
//! Two sizing modes:
//!
//! * [`PlanCache::new`] — the legacy count-bounded LRU (capacity in entries,
//!   optional TTL), bit-compatible with the historical cache;
//! * [`PlanCache::with_config`] — the production mode: a byte budget, any
//!   registered eviction policy, per-tenant quotas and a fair-share floor.
//!   Entry footprints come from [`Plan::approx_heap_bytes`] at insert time.
//!
//! Misses stay *single-flight* in both modes: concurrent callers with the
//! same key wait for the one planner instead of re-running the expensive
//! symbolic stages.  When admission control leaves a plan uncacheable (over
//! quota, contended, too large), the planner parks it on a small sideline
//! shelf so the waiters of that very flight still share the plan instead of
//! stampeding into N repeated plans — the shelf is consulted only after an
//! in-flight wait, never on the fast path, so it cannot serve stale data to
//! fresh lookups.
//!
//! ```
//! use engine::{Engine, EngineConfig, PlanCache};
//! use treemem::gadgets::harpoon;
//!
//! let engine = Engine::new();
//! let cache = PlanCache::new(8, None);
//! let config = EngineConfig::prebuilt(harpoon(3, 300, 1));
//! let (_, hit) = cache.get_or_plan(&engine, &config).unwrap();
//! assert!(!hit);
//! let (_, hit) = cache.get_or_plan(&engine, &config).unwrap();
//! assert!(hit);
//! assert_eq!(cache.stats().hits, 1);
//! ```

use std::sync::Arc;
use std::time::Duration;

use treemem::registry::UnknownName;
use treemem::sync::{TrackedCondvar, TrackedMutex};

use super::core::{Admission, CacheConfig, CacheCore};
use super::policy::ServingPolicyRegistry;
use super::CacheStats;
use crate::cancel::CancelToken;
use crate::config::EngineConfig;
use crate::run::{Engine, EngineError, Plan};

/// The tenant requests fall under when no `X-Tenant` header names one.
pub const DEFAULT_TENANT: &str = "public";

/// How many uncacheable plans the sideline shelf holds for their waiters.
const SIDELINE_LEN: usize = 8;

/// Construction parameters for the byte-sized plan cache.
#[derive(Debug, Clone)]
pub struct PlanCacheConfig {
    /// Eviction policy name (see [`ServingPolicyRegistry::with_builtin`]).
    pub policy: String,
    /// Byte budget for cached plans.
    pub bytes_capacity: u64,
    /// Optional legacy entry bound on top of the byte budget.
    pub max_entries: Option<usize>,
    /// Optional time-to-live.
    pub ttl: Option<Duration>,
    /// Per-tenant byte quota.
    pub tenant_quota_bytes: Option<u64>,
    /// Fair-share floor fraction in `[0, 1]`.
    pub tenant_floor: f64,
}

impl Default for PlanCacheConfig {
    fn default() -> Self {
        PlanCacheConfig {
            policy: "GDSF".to_string(),
            bytes_capacity: u64::MAX,
            max_entries: None,
            ttl: None,
            tenant_quota_bytes: None,
            tenant_floor: 0.0,
        }
    }
}

/// The shared plan cache; see the module docs.
pub struct PlanCache {
    core: CacheCore<Plan>,
    /// Keys currently being planned by some caller (single-flight): other
    /// callers of [`PlanCache::get_or_plan`] wait on [`PlanCache::settled`]
    /// instead of planning the same configuration concurrently.
    in_flight: TrackedMutex<Vec<String>>,
    /// Notified whenever a key leaves `in_flight`.
    settled: TrackedCondvar,
    /// Uncacheable plans parked for the waiters of their flight; entries
    /// are dropped when a new flight for the key starts.
    sideline: TrackedMutex<Vec<(String, Arc<Plan>)>>,
}

impl PlanCache {
    /// The legacy count-bounded LRU: at most `capacity` plans (at least 1),
    /// each living at most `ttl` (no expiry when `None`).
    pub fn new(capacity: usize, ttl: Option<Duration>) -> Self {
        let config = PlanCacheConfig {
            policy: "LRU".to_string(),
            bytes_capacity: u64::MAX,
            max_entries: Some(capacity.max(1)),
            ttl,
            ..PlanCacheConfig::default()
        };
        match Self::with_config(config) {
            Ok(cache) => cache,
            // "LRU" is always registered; keep the legacy constructor
            // infallible.
            Err(_) => unreachable!("the LRU policy is built in"),
        }
    }

    /// A byte-sized cache evicting via any registered policy.
    pub fn with_config(config: PlanCacheConfig) -> Result<Self, UnknownName> {
        let registry = ServingPolicyRegistry::with_builtin();
        let core = CacheCore::new(
            CacheConfig {
                policy: config.policy,
                bytes_capacity: config.bytes_capacity,
                max_entries: config.max_entries,
                ttl: config.ttl,
                tenant_quota_bytes: config.tenant_quota_bytes,
                tenant_floor: config.tenant_floor,
                lock_class: "plan-cache.entries",
            },
            &registry,
        )?;
        Ok(PlanCache {
            core,
            in_flight: TrackedMutex::new(Vec::new(), "plan-cache.in-flight"),
            settled: TrackedCondvar::new(),
            sideline: TrackedMutex::new(Vec::new(), "plan-cache.sideline"),
        })
    }

    /// Look up the plan cached under `key` for the default tenant,
    /// refreshing recency.  An expired entry drops and reports as a miss.
    pub fn get(&self, key: &str) -> Option<Arc<Plan>> {
        self.core.get(key, DEFAULT_TENANT)
    }

    /// [`PlanCache::get`] on behalf of `tenant`.
    pub fn get_for(&self, key: &str, tenant: &str) -> Option<Arc<Plan>> {
        self.core.get(key, tenant)
    }

    /// Insert `plan` under `key` for the default tenant.
    pub fn insert(&self, key: impl Into<String>, plan: Arc<Plan>) {
        let key = key.into();
        self.insert_for(&key, DEFAULT_TENANT, plan);
    }

    /// Insert `plan` under `key`, charged to `tenant`; the footprint is
    /// estimated from the plan.  Returns the admission verdict.
    pub fn insert_for(&self, key: &str, tenant: &str, plan: Arc<Plan>) -> Admission {
        let bytes = plan.approx_heap_bytes();
        self.core.insert(key, tenant, plan, bytes)
    }

    /// The cached plan for `config`'s effective-config hash, planning (and
    /// inserting) on a miss.  Returns the shared plan and whether the lookup
    /// hit.
    ///
    /// Misses are *single-flight*: concurrent callers with the same key
    /// wait for the one planner instead of each re-running the expensive
    /// ordering/symbolic stages, and then share its plan (reported as a
    /// hit).  Planning happens outside every lock, so a slow plan never
    /// blocks hits — or other misses — on different keys.
    pub fn get_or_plan(
        &self,
        engine: &Engine,
        config: &EngineConfig,
    ) -> Result<(Arc<Plan>, bool), EngineError> {
        self.get_or_plan_for(engine, config, DEFAULT_TENANT, None)
    }

    /// [`PlanCache::get_or_plan`] under a [`CancelToken`]: the token is
    /// threaded into [`Engine::plan_with_cancel`], and a caller *waiting* on
    /// another planner's in-flight key polls the token too, so its own
    /// deadline fires even while someone else does the planning.
    pub fn get_or_plan_with_cancel(
        &self,
        engine: &Engine,
        config: &EngineConfig,
        cancel: Option<&CancelToken>,
    ) -> Result<(Arc<Plan>, bool), EngineError> {
        self.get_or_plan_for(engine, config, DEFAULT_TENANT, cancel)
    }

    /// [`PlanCache::get_or_plan_with_cancel`] on behalf of `tenant`: hits,
    /// misses and the inserted plan's bytes are charged to it.
    pub fn get_or_plan_for(
        &self,
        engine: &Engine,
        config: &EngineConfig,
        tenant: &str,
        cancel: Option<&CancelToken>,
    ) -> Result<(Arc<Plan>, bool), EngineError> {
        let key = config.hash();
        self.single_flight(&key, tenant, cancel, || {
            engine.plan_with_cancel(config, cancel)
        })
    }

    /// The single-flight core: at most one caller plans `key` at a time;
    /// the others wait for it to settle and then share its entry.  The key
    /// settles on *every* exit from the planner — success, typed error, or
    /// panic (via [`SettleGuard`]) — so no outcome can wedge later callers.
    fn single_flight(
        &self,
        key: &str,
        tenant: &str,
        cancel: Option<&CancelToken>,
        plan: impl FnOnce() -> Result<Plan, EngineError>,
    ) -> Result<(Arc<Plan>, bool), EngineError> {
        loop {
            if let Some(plan) = self.core.get(key, tenant) {
                return Ok((plan, true));
            }
            let mut in_flight = self.in_flight.lock();
            if !in_flight.iter().any(|flying| flying == key) {
                // This caller becomes the planner for the key.  Any parked
                // result of a previous flight is stale now.
                in_flight.push(key.to_string());
                drop(in_flight);
                self.sideline.lock().retain(|(parked, _)| parked != key);
                break;
            }
            // Someone else is planning this key: wait until it settles,
            // then retry the lookup (normally a hit; a miss again only if
            // the planner failed or the entry went uncacheable — the
            // sideline shelf covers the latter).  With a token, wait in
            // slices so this caller's own deadline fires even though
            // someone else does the work.
            while in_flight.iter().any(|flying| flying == key) {
                match cancel {
                    Some(token) => {
                        if token.is_cancelled() {
                            return Err(EngineError::Cancelled {
                                stage: "plan",
                                elapsed: token.elapsed(),
                            });
                        }
                        let (guard, _) = self
                            .settled
                            .wait_timeout(in_flight, Duration::from_millis(25));
                        in_flight = guard;
                    }
                    None => {
                        in_flight = self.settled.wait(in_flight);
                    }
                }
            }
            drop(in_flight);
            // The flight settled without caching (admission control):
            // share the parked plan instead of re-planning.
            let parked = self
                .sideline
                .lock()
                .iter()
                .find(|(parked, _)| parked == key)
                .map(|(_, plan)| plan.clone());
            if let Some(plan) = parked {
                return Ok((plan, true));
            }
        }
        // From here on the key MUST settle no matter how the planner exits;
        // the guard handles the panic path (a planner that unwinds must not
        // leave its waiters blocked forever).
        let guard = SettleGuard { cache: self, key };
        let planned = plan();
        // Insert before the key settles, so woken waiters find the entry.
        let result = planned.map(|plan| {
            let plan = Arc::new(plan);
            if !self.insert_for(key, tenant, plan.clone()).is_cached() {
                let mut sideline = self.sideline.lock();
                sideline.retain(|(parked, _)| parked != key);
                sideline.push((key.to_string(), plan.clone()));
                let excess = sideline.len().saturating_sub(SIDELINE_LEN);
                sideline.drain(..excess);
            }
            (plan, false)
        });
        drop(guard);
        result
    }

    /// Current counters (a consistent snapshot for reporting).
    pub fn stats(&self) -> CacheStats {
        self.core.stats()
    }

    /// Audit the byte/tenant accounting; see
    /// [`CacheCore::validate_accounting`].
    pub fn validate_accounting(&self) -> Result<(), String> {
        self.core.validate_accounting()
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        self.core.clear();
        self.sideline.lock().clear();
    }
}

/// Removes `key` from the in-flight set and wakes the waiters on drop, so
/// the key settles even when the planner panics.  [`TrackedMutex::lock`] is
/// poison-tolerant: this drop runs *during* that very unwind, and panicking
/// again would abort the process.
struct SettleGuard<'c> {
    cache: &'c PlanCache,
    key: &'c str,
}

impl Drop for SettleGuard<'_> {
    fn drop(&mut self) {
        let mut in_flight = self.cache.in_flight.lock();
        in_flight.retain(|flying| flying != self.key);
        drop(in_flight);
        self.cache.settled.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treemem::gadgets::harpoon;

    fn config(seed: u64) -> EngineConfig {
        EngineConfig::prebuilt(harpoon(3, 300, seed as treemem::tree::Size))
    }

    #[test]
    fn plans_are_shared_on_hits() {
        let engine = Engine::new();
        let cache = PlanCache::new(4, None);
        let (first, hit_a) = cache.get_or_plan(&engine, &config(1)).unwrap();
        let (second, hit_b) = cache.get_or_plan(&engine, &config(1)).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(stats.policy, "LRU");
        assert!(stats.bytes_used > 0, "plans carry a byte footprint");
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let engine = Engine::new();
        let cache = PlanCache::new(2, None);
        let configs: Vec<EngineConfig> = (1..=3).map(config).collect();
        cache.get_or_plan(&engine, &configs[0]).unwrap();
        cache.get_or_plan(&engine, &configs[1]).unwrap();
        // Touch 0 so 1 becomes the LRU victim.
        cache.get_or_plan(&engine, &configs[0]).unwrap();
        cache.get_or_plan(&engine, &configs[2]).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&configs[0].hash()).is_some());
        assert!(cache.get(&configs[1].hash()).is_none());
        assert!(cache.get(&configs[2].hash()).is_some());
    }

    #[test]
    fn ttl_expires_entries() {
        let engine = Engine::new();
        let cache = PlanCache::new(4, Some(Duration::from_millis(20)));
        cache.get_or_plan(&engine, &config(1)).unwrap();
        assert!(cache.get(&config(1).hash()).is_some());
        std::thread::sleep(Duration::from_millis(40));
        assert!(cache.get(&config(1).hash()).is_none());
        let stats = cache.stats();
        assert_eq!(stats.expirations, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn clear_keeps_counters() {
        let engine = Engine::new();
        let cache = PlanCache::new(4, None);
        cache.get_or_plan(&engine, &config(1)).unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn planning_errors_pass_through() {
        let engine = Engine::new();
        let cache = PlanCache::new(4, None);
        let bad = config(1).with_solver("nope");
        assert!(cache.get_or_plan(&engine, &bad).is_err());
        assert_eq!(cache.stats().entries, 0);
        // The failed key settled: a later attempt plans again (and a valid
        // config on the same cache is unaffected).
        assert!(cache.get_or_plan(&engine, &bad).is_err());
        assert!(cache.get_or_plan(&engine, &config(1)).is_ok());
    }

    #[test]
    fn a_panicking_planner_settles_the_key_and_unblocks_waiters() {
        let engine = Engine::new();
        let cache = PlanCache::new(4, None);
        let config = config(5);
        let key = config.hash();
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            // Thread A becomes the planner, proves a second caller is on its
            // way in, then dies mid-plan.
            let panicker = scope.spawn(|| {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.single_flight(&key, DEFAULT_TENANT, None, || {
                        barrier.wait();
                        std::thread::sleep(Duration::from_millis(30));
                        panic!("injected planner panic");
                    })
                }));
                assert!(outcome.is_err(), "the planner panic must propagate");
            });
            barrier.wait();
            // Thread B (this one): before the fix, A's unwind left the key
            // in `in_flight` forever and this call never returned.
            let (plan, hit) = cache
                .single_flight(&key, DEFAULT_TENANT, None, || engine.plan(&config))
                .expect("the second caller plans after the panic settles");
            assert!(!hit, "the panicked attempt cached nothing");
            assert_eq!(plan.config_hash(), key);
            panicker.join().expect("panic was caught inside the thread");
        });
        assert_eq!(cache.stats().entries, 1);
        // The in-flight set is empty again: a third caller hits the cache.
        let (_, hit) = cache.get_or_plan(&engine, &config).unwrap();
        assert!(hit);
    }

    #[test]
    fn waiters_honor_their_own_deadline_while_another_caller_plans() {
        let engine = Engine::new();
        let cache = PlanCache::new(4, None);
        let config = config(6);
        let key = config.hash();
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            let slow = scope.spawn(|| {
                cache
                    .single_flight(&key, DEFAULT_TENANT, None, || {
                        barrier.wait();
                        std::thread::sleep(Duration::from_millis(200));
                        engine.plan(&config)
                    })
                    .unwrap()
            });
            barrier.wait();
            // An already-expired token: the waiter must give up long before
            // the slow planner finishes.
            let token = crate::cancel::CancelToken::with_deadline(Duration::ZERO);
            let started = std::time::Instant::now();
            let result = cache.get_or_plan_with_cancel(&engine, &config, Some(&token));
            assert!(
                matches!(result, Err(EngineError::Cancelled { stage: "plan", .. })),
                "the waiter's own deadline fires while someone else plans"
            );
            assert!(started.elapsed() < Duration::from_millis(150));
            slow.join().expect("the slow planner finishes normally");
        });
    }

    #[test]
    fn concurrent_misses_are_single_flight() {
        let engine = Engine::new();
        let cache = PlanCache::new(4, None);
        let config = config(2);
        // Every concurrent caller gets the *same* Arc: exactly one of them
        // planned, the rest waited for it (or hit the cache afterwards).
        let plans: Vec<Arc<Plan>> = std::thread::scope(|scope| {
            let tasks: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| cache.get_or_plan(&engine, &config).unwrap().0))
                .collect();
            tasks
                .into_iter()
                .map(|task| task.join().expect("worker"))
                .collect()
        });
        for plan in &plans {
            assert!(Arc::ptr_eq(plan, &plans[0]));
        }
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn uncacheable_plans_are_still_shared_within_their_flight() {
        let engine = Engine::new();
        // A one-byte budget: every plan is too large to cache.
        let cache = PlanCache::with_config(PlanCacheConfig {
            policy: "GDSF".to_string(),
            bytes_capacity: 1,
            ..PlanCacheConfig::default()
        })
        .unwrap();
        let config = config(3);
        let barrier = std::sync::Barrier::new(2);
        let plans: Vec<Arc<Plan>> = std::thread::scope(|scope| {
            let a = scope.spawn(|| {
                cache
                    .single_flight(&config.hash(), DEFAULT_TENANT, None, || {
                        barrier.wait();
                        // Give the waiter time to join the flight.
                        std::thread::sleep(Duration::from_millis(50));
                        engine.plan(&config)
                    })
                    .unwrap()
                    .0
            });
            let b = scope.spawn(|| {
                barrier.wait();
                std::thread::sleep(Duration::from_millis(5));
                cache.get_or_plan(&engine, &config).unwrap().0
            });
            vec![a.join().expect("planner"), b.join().expect("waiter")]
        });
        // The waiter shared the planner's sidelined Arc: no second plan.
        assert!(Arc::ptr_eq(&plans[0], &plans[1]));
        assert_eq!(cache.stats().entries, 0, "nothing was cached");
        assert!(cache.stats().uncacheable >= 1);
    }

    #[test]
    fn byte_mode_charges_tenants_and_reports_them() {
        let engine = Engine::new();
        let cache = PlanCache::with_config(PlanCacheConfig {
            bytes_capacity: 1 << 30,
            ..PlanCacheConfig::default()
        })
        .unwrap();
        cache
            .get_or_plan_for(&engine, &config(1), "alice", None)
            .unwrap();
        cache
            .get_or_plan_for(&engine, &config(1), "bob", None)
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.policy, "GDSF");
        assert_eq!(stats.per_tenant.len(), 2);
        let alice = &stats.per_tenant[0];
        assert_eq!(alice.tenant, "alice");
        assert_eq!(alice.entries, 1, "the plan is charged to its inserter");
        assert!(alice.bytes > 0);
        let bob = &stats.per_tenant[1];
        assert_eq!((bob.entries, bob.hits), (0, 1), "bob shares alice's plan");
        cache.validate_accounting().unwrap();
    }
}
