//! Serving-side eviction policies.
//!
//! A [`ServingPolicy`] is the online counterpart of [`minio::Policy`]: where
//! the simulation trait selects victims knowing the full future of a tree
//! traversal, a serving policy sees only the past — insertions, accesses and
//! removals streamed through its [`ServingSession`] — and must pick victims
//! when the core needs room.  Three policies are implemented natively
//! (recency LRU, size-aware GDSF, scan-resistant S3-FIFO: the two stateful
//! cache policies degrade under per-decision bridging, so they get real
//! online state here), and every stateless simulation heuristic is adapted
//! through [`minio::serving::select_victims`], giving the serving layer the
//! full registry catalogue.
//!
//! Contract notes, mirroring the simulator's:
//!
//! * `select` returns slot ids; the core drops duplicates, ignores ids
//!   outside the offered candidate list, and completes any shortfall in
//!   least-recently-used order, so arbitrary policies are safe to run.
//! * Sessions are long-lived (one per cache, not per decision) and always
//!   called under the cache lock, in a deterministic order — a policy that
//!   uses only the streamed events and the prompt is fully deterministic.

use std::collections::{HashMap, HashSet, VecDeque};

use treemem::registry::UnknownName;

/// Everything a policy may know about one resident entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryMeta {
    /// Stable id of the entry (unique for the cache's lifetime).
    pub slot: u64,
    /// FNV-1a fingerprint of the entry's key (stable across re-insertions —
    /// this is what ghost queues recognise returning keys by).
    pub fingerprint: u64,
    /// Byte footprint (at least 1).
    pub bytes: u64,
    /// Logical tick of the insertion.
    pub inserted_tick: u64,
    /// Logical tick of the most recent access.
    pub last_access_tick: u64,
    /// Hits served so far.
    pub hits: u64,
}

/// One eviction decision offered to a session.
#[derive(Debug)]
pub struct EvictionPrompt<'a> {
    /// The evictable entries (entries protected by another tenant's
    /// fair-share floor are already filtered out).
    pub candidates: &'a [EntryMeta],
    /// Bytes that must be freed.
    pub deficit_bytes: u64,
    /// The current logical tick.
    pub now_tick: u64,
    /// The cache's byte capacity (`u64::MAX` when bounded by entries only).
    pub bytes_capacity: u64,
}

/// Per-cache state of a policy: observes the stream and selects victims.
pub trait ServingSession {
    /// A new entry became resident.
    fn on_insert(&mut self, _meta: &EntryMeta) {}
    /// An entry served a hit.
    fn on_access(&mut self, _slot: u64, _now_tick: u64) {}
    /// An entry left the cache (eviction, expiry, replacement or clear).
    fn on_remove(&mut self, _slot: u64) {}
    /// Select victims (slot ids) freeing at least `prompt.deficit_bytes`.
    fn select(&mut self, prompt: &EvictionPrompt<'_>) -> Vec<u64>;
}

/// A named factory of per-cache [`ServingSession`]s.
pub trait ServingPolicy: Send + Sync {
    /// Short stable identifier (CLI flag value, `/stats`, bench matrices).
    fn name(&self) -> String;
    /// One-line human description.
    fn description(&self) -> &'static str;
    /// Start a session for one cache.
    fn session(&self) -> Box<dyn ServingSession + Send>;
}

/// Recency LRU: evict the least-recently-accessed candidates until the
/// deficit is covered.  This is exactly the legacy count-based cache order,
/// generalised to byte deficits.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountLru;

struct CountLruSession;

impl ServingSession for CountLruSession {
    fn select(&mut self, prompt: &EvictionPrompt<'_>) -> Vec<u64> {
        let mut ordered: Vec<&EntryMeta> = prompt.candidates.iter().collect();
        ordered.sort_by_key(|m| (m.last_access_tick, m.slot));
        let mut freed = 0u64;
        let mut victims = Vec::new();
        for meta in ordered {
            if freed >= prompt.deficit_bytes {
                break;
            }
            freed = freed.saturating_add(meta.bytes);
            victims.push(meta.slot);
        }
        victims
    }
}

impl ServingPolicy for CountLru {
    fn name(&self) -> String {
        "LRU".to_string()
    }
    fn description(&self) -> &'static str {
        "least recently used (the legacy count-LRU order, byte deficits)"
    }
    fn session(&self) -> Box<dyn ServingSession + Send> {
        Box::new(CountLruSession)
    }
}

/// GreedyDual-Size-Frequency: every entry carries a priority
/// `H = L + frequency / size`; evictions take the lowest `H` and raise the
/// inflation `L` to it, so long-unused entries age out while small,
/// frequently-hit entries survive large cold ones — the size-aware policy the
/// cache-rs study found dominant on skewed, size-varied workloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gdsf;

/// Numerator scale for `frequency / size`: keeps priorities of byte-sized
/// entries in a comfortable float range.
const GDSF_SCALE: f64 = 1.0e6;

#[derive(Default)]
struct GdsfSession {
    /// The inflation value `L`: the priority of the last eviction.
    inflation: f64,
    /// Per-slot (bytes, frequency, priority).
    entries: HashMap<u64, (u64, u64, f64)>,
}

impl GdsfSession {
    fn priority(inflation: f64, bytes: u64, frequency: u64) -> f64 {
        inflation + GDSF_SCALE * frequency as f64 / bytes.max(1) as f64
    }
}

impl ServingSession for GdsfSession {
    fn on_insert(&mut self, meta: &EntryMeta) {
        let h = Self::priority(self.inflation, meta.bytes, 1);
        self.entries.insert(meta.slot, (meta.bytes, 1, h));
    }
    fn on_access(&mut self, slot: u64, _now_tick: u64) {
        if let Some((bytes, freq, h)) = self.entries.get_mut(&slot) {
            *freq += 1;
            *h = Self::priority(self.inflation, *bytes, *freq);
        }
    }
    fn on_remove(&mut self, slot: u64) {
        self.entries.remove(&slot);
    }
    fn select(&mut self, prompt: &EvictionPrompt<'_>) -> Vec<u64> {
        let mut ordered: Vec<(f64, &EntryMeta)> = prompt
            .candidates
            .iter()
            .map(|m| {
                let h = self
                    .entries
                    .get(&m.slot)
                    .map(|&(_, _, h)| h)
                    // An entry the session never saw (shouldn't happen):
                    // treat as freshly inserted.
                    .unwrap_or_else(|| Self::priority(self.inflation, m.bytes, 1));
                (h, m)
            })
            .collect();
        ordered.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.slot.cmp(&b.1.slot))
        });
        let mut freed = 0u64;
        let mut victims = Vec::new();
        for (h, meta) in ordered {
            if freed >= prompt.deficit_bytes {
                break;
            }
            freed = freed.saturating_add(meta.bytes);
            victims.push(meta.slot);
            // Classic GreedyDual ageing: L becomes the evicted priority.
            if h > self.inflation {
                self.inflation = h;
            }
        }
        victims
    }
}

impl ServingPolicy for Gdsf {
    fn name(&self) -> String {
        "GDSF".to_string()
    }
    fn description(&self) -> &'static str {
        "GreedyDual-Size-Frequency (size-aware, frequency-inflated priorities)"
    }
    fn session(&self) -> Box<dyn ServingSession + Send> {
        Box::new(GdsfSession::default())
    }
}

/// S3-FIFO: a small probationary FIFO absorbs one-hit wonders, survivors
/// promote into a main FIFO with lazy second chances, and a ghost queue of
/// evicted fingerprints routes quickly-returning keys straight into main —
/// the scan-resistant design of the S3-FIFO paper, online.
#[derive(Debug, Clone, Copy, Default)]
pub struct S3Fifo;

/// Fraction of the byte capacity reserved for the small queue (the paper's
/// 10%).
const S3_SMALL_FRACTION: u64 = 10;
/// Ghost queue length (evicted-key fingerprints remembered).
const S3_GHOST_LEN: usize = 4096;

#[derive(Default)]
struct S3FifoSession {
    small: VecDeque<u64>,
    main: VecDeque<u64>,
    /// Per-slot (bytes, frequency 0..=3, fingerprint, in_main).
    entries: HashMap<u64, (u64, u8, u64, bool)>,
    small_bytes: u64,
    ghost: VecDeque<u64>,
    ghost_set: HashSet<u64>,
}

impl S3FifoSession {
    fn remember_ghost(&mut self, fingerprint: u64) {
        if self.ghost_set.insert(fingerprint) {
            self.ghost.push_back(fingerprint);
            while self.ghost.len() > S3_GHOST_LEN {
                if let Some(old) = self.ghost.pop_front() {
                    self.ghost_set.remove(&old);
                }
            }
        }
    }
}

impl ServingSession for S3FifoSession {
    fn on_insert(&mut self, meta: &EntryMeta) {
        let returning = self.ghost_set.contains(&meta.fingerprint);
        self.entries
            .insert(meta.slot, (meta.bytes, 0, meta.fingerprint, returning));
        if returning {
            self.main.push_back(meta.slot);
        } else {
            self.small.push_back(meta.slot);
            self.small_bytes = self.small_bytes.saturating_add(meta.bytes);
        }
    }
    fn on_access(&mut self, slot: u64, _now_tick: u64) {
        if let Some((_, freq, _, _)) = self.entries.get_mut(&slot) {
            *freq = (*freq + 1).min(3);
        }
    }
    fn on_remove(&mut self, slot: u64) {
        // Queues are cleaned lazily (VecDeque removal is O(n)); only the
        // byte tally needs fixing here.
        if let Some((bytes, _, _, in_main)) = self.entries.remove(&slot) {
            if !in_main {
                self.small_bytes = self.small_bytes.saturating_sub(bytes);
            }
        }
    }
    fn select(&mut self, prompt: &EvictionPrompt<'_>) -> Vec<u64> {
        let evictable: HashSet<u64> = prompt.candidates.iter().map(|m| m.slot).collect();
        let small_target = if prompt.bytes_capacity == u64::MAX {
            0
        } else {
            prompt.bytes_capacity / S3_SMALL_FRACTION
        };
        let mut victims = Vec::new();
        let mut freed = 0u64;
        // Lazy queue cleanup makes single passes non-constant; bound the
        // total work and let the core's LRU completion cover any shortfall.
        let mut fuel = 4 * (self.small.len() + self.main.len()) + 8;
        while freed < prompt.deficit_bytes && fuel > 0 {
            fuel -= 1;
            let from_small = (self.small_bytes >= small_target && !self.small.is_empty())
                || self.main.is_empty();
            if from_small {
                let Some(slot) = self.small.pop_front() else {
                    if self.main.is_empty() {
                        break;
                    }
                    continue;
                };
                let Some(&(bytes, freq, fingerprint, in_main)) = self.entries.get(&slot) else {
                    continue; // removed earlier, lazily dropped now
                };
                if in_main {
                    continue; // promoted earlier, stale small entry
                }
                if freq > 1 {
                    // Survivor: promote into main.
                    if let Some(entry) = self.entries.get_mut(&slot) {
                        entry.1 = 0;
                        entry.3 = true;
                    }
                    self.small_bytes = self.small_bytes.saturating_sub(bytes);
                    self.main.push_back(slot);
                    continue;
                }
                if !evictable.contains(&slot) {
                    // Protected by a tenant floor: rotate, do not evict.
                    self.small.push_back(slot);
                    continue;
                }
                self.entries.remove(&slot);
                self.small_bytes = self.small_bytes.saturating_sub(bytes);
                self.remember_ghost(fingerprint);
                freed = freed.saturating_add(bytes);
                victims.push(slot);
            } else {
                let Some(slot) = self.main.pop_front() else {
                    continue;
                };
                let Some(&(bytes, freq, _, in_main)) = self.entries.get(&slot) else {
                    continue;
                };
                if !in_main {
                    continue;
                }
                if freq > 0 {
                    // Second chance.
                    if let Some(entry) = self.entries.get_mut(&slot) {
                        entry.1 = freq - 1;
                    }
                    self.main.push_back(slot);
                    continue;
                }
                if !evictable.contains(&slot) {
                    self.main.push_back(slot);
                    continue;
                }
                self.entries.remove(&slot);
                freed = freed.saturating_add(bytes);
                victims.push(slot);
            }
        }
        victims
    }
}

impl ServingPolicy for S3Fifo {
    fn name(&self) -> String {
        "S3FIFO".to_string()
    }
    fn description(&self) -> &'static str {
        "S3-FIFO (small/main FIFOs + ghost queue, scan-resistant)"
    }
    fn session(&self) -> Box<dyn ServingSession + Send> {
        Box::new(S3FifoSession::default())
    }
}

/// A simulation policy adapted to serving through
/// [`minio::serving::select_victims`]: every decision rebuilds the synthetic
/// context from the prompt, so the bridge is stateless and any registered
/// [`minio::Policy`] can drive a live cache.
pub struct SimBridge {
    inner: std::sync::Arc<dyn minio::Policy>,
}

impl SimBridge {
    /// Bridge `policy` into the serving world under its own name.
    pub fn new(policy: Box<dyn minio::Policy>) -> Self {
        SimBridge {
            inner: std::sync::Arc::from(policy),
        }
    }
}

struct SimBridgeSession {
    inner: std::sync::Arc<dyn minio::Policy>,
}

impl ServingSession for SimBridgeSession {
    fn select(&mut self, prompt: &EvictionPrompt<'_>) -> Vec<u64> {
        let residents: Vec<minio::ResidentFile> = prompt
            .candidates
            .iter()
            .map(|m| minio::ResidentFile {
                slot: m.slot,
                bytes: m.bytes,
                inserted_tick: m.inserted_tick,
                last_access_tick: m.last_access_tick,
                hits: m.hits,
            })
            .collect();
        minio::select_victims(
            self.inner.as_ref(),
            &residents,
            prompt.now_tick,
            prompt.deficit_bytes,
        )
    }
}

impl ServingPolicy for SimBridge {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn description(&self) -> &'static str {
        self.inner.description()
    }
    fn session(&self) -> Box<dyn ServingSession + Send> {
        Box::new(SimBridgeSession {
            inner: self.inner.clone(),
        })
    }
}

/// A name-indexed catalogue of serving policies, mirroring
/// [`minio::PolicyRegistry`].
pub struct ServingPolicyRegistry {
    policies: Vec<Box<dyn ServingPolicy>>,
}

impl ServingPolicyRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        ServingPolicyRegistry {
            policies: Vec::new(),
        }
    }

    /// The full catalogue: the three native online policies (LRU, GDSF,
    /// S3FIFO), then every remaining simulation policy through the bridge
    /// (LSNF, FirstFit, BestFit, FirstFill, BestFill, BestKComb, LruDist).
    pub fn with_builtin() -> Self {
        let mut registry = ServingPolicyRegistry::empty();
        registry.register(Box::new(CountLru));
        registry.register(Box::new(Gdsf));
        registry.register(Box::new(S3Fifo));
        for bridged in [
            Box::new(minio::policy::paper::Lsnf) as Box<dyn minio::Policy>,
            Box::new(minio::policy::paper::FirstFit),
            Box::new(minio::policy::paper::BestFit),
            Box::new(minio::policy::paper::FirstFill),
            Box::new(minio::policy::paper::BestFill),
            Box::new(minio::policy::paper::BestKCombination::default()),
            Box::new(minio::policy::cache::LruDistance),
        ] {
            registry.register(Box::new(SimBridge::new(bridged)));
        }
        registry
    }

    /// Add a policy; same-named policies replace the old entry.
    pub fn register(&mut self, policy: Box<dyn ServingPolicy>) {
        let name = policy.name();
        if let Some(existing) = self.policies.iter_mut().find(|p| p.name() == name) {
            *existing = policy;
        } else {
            self.policies.push(policy);
        }
    }

    /// Look a policy up by name.
    pub fn get(&self, name: &str) -> Option<&dyn ServingPolicy> {
        self.policies
            .iter()
            .find(|p| p.name() == name)
            .map(|p| p.as_ref())
    }

    /// Look a policy up by name with a typed error listing the catalogue.
    pub fn get_or_err(&self, name: &str) -> Result<&dyn ServingPolicy, UnknownName> {
        treemem::registry::get_or_unknown("cache policy", name, self.get(name), || self.names())
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.policies.iter().map(|p| p.name()).collect()
    }

    /// Iterate over the policies in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn ServingPolicy> {
        self.policies.iter().map(|p| p.as_ref())
    }

    /// Number of registered policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }
}

impl Default for ServingPolicyRegistry {
    fn default() -> Self {
        Self::with_builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(slot: u64, bytes: u64, last_access: u64, hits: u64) -> EntryMeta {
        EntryMeta {
            slot,
            fingerprint: slot.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            bytes,
            inserted_tick: 0,
            last_access_tick: last_access,
            hits,
        }
    }

    #[test]
    fn builtin_catalogue_has_ten_policies() {
        let registry = ServingPolicyRegistry::with_builtin();
        assert_eq!(
            registry.names(),
            vec![
                "LRU",
                "GDSF",
                "S3FIFO",
                "LSNF",
                "FirstFit",
                "BestFit",
                "FirstFill",
                "BestFill",
                "BestKComb",
                "LruDist"
            ]
        );
        assert!(registry.get_or_err("LRU").is_ok());
        assert!(registry.get_or_err("nope").is_err());
    }

    #[test]
    fn lru_evicts_least_recently_accessed() {
        let registry = ServingPolicyRegistry::with_builtin();
        let mut session = registry.get("LRU").unwrap().session();
        let candidates = vec![
            meta(1, 100, 30, 0),
            meta(2, 100, 10, 0),
            meta(3, 100, 20, 0),
        ];
        let prompt = EvictionPrompt {
            candidates: &candidates,
            deficit_bytes: 150,
            now_tick: 40,
            bytes_capacity: 1000,
        };
        assert_eq!(session.select(&prompt), vec![2, 3]);
    }

    #[test]
    fn gdsf_prefers_large_cold_victims_over_small_hot_ones() {
        let registry = ServingPolicyRegistry::with_builtin();
        let mut session = registry.get("GDSF").unwrap().session();
        // A big entry and a small entry, same frequency: the big one has the
        // lower H and goes first even though it was accessed more recently.
        let big = meta(1, 100_000, 50, 0);
        let small = meta(2, 100, 10, 0);
        session.on_insert(&big);
        session.on_insert(&small);
        let candidates = vec![big, small];
        let prompt = EvictionPrompt {
            candidates: &candidates,
            deficit_bytes: 1,
            now_tick: 60,
            bytes_capacity: 1_000_000,
        };
        assert_eq!(session.select(&prompt), vec![1]);
    }

    #[test]
    fn s3fifo_ghost_promotes_returning_keys_to_main() {
        let registry = ServingPolicyRegistry::with_builtin();
        let mut session = registry.get("S3FIFO").unwrap().session();
        let first = meta(1, 100, 1, 0);
        session.on_insert(&first);
        let candidates = vec![first];
        let prompt = EvictionPrompt {
            candidates: &candidates,
            deficit_bytes: 50,
            now_tick: 2,
            bytes_capacity: 1000,
        };
        assert_eq!(session.select(&prompt), vec![1]);
        // The same key returns (same fingerprint, new slot): it must go to
        // main and survive a scan of one-hit wonders through small.
        let back = EntryMeta { slot: 2, ..first };
        session.on_insert(&back);
        let scan = meta(3, 100, 3, 0);
        session.on_insert(&scan);
        let candidates = vec![back, scan];
        let prompt = EvictionPrompt {
            candidates: &candidates,
            deficit_bytes: 50,
            now_tick: 4,
            bytes_capacity: 1000,
        };
        assert_eq!(session.select(&prompt), vec![3]);
    }
}
