//! [`CacheCore`]: the shared serving-cache engine.
//!
//! A keyed map of [`Arc`]ed values with byte-accurate accounting, evicting
//! through any [`ServingPolicy`].  Both the plan cache and the server's
//! factor cache are thin wrappers around this core, so admission control,
//! tenancy and statistics behave identically everywhere.
//!
//! Capacity has two axes, enforceable together or alone:
//!
//! * a **byte budget** (`bytes_capacity`) — the production mode, sized from
//!   per-entry footprints estimated at insert time;
//! * an **entry bound** (`max_entries`) — the legacy mode the historical
//!   count-LRU caches ran in, kept for compatibility and tests.
//!
//! Tenancy is cooperative admission control, not isolation of values: every
//! operation names a tenant, an entry is charged to the tenant whose miss
//! inserted it, and two rules keep tenants from starving each other:
//!
//! 1. **Quota** — a tenant over its per-tenant byte budget makes room among
//!    its *own* entries first; an entry larger than the quota (or the whole
//!    cache) is *admitted but uncacheable*: the caller still gets its value,
//!    nothing is evicted for it.
//! 2. **Fair-share floor** — when evicting for capacity, entries of *other*
//!    tenants are protected once that tenant's usage would fall below
//!    `floor_fraction × bytes_capacity / active_tenants`.  A cold scan by
//!    one tenant therefore cannot evict another tenant's (floor-sized) hot
//!    set; if every candidate is protected the insert becomes uncacheable
//!    instead ([`Admission::Contended`]).
//!
//! All mutable state lives under one [`TrackedMutex`] (lock-order tracked,
//! poison-tolerant); policy sessions are driven strictly under that lock, so
//! their view of the cache is always consistent.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use treemem::registry::UnknownName;
use treemem::sync::TrackedMutex;

use super::policy::{EntryMeta, EvictionPrompt, ServingPolicy, ServingPolicyRegistry};
use super::{CacheStats, TenantUsage};

/// FNV-1a 64-bit fingerprint of a key (stable across re-insertions; what
/// ghost queues recognise returning keys by).
pub fn fingerprint64(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Construction parameters of a [`CacheCore`]; see the module docs.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Eviction policy name, resolved against a [`ServingPolicyRegistry`].
    pub policy: String,
    /// Byte budget (`u64::MAX` = unbounded by bytes).
    pub bytes_capacity: u64,
    /// Optional entry bound (the legacy count-LRU axis).
    pub max_entries: Option<usize>,
    /// Optional time-to-live; expired entries drop on access.
    pub ttl: Option<Duration>,
    /// Per-tenant byte quota (`None` = unlimited per tenant).
    pub tenant_quota_bytes: Option<u64>,
    /// Fair-share floor fraction in `[0, 1]` (0 disables floor protection).
    pub tenant_floor: f64,
    /// Lock class for the tracked mutex (lock-order diagnostics).
    pub lock_class: &'static str,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            policy: "LRU".to_string(),
            bytes_capacity: u64::MAX,
            max_entries: None,
            ttl: None,
            tenant_quota_bytes: None,
            tenant_floor: 0.0,
            lock_class: "cache-core.inner",
        }
    }
}

/// How an insert was admitted; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The entry is resident.
    Cached,
    /// Larger than the cache's byte budget: served, never cached.
    TooLarge,
    /// Larger than the tenant's quota: served, never cached.
    OverQuota,
    /// Every eviction candidate is protected by another tenant's floor.
    Contended,
}

impl Admission {
    /// Whether the entry ended up resident.
    pub fn is_cached(&self) -> bool {
        matches!(self, Admission::Cached)
    }
}

struct Slot<V> {
    key: String,
    fingerprint: u64,
    tenant: usize,
    value: Arc<V>,
    bytes: u64,
    slot_id: u64,
    inserted: Instant,
    inserted_tick: u64,
    last_access_tick: u64,
    hits: u64,
}

impl<V> Slot<V> {
    fn meta(&self) -> EntryMeta {
        EntryMeta {
            slot: self.slot_id,
            fingerprint: self.fingerprint,
            bytes: self.bytes,
            inserted_tick: self.inserted_tick,
            last_access_tick: self.last_access_tick,
            hits: self.hits,
        }
    }
}

#[derive(Default)]
struct Tenant {
    name: String,
    bytes: u64,
    entries: usize,
    hits: u64,
    misses: u64,
    uncacheable: u64,
}

struct Inner<V> {
    session: Box<dyn super::policy::ServingSession + Send>,
    slots: Vec<Slot<V>>,
    /// key → index into `slots` (`slots` itself is unordered; recency lives
    /// in the per-slot ticks).
    index: HashMap<String, usize>,
    tenants: Vec<Tenant>,
    tenant_index: HashMap<String, usize>,
    bytes_used: u64,
    tick: u64,
    next_slot: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    expirations: u64,
    uncacheable: u64,
}

impl<V> Inner<V> {
    fn tenant_id(&mut self, name: &str) -> usize {
        if let Some(&id) = self.tenant_index.get(name) {
            return id;
        }
        let id = self.tenants.len();
        self.tenants.push(Tenant {
            name: name.to_string(),
            ..Tenant::default()
        });
        self.tenant_index.insert(name.to_string(), id);
        id
    }

    /// Remove the slot at `pos` (swap-remove, fixing the displaced index
    /// entry) and tell the session.  Returns the removed slot.
    fn remove_at(&mut self, pos: usize) -> Slot<V> {
        let slot = self.slots.swap_remove(pos);
        self.index.remove(&slot.key);
        if let Some(moved) = self.slots.get(pos) {
            self.index.insert(moved.key.clone(), pos);
        }
        self.bytes_used = self.bytes_used.saturating_sub(slot.bytes);
        if let Some(tenant) = self.tenants.get_mut(slot.tenant) {
            tenant.bytes = tenant.bytes.saturating_sub(slot.bytes);
            tenant.entries = tenant.entries.saturating_sub(1);
        }
        self.session.on_remove(slot.slot_id);
        slot
    }

    fn position_of_slot_id(&self, slot_id: u64) -> Option<usize> {
        self.slots.iter().position(|s| s.slot_id == slot_id)
    }
}

/// The shared serving-cache engine; see the module docs.
pub struct CacheCore<V> {
    policy_name: String,
    bytes_capacity: u64,
    max_entries: Option<usize>,
    ttl: Option<Duration>,
    quota: Option<u64>,
    floor: f64,
    inner: TrackedMutex<Inner<V>>,
}

impl<V> CacheCore<V> {
    /// Build a core with `config`, resolving the policy in `registry`.
    pub fn new(config: CacheConfig, registry: &ServingPolicyRegistry) -> Result<Self, UnknownName> {
        let policy = registry.get_or_err(&config.policy)?;
        Ok(Self::with_policy(config, policy))
    }

    /// Build a core driven by an already-resolved policy.
    pub fn with_policy(config: CacheConfig, policy: &dyn ServingPolicy) -> Self {
        CacheCore {
            policy_name: policy.name(),
            bytes_capacity: config.bytes_capacity.max(1),
            max_entries: config.max_entries,
            ttl: config.ttl,
            quota: config.tenant_quota_bytes,
            floor: config.tenant_floor.clamp(0.0, 1.0),
            inner: TrackedMutex::new(
                Inner {
                    session: policy.session(),
                    slots: Vec::new(),
                    index: HashMap::new(),
                    tenants: Vec::new(),
                    tenant_index: HashMap::new(),
                    bytes_used: 0,
                    tick: 0,
                    next_slot: 0,
                    hits: 0,
                    misses: 0,
                    evictions: 0,
                    expirations: 0,
                    uncacheable: 0,
                },
                config.lock_class,
            ),
        }
    }

    /// The eviction policy's name.
    pub fn policy_name(&self) -> &str {
        &self.policy_name
    }

    /// The byte budget (`u64::MAX` when bounded by entries only).
    pub fn bytes_capacity(&self) -> u64 {
        self.bytes_capacity
    }

    /// The entry bound, if one is configured.
    pub fn max_entries(&self) -> Option<usize> {
        self.max_entries
    }

    /// Look up `key` for `tenant`, refreshing recency.  An expired entry is
    /// dropped and reported as a miss.
    pub fn get(&self, key: &str, tenant: &str) -> Option<Arc<V>> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        inner.tick += 1;
        let now = inner.tick;
        let tenant_id = inner.tenant_id(tenant);
        let Some(&pos) = inner.index.get(key) else {
            inner.misses += 1;
            if let Some(t) = inner.tenants.get_mut(tenant_id) {
                t.misses += 1;
            }
            return None;
        };
        if let Some(ttl) = self.ttl {
            let expired = inner
                .slots
                .get(pos)
                .map(|slot| slot.inserted.elapsed() > ttl)
                .unwrap_or(false);
            if expired {
                inner.remove_at(pos);
                inner.expirations += 1;
                inner.misses += 1;
                if let Some(t) = inner.tenants.get_mut(tenant_id) {
                    t.misses += 1;
                }
                return None;
            }
        }
        let Some(slot) = inner.slots.get_mut(pos) else {
            inner.misses += 1;
            return None;
        };
        slot.last_access_tick = now;
        slot.hits += 1;
        let slot_id = slot.slot_id;
        let value = slot.value.clone();
        inner.session.on_access(slot_id, now);
        inner.hits += 1;
        if let Some(t) = inner.tenants.get_mut(tenant_id) {
            t.hits += 1;
        }
        Some(value)
    }

    /// Insert `value` under `key`, charged to `tenant` with footprint
    /// `bytes` (at least 1 is accounted).  Returns how the insert was
    /// admitted; on anything but [`Admission::Cached`] the cache is left
    /// without the entry and the caller simply keeps using its value.
    pub fn insert(&self, key: &str, tenant: &str, value: Arc<V>, bytes: u64) -> Admission {
        let bytes = bytes.max(1);
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        inner.tick += 1;
        let now = inner.tick;
        let tenant_id = inner.tenant_id(tenant);

        // Replacement: drop the old entry first (not an eviction — the two
        // plans/factors are interchangeable, the newer one wins).
        if let Some(&pos) = inner.index.get(key) {
            inner.remove_at(pos);
        }

        let mut verdict = Admission::Cached;
        if bytes > self.bytes_capacity {
            verdict = Admission::TooLarge;
        } else if self.quota.map(|q| bytes > q).unwrap_or(false) {
            verdict = Admission::OverQuota;
        } else {
            // Quota pass: a tenant over budget makes room among its own
            // entries (self-eviction keeps its working set fresh without
            // touching anyone else's).
            if let Some(quota) = self.quota {
                verdict = self.evict_for_quota(inner, tenant_id, bytes, quota, now);
            }
            if verdict.is_cached() {
                verdict = self.evict_for_capacity(inner, tenant_id, bytes, now);
            }
        }

        if !verdict.is_cached() {
            inner.uncacheable += 1;
            if let Some(t) = inner.tenants.get_mut(tenant_id) {
                t.uncacheable += 1;
            }
            return verdict;
        }

        let slot_id = inner.next_slot;
        inner.next_slot += 1;
        let slot = Slot {
            key: key.to_string(),
            fingerprint: fingerprint64(key),
            tenant: tenant_id,
            value,
            bytes,
            slot_id,
            inserted: Instant::now(),
            inserted_tick: now,
            last_access_tick: now,
            hits: 0,
        };
        let meta = slot.meta();
        inner.index.insert(key.to_string(), inner.slots.len());
        inner.slots.push(slot);
        inner.bytes_used = inner.bytes_used.saturating_add(bytes);
        if let Some(t) = inner.tenants.get_mut(tenant_id) {
            t.bytes = t.bytes.saturating_add(bytes);
            t.entries += 1;
        }
        inner.session.on_insert(&meta);
        Admission::Cached
    }

    /// Free the inserting tenant's own space down to its quota.
    fn evict_for_quota(
        &self,
        inner: &mut Inner<V>,
        tenant_id: usize,
        incoming_bytes: u64,
        quota: u64,
        now: u64,
    ) -> Admission {
        loop {
            let used = inner.tenants.get(tenant_id).map(|t| t.bytes).unwrap_or(0);
            let need = used.saturating_add(incoming_bytes).saturating_sub(quota);
            if need == 0 {
                return Admission::Cached;
            }
            let candidates: Vec<EntryMeta> = inner
                .slots
                .iter()
                .filter(|s| s.tenant == tenant_id)
                .map(Slot::meta)
                .collect();
            if candidates.is_empty() {
                // The tenant holds nothing evictable yet is over quota with
                // this entry: uncacheable (bytes ≤ quota was checked, so
                // this is unreachable in practice, but never loop).
                return Admission::OverQuota;
            }
            if !self.run_eviction_round(inner, &candidates, need, now) {
                return Admission::OverQuota;
            }
        }
    }

    /// Free global space down to the byte budget and the entry bound,
    /// respecting other tenants' fair-share floors.
    fn evict_for_capacity(
        &self,
        inner: &mut Inner<V>,
        tenant_id: usize,
        incoming_bytes: u64,
        now: u64,
    ) -> Admission {
        loop {
            let over_bytes = inner
                .bytes_used
                .saturating_add(incoming_bytes)
                .saturating_sub(self.bytes_capacity);
            let over_entries = self
                .max_entries
                .map(|m| inner.slots.len() + 1 > m)
                .unwrap_or(false);
            if over_bytes == 0 && !over_entries {
                return Admission::Cached;
            }
            let floor_bytes = self.floor_bytes(inner, tenant_id);
            let candidates: Vec<EntryMeta> = inner
                .slots
                .iter()
                .filter(|s| {
                    if s.tenant == tenant_id || floor_bytes == 0 {
                        return true;
                    }
                    // Another tenant's entry is evictable only while its
                    // owner stays at or above the floor afterwards.
                    let owner_bytes = inner.tenants.get(s.tenant).map(|t| t.bytes).unwrap_or(0);
                    owner_bytes.saturating_sub(s.bytes) >= floor_bytes
                })
                .map(Slot::meta)
                .collect();
            let available: u64 = candidates.iter().map(|m| m.bytes).sum();
            if candidates.is_empty() || available < over_bytes {
                // Evicting every unprotected entry still would not fit the
                // newcomer: bail out before destroying the cache for an
                // entry that cannot be admitted.
                return Admission::Contended;
            }
            let deficit = over_bytes.max(1);
            if !self.run_eviction_round(inner, &candidates, deficit, now) {
                return Admission::Contended;
            }
        }
    }

    /// One policy-driven eviction round over `candidates`: ask the session,
    /// evict its valid picks until `deficit` is freed, and complete any
    /// shortfall least-recently-used first.  Returns whether at least one
    /// entry was evicted (the caller's loop re-checks the budget).
    fn run_eviction_round(
        &self,
        inner: &mut Inner<V>,
        candidates: &[EntryMeta],
        deficit: u64,
        now: u64,
    ) -> bool {
        let picks = {
            let prompt = EvictionPrompt {
                candidates,
                deficit_bytes: deficit,
                now_tick: now,
                bytes_capacity: self.bytes_capacity,
            };
            inner.session.select(&prompt)
        };
        let mut in_candidates: HashMap<u64, u64> =
            candidates.iter().map(|m| (m.slot, m.bytes)).collect();
        let mut freed = 0u64;
        let mut evicted_any = false;
        for slot_id in picks {
            if freed >= deficit {
                break;
            }
            let Some(bytes) = in_candidates.remove(&slot_id) else {
                continue; // out-of-candidate or duplicate pick: ignored
            };
            if let Some(pos) = inner.position_of_slot_id(slot_id) {
                inner.remove_at(pos);
                inner.evictions += 1;
                freed = freed.saturating_add(bytes);
                evicted_any = true;
            }
        }
        if freed < deficit {
            // Engine-side completion, mirroring the simulator's `lsnf_fill`:
            // least recently used among the remaining candidates.
            let mut rest: Vec<EntryMeta> = candidates
                .iter()
                .filter(|m| in_candidates.contains_key(&m.slot))
                .copied()
                .collect();
            rest.sort_by_key(|m| (m.last_access_tick, m.slot));
            for meta in rest {
                if freed >= deficit {
                    break;
                }
                if let Some(pos) = inner.position_of_slot_id(meta.slot) {
                    inner.remove_at(pos);
                    inner.evictions += 1;
                    freed = freed.saturating_add(meta.bytes);
                    evicted_any = true;
                }
            }
        }
        evicted_any
    }

    /// The byte floor below which another tenant's entries are protected:
    /// `floor_fraction × bytes_capacity / active_tenants` (0 when the floor
    /// is disabled or the cache has no byte budget).
    fn floor_bytes(&self, inner: &Inner<V>, inserting_tenant: usize) -> u64 {
        if self.floor <= 0.0 || self.bytes_capacity == u64::MAX {
            return 0;
        }
        let mut active = inner
            .tenants
            .iter()
            .enumerate()
            .filter(|(id, t)| t.bytes > 0 || *id == inserting_tenant)
            .count();
        active = active.max(1);
        (self.floor * self.bytes_capacity as f64 / active as f64) as u64
    }

    /// Current counters (a consistent snapshot: one lock, one read).
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        let mut per_tenant: Vec<TenantUsage> = inner
            .tenants
            .iter()
            .map(|t| TenantUsage {
                tenant: t.name.clone(),
                bytes: t.bytes,
                entries: t.entries,
                hits: t.hits,
                misses: t.misses,
                uncacheable: t.uncacheable,
            })
            .collect();
        per_tenant.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            expirations: inner.expirations,
            entries: inner.slots.len(),
            capacity: self.max_entries.unwrap_or(0),
            policy: self.policy_name.clone(),
            bytes_used: inner.bytes_used,
            bytes_capacity: self.bytes_capacity,
            uncacheable: inner.uncacheable,
            per_tenant,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently resident.
    pub fn bytes_used(&self) -> u64 {
        self.inner.lock().bytes_used
    }

    /// Whether `key` is resident, without touching recency or counters.
    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().index.contains_key(key)
    }

    /// Drop every entry (counters and tenant tallies for bytes reset;
    /// hit/miss history is kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let ids: Vec<u64> = inner.slots.iter().map(|s| s.slot_id).collect();
        for id in ids {
            inner.session.on_remove(id);
        }
        inner.slots.clear();
        inner.index.clear();
        inner.bytes_used = 0;
        for tenant in &mut inner.tenants {
            tenant.bytes = 0;
            tenant.entries = 0;
        }
    }

    /// Audit the internal accounting: recompute every tally from the slots
    /// and compare.  Returns a description of the first drift found, if
    /// any — the property battery and the trace harness call this after
    /// every churn phase.
    pub fn validate_accounting(&self) -> Result<(), String> {
        let inner = self.inner.lock();
        let mut bytes = 0u64;
        let mut tenant_bytes = vec![0u64; inner.tenants.len()];
        let mut tenant_entries = vec![0usize; inner.tenants.len()];
        for (pos, slot) in inner.slots.iter().enumerate() {
            bytes = bytes.saturating_add(slot.bytes);
            match inner.index.get(&slot.key) {
                Some(&idx) if idx == pos => {}
                other => {
                    return Err(format!(
                        "index drift: slot {} at {} indexed as {:?}",
                        slot.key, pos, other
                    ))
                }
            }
            if let Some(b) = tenant_bytes.get_mut(slot.tenant) {
                *b += slot.bytes;
            }
            if let Some(e) = tenant_entries.get_mut(slot.tenant) {
                *e += 1;
            }
        }
        if inner.index.len() != inner.slots.len() {
            return Err(format!(
                "index size {} != slots {}",
                inner.index.len(),
                inner.slots.len()
            ));
        }
        if bytes != inner.bytes_used {
            return Err(format!(
                "bytes_used drift: recomputed {bytes}, recorded {}",
                inner.bytes_used
            ));
        }
        if inner.bytes_used > self.bytes_capacity {
            return Err(format!(
                "over byte capacity: {} > {}",
                inner.bytes_used, self.bytes_capacity
            ));
        }
        if let Some(max) = self.max_entries {
            if inner.slots.len() > max {
                return Err(format!("over entry bound: {} > {max}", inner.slots.len()));
            }
        }
        for (id, tenant) in inner.tenants.iter().enumerate() {
            if tenant.bytes != tenant_bytes.get(id).copied().unwrap_or(0)
                || tenant.entries != tenant_entries.get(id).copied().unwrap_or(0)
            {
                return Err(format!(
                    "tenant {} drift: recorded {}B/{}e, recomputed {}B/{}e",
                    tenant.name,
                    tenant.bytes,
                    tenant.entries,
                    tenant_bytes.get(id).copied().unwrap_or(0),
                    tenant_entries.get(id).copied().unwrap_or(0)
                ));
            }
            if let Some(quota) = self.quota {
                if tenant.bytes > quota {
                    return Err(format!(
                        "tenant {} over quota: {} > {quota}",
                        tenant.name, tenant.bytes
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(config: CacheConfig) -> CacheCore<String> {
        CacheCore::new(config, &ServingPolicyRegistry::with_builtin()).expect("known policy")
    }

    fn value(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn byte_budget_evicts_to_fit() {
        let cache = core(CacheConfig {
            bytes_capacity: 100,
            ..CacheConfig::default()
        });
        assert!(cache.insert("a", "public", value("a"), 40).is_cached());
        assert!(cache.insert("b", "public", value("b"), 40).is_cached());
        // 40+40+40 > 100: the LRU entry (a) must go.
        assert!(cache.insert("c", "public", value("c"), 40).is_cached());
        assert!(!cache.contains("a"));
        assert!(cache.contains("b") && cache.contains("c"));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.bytes_used, 80);
        cache.validate_accounting().unwrap();
    }

    #[test]
    fn recency_on_get_protects_hot_entries() {
        let cache = core(CacheConfig {
            bytes_capacity: 100,
            ..CacheConfig::default()
        });
        cache.insert("a", "public", value("a"), 40);
        cache.insert("b", "public", value("b"), 40);
        assert!(cache.get("a", "public").is_some());
        cache.insert("c", "public", value("c"), 40);
        assert!(cache.contains("a"));
        assert!(!cache.contains("b"));
    }

    #[test]
    fn an_entry_larger_than_the_cache_is_uncacheable() {
        let cache = core(CacheConfig {
            bytes_capacity: 100,
            ..CacheConfig::default()
        });
        cache.insert("small", "public", value("s"), 60);
        assert_eq!(
            cache.insert("huge", "public", value("h"), 200),
            Admission::TooLarge
        );
        // Nothing was evicted for the rejected giant.
        assert!(cache.contains("small"));
        assert_eq!(cache.stats().uncacheable, 1);
        cache.validate_accounting().unwrap();
    }

    #[test]
    fn quota_makes_room_among_own_entries_only() {
        let cache = core(CacheConfig {
            bytes_capacity: 1000,
            tenant_quota_bytes: Some(100),
            ..CacheConfig::default()
        });
        cache.insert("a1", "a", value("x"), 60);
        cache.insert("b1", "b", value("x"), 60);
        // Tenant a is at 60/100; inserting 60 more must evict a1, not b1.
        assert!(cache.insert("a2", "a", value("x"), 60).is_cached());
        assert!(!cache.contains("a1"));
        assert!(cache.contains("b1"));
        // An entry larger than the quota is admitted-but-uncacheable.
        assert_eq!(
            cache.insert("a3", "a", value("x"), 150),
            Admission::OverQuota
        );
        cache.validate_accounting().unwrap();
    }

    #[test]
    fn fair_share_floor_shields_other_tenants() {
        // Floor 0.5 over 200 bytes and 2 active tenants → 50 bytes
        // protected per tenant.
        let cache = core(CacheConfig {
            bytes_capacity: 200,
            tenant_floor: 0.5,
            ..CacheConfig::default()
        });
        cache.insert("hot1", "b", value("x"), 25);
        cache.insert("hot2", "b", value("x"), 25);
        // Tenant a floods: b sits exactly at the 50-byte floor, so every
        // eviction must come from a's own scan entries.
        for i in 0..20 {
            let key = format!("scan{i}");
            cache.insert(&key, "a", value("x"), 50);
        }
        assert!(cache.contains("hot1"), "floor must protect tenant b");
        assert!(cache.contains("hot2"), "floor must protect tenant b");
        cache.validate_accounting().unwrap();
    }

    #[test]
    fn contended_when_everything_else_is_protected() {
        let cache = core(CacheConfig {
            bytes_capacity: 100,
            tenant_floor: 1.0,
            ..CacheConfig::default()
        });
        cache.insert("b1", "b", value("x"), 90);
        // Tenant a wants 90 bytes; b's only entry is floor-protected and a
        // owns nothing, so the insert is admitted-but-uncacheable.
        assert_eq!(
            cache.insert("a1", "a", value("x"), 90),
            Admission::Contended
        );
        assert!(cache.contains("b1"));
        cache.validate_accounting().unwrap();
    }

    #[test]
    fn legacy_entry_bound_still_works() {
        let cache = core(CacheConfig {
            max_entries: Some(2),
            ..CacheConfig::default()
        });
        cache.insert("a", "public", value("a"), 1);
        cache.insert("b", "public", value("b"), 1);
        cache.get("a", "public");
        cache.insert("c", "public", value("c"), 1);
        assert!(cache.contains("a") && cache.contains("c"));
        assert!(!cache.contains("b"));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn every_policy_keeps_the_accounting_clean() {
        let registry = ServingPolicyRegistry::with_builtin();
        for name in registry.names() {
            let cache: CacheCore<String> = CacheCore::new(
                CacheConfig {
                    policy: name.clone(),
                    bytes_capacity: 1000,
                    ..CacheConfig::default()
                },
                &registry,
            )
            .unwrap();
            for i in 0..200u32 {
                let key = format!("k{}", i % 37);
                if i % 3 == 0 {
                    cache.get(&key, "public");
                } else {
                    let bytes = 16 + (u64::from(i) * 37) % 400;
                    cache.insert(&key, "public", value("x"), bytes);
                }
            }
            cache
                .validate_accounting()
                .unwrap_or_else(|e| panic!("policy {name}: {e}"));
            assert!(cache.bytes_used() <= 1000, "policy {name}");
        }
    }
}
