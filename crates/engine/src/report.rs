//! The serializable outcome of one engine run.

use treemem::tree::{NodeId, Size};

use crate::config::MemoryBudget;
use crate::json::escape;

/// Measurements of the parallel (subtree-concurrent) numeric execution.
///
/// The fields split into two groups.  The *plan* fields (cut shape, static
/// peaks, resolved budget, oversized-task count) depend only on the
/// configuration's `max_tasks`/`budget` and the traversal — never on the
/// worker count or the scheduling — so they are part of the report's
/// deterministic identity.  The *runtime* fields (worker count, measured
/// peak, forced admissions, all timings and utilization) vary with the
/// machine and the interleaving; [`Report::fingerprint`] zeroes them, which
/// is what makes reports bit-comparable across worker counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelReport {
    /// Cut granularity the partition was computed with.
    pub max_tasks: usize,
    /// Number of subtree tasks the cut produced.
    pub subtree_count: usize,
    /// Number of columns above the cut (the sequential merge phase).
    pub above_cut_nodes: usize,
    /// The sequential MinMemory bound: the model peak of the chosen
    /// traversal executed sequentially, in matrix entries.
    pub sequential_peak_entries: Size,
    /// The resolved shared budget in matrix entries (`None` = unbounded).
    pub budget_entries: Option<u64>,
    /// Largest statically modeled peak over the subtree tasks.
    pub max_task_peak_entries: u64,
    /// Statically modeled peak of the merge phase (inherited blocks plus
    /// above-cut fronts).
    pub merge_peak_entries: u64,
    /// Tasks whose static peak exceeds the budget on their own (each such
    /// task is run alone — the degrade-to-sequential path).
    pub oversized_tasks: usize,
    /// Worker threads the run was configured with (runtime).
    pub workers: usize,
    /// Measured high-water mark of live entries across all workers
    /// (runtime: depends on the interleaving).
    pub measured_peak_entries: u64,
    /// Times the ledger force-admitted a task over budget because nothing
    /// was running (runtime).
    pub forced_admissions: u64,
    /// Wall-clock of the whole parallel execution (tasks + merge).
    pub wall_seconds: f64,
    /// Longest task plus the merge phase: the chain no worker count can
    /// beat.
    pub critical_path_seconds: f64,
    /// Wall-clock of the sequential merge phase.
    pub merge_seconds: f64,
    /// Per-task wall-clock seconds, in task order (largest subtree first).
    pub task_seconds: Vec<f64>,
    /// Busy seconds per worker.
    pub worker_busy_seconds: Vec<f64>,
    /// Total busy time (tasks + merge) over `workers × wall_seconds`.
    pub utilization: f64,
}

impl ParallelReport {
    /// Zero every runtime-dependent field (see the type docs), leaving only
    /// the deterministic plan fields.
    fn strip_runtime(&mut self) {
        self.workers = 0;
        self.measured_peak_entries = 0;
        self.forced_admissions = 0;
        self.wall_seconds = 0.0;
        self.critical_path_seconds = 0.0;
        self.merge_seconds = 0.0;
        self.task_seconds = Vec::new();
        self.worker_busy_seconds = Vec::new();
        self.utilization = 0.0;
    }

    /// Render the report as a JSON object fragment.
    pub fn to_json_fragment(&self) -> String {
        let budget = match self.budget_entries {
            Some(entries) => entries.to_string(),
            None => "null".to_string(),
        };
        let seconds_array = |values: &[f64]| -> String {
            let rendered: Vec<String> = values.iter().map(|s| format!("{s:.6}")).collect();
            format!("[{}]", rendered.join(","))
        };
        format!(
            "{{\"max_tasks\": {}, \"subtree_count\": {}, \"above_cut_nodes\": {}, \
             \"sequential_peak_entries\": {}, \"budget_entries\": {budget}, \
             \"max_task_peak_entries\": {}, \"merge_peak_entries\": {}, \
             \"oversized_tasks\": {}, \"workers\": {}, \"measured_peak_entries\": {}, \
             \"forced_admissions\": {}, \"wall_seconds\": {:.6}, \
             \"critical_path_seconds\": {:.6}, \"merge_seconds\": {:.6}, \
             \"task_seconds\": {}, \"worker_busy_seconds\": {}, \"utilization\": {:.6}}}",
            self.max_tasks,
            self.subtree_count,
            self.above_cut_nodes,
            self.sequential_peak_entries,
            self.max_task_peak_entries,
            self.merge_peak_entries,
            self.oversized_tasks,
            self.workers,
            self.measured_peak_entries,
            self.forced_admissions,
            self.wall_seconds,
            self.critical_path_seconds,
            self.merge_seconds,
            seconds_array(&self.task_seconds),
            seconds_array(&self.worker_busy_seconds),
            self.utilization,
        )
    }
}

/// Measurements of the distributed (multi-process) numeric execution.
///
/// Same split as [`ParallelReport`]: the *plan* fields (cut shape, static
/// peaks, resolved budget, lease duration) are a pure function of the
/// configuration and the traversal, while the *runtime* fields (worker
/// processes seen, per-worker timings, requeues, lease expiries, bytes
/// moved) depend on cluster dynamics and are zeroed by
/// [`Report::fingerprint`] — which is exactly what makes a distributed
/// report bit-comparable to the single-process run of the same plan.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedReport {
    /// Cut granularity the partition was computed with (`distributed.tasks`).
    pub max_tasks: usize,
    /// Number of subtree tasks the cut produced.
    pub subtree_count: usize,
    /// Number of columns above the cut (merged by the coordinator).
    pub above_cut_nodes: usize,
    /// The sequential MinMemory bound of the chosen traversal, in entries.
    pub sequential_peak_entries: Size,
    /// The resolved cluster budget in matrix entries (`None` = unbounded).
    pub budget_entries: Option<u64>,
    /// Largest statically modeled peak over the subtree tasks.
    pub max_task_peak_entries: u64,
    /// Statically modeled peak of the coordinator's merge phase.
    pub merge_peak_entries: u64,
    /// Tasks whose static peak exceeds the budget on their own.
    pub oversized_tasks: usize,
    /// Lease duration per claimed task, in milliseconds.
    pub lease_ms: u64,
    /// Distinct worker processes that claimed at least one task (runtime).
    pub workers: usize,
    /// Tasks re-issued after a lease expiry (runtime).
    pub tasks_requeued: u64,
    /// Leases that expired before a contribution arrived (runtime).
    pub lease_expiries: u64,
    /// Serialized contribution bytes received from workers (runtime).
    pub contribution_bytes: u64,
    /// Wall-clock of the whole distributed execution (runtime).
    pub wall_seconds: f64,
    /// Wall-clock of the coordinator's sequential merge phase (runtime).
    pub merge_seconds: f64,
    /// Busy seconds per worker process, in first-claim order (runtime).
    pub worker_busy_seconds: Vec<f64>,
}

impl DistributedReport {
    /// Zero every runtime-dependent field (see the type docs), leaving only
    /// the deterministic plan fields.
    fn strip_runtime(&mut self) {
        self.workers = 0;
        self.tasks_requeued = 0;
        self.lease_expiries = 0;
        self.contribution_bytes = 0;
        self.wall_seconds = 0.0;
        self.merge_seconds = 0.0;
        self.worker_busy_seconds = Vec::new();
    }

    /// Render the report as a JSON object fragment.
    pub fn to_json_fragment(&self) -> String {
        let budget = match self.budget_entries {
            Some(entries) => entries.to_string(),
            None => "null".to_string(),
        };
        let seconds: Vec<String> = self
            .worker_busy_seconds
            .iter()
            .map(|s| format!("{s:.6}"))
            .collect();
        format!(
            "{{\"max_tasks\": {}, \"subtree_count\": {}, \"above_cut_nodes\": {}, \
             \"sequential_peak_entries\": {}, \"budget_entries\": {budget}, \
             \"max_task_peak_entries\": {}, \"merge_peak_entries\": {}, \
             \"oversized_tasks\": {}, \"lease_ms\": {}, \"workers\": {}, \
             \"tasks_requeued\": {}, \"lease_expiries\": {}, \
             \"contribution_bytes\": {}, \"wall_seconds\": {:.6}, \
             \"merge_seconds\": {:.6}, \"worker_busy_seconds\": [{}]}}",
            self.max_tasks,
            self.subtree_count,
            self.above_cut_nodes,
            self.sequential_peak_entries,
            self.max_task_peak_entries,
            self.merge_peak_entries,
            self.oversized_tasks,
            self.lease_ms,
            self.workers,
            self.tasks_requeued,
            self.lease_expiries,
            self.contribution_bytes,
            self.wall_seconds,
            self.merge_seconds,
            seconds.join(","),
        )
    }
}

/// Wall-clock seconds of every pipeline stage, measured with
/// `perfprof::timing`.  Stages that did not run (e.g. ordering on a prebuilt
/// tree, or the numeric stage when it is disabled) report `0.0`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageTimings {
    /// Problem acquisition (generator / MatrixMarket parse).
    pub generate_seconds: f64,
    /// Fill-reducing ordering plus elimination tree and column counts.
    pub ordering_seconds: f64,
    /// Amalgamation into the weighted assembly tree.
    pub symbolic_seconds: f64,
    /// The MinMemory solver.
    pub solver_seconds: f64,
    /// The out-of-core simulation plus the divisible lower bound.
    pub io_seconds: f64,
    /// The numeric multifrontal factorization (0.0 when disabled).
    pub numeric_seconds: f64,
    /// The batched triangular solve plus the optional residual check (0.0
    /// when the solve stage is disabled).
    pub solve_seconds: f64,
}

/// Measurements of the solve stage (batched forward/backward substitution
/// through the computed factor).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Number of right-hand sides solved in the batch.
    pub rhs_count: usize,
    /// Largest max-norm residual `‖Ax − b‖∞` over the batch, when the
    /// residual check was enabled.
    pub max_residual: Option<f64>,
}

/// Measurements of the numeric multifrontal factorization stage.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericReport {
    /// Peak live temporary entries measured during the execution.
    pub measured_peak_entries: usize,
    /// Peak predicted by the paper's per-column tree model for the same
    /// traversal (the two must agree).
    pub model_peak_entries: Size,
    /// Nonzeros of the computed Cholesky factor.
    pub factor_nnz: usize,
    /// Max-norm error of solving a system with a known answer through the
    /// computed factor (a correctness check on the factorization).
    pub solve_error: f64,
}

/// Everything one plan → schedule → execute run produced, with provenance.
///
/// ```
/// use engine::{Engine, EngineConfig};
/// use treemem::gadgets::harpoon;
///
/// let engine = Engine::new();
/// let report = engine
///     .run(&EngineConfig::prebuilt(harpoon(3, 300, 1)))
///     .unwrap();
/// assert_eq!(report.solver, "minmem");
/// assert_eq!(report.traversal.len(), report.nodes);
/// // Reports serialize to JSON for storage and transport.
/// assert!(report.to_json().contains("\"schema\": \"engine_report/v1\""));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// FNV-1a hash of the *effective* configuration's canonical JSON — the
    /// plan's configuration with any `ScheduleSpec` overrides applied, so
    /// replaying the hashed configuration reproduces exactly this report.
    pub config_hash: String,
    /// Human-readable problem-source name.
    pub source: String,
    /// Ordering method name.
    pub ordering: String,
    /// Relaxed-amalgamation allowance.
    pub amalgamation: usize,
    /// Solver that produced the traversal.
    pub solver: String,
    /// Eviction policy that produced the I/O schedule.
    pub policy: String,
    /// Number of nodes of the (assembly) tree.
    pub nodes: usize,
    /// Number of unknowns of the underlying matrix (0 for prebuilt trees).
    pub matrix_n: usize,
    /// Peak memory of the traversal (the MinMemory objective).
    pub solver_peak: Size,
    /// The resolved absolute memory budget of the simulated execution.
    pub memory_budget: Size,
    /// The budget as it was specified (absolute / fraction / unlimited).
    pub budget_spec: MemoryBudget,
    /// Volume written to secondary memory (the MinIO objective).
    pub io_volume: Size,
    /// Volume read back from secondary memory.
    pub read_volume: Size,
    /// Number of files written out.
    pub files_written: usize,
    /// Peak main-memory usage of the out-of-core execution.
    pub io_peak_memory: Size,
    /// Divisible-relaxation lower bound for this traversal and budget.
    pub divisible_bound: Size,
    /// The traversal (top-down order, root first).
    pub traversal: Vec<NodeId>,
    /// Numeric factorization measurements, when the stage ran.
    pub numeric: Option<NumericReport>,
    /// Solve-stage measurements, when the solve stage ran.
    pub solve: Option<SolveReport>,
    /// Parallel execution measurements, when the numeric stage ran with
    /// `workers >= 1`.
    pub parallel: Option<ParallelReport>,
    /// Distributed execution measurements, when the numeric stage was
    /// sharded across worker processes (`distributed.tasks >= 2`).
    pub distributed: Option<DistributedReport>,
    /// Per-stage wall-clock times.
    pub timings: StageTimings,
}

impl Report {
    /// Render the report as a JSON document (schema `engine_report/v1`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"engine_report/v1\",\n");
        out.push_str(&format!(
            "  \"config_hash\": \"{}\",\n",
            escape(&self.config_hash)
        ));
        out.push_str(&format!("  \"source\": \"{}\",\n", escape(&self.source)));
        out.push_str(&format!(
            "  \"ordering\": \"{}\",\n",
            escape(&self.ordering)
        ));
        out.push_str(&format!("  \"amalgamation\": {},\n", self.amalgamation));
        out.push_str(&format!("  \"solver\": \"{}\",\n", escape(&self.solver)));
        out.push_str(&format!("  \"policy\": \"{}\",\n", escape(&self.policy)));
        out.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        out.push_str(&format!("  \"matrix_n\": {},\n", self.matrix_n));
        out.push_str(&format!("  \"solver_peak\": {},\n", self.solver_peak));
        out.push_str(&format!("  \"memory_budget\": {},\n", self.memory_budget));
        let budget = match self.budget_spec {
            MemoryBudget::Unlimited => "{\"type\": \"unlimited\"}".to_string(),
            MemoryBudget::Absolute(size) => {
                format!("{{\"type\": \"absolute\", \"value\": {size}}}")
            }
            MemoryBudget::FractionOfPeak(fraction) => {
                format!("{{\"type\": \"fraction\", \"value\": {fraction}}}")
            }
        };
        out.push_str(&format!("  \"budget_spec\": {budget},\n"));
        out.push_str(&format!("  \"io_volume\": {},\n", self.io_volume));
        out.push_str(&format!("  \"read_volume\": {},\n", self.read_volume));
        out.push_str(&format!("  \"files_written\": {},\n", self.files_written));
        out.push_str(&format!("  \"io_peak_memory\": {},\n", self.io_peak_memory));
        out.push_str(&format!(
            "  \"divisible_bound\": {},\n",
            self.divisible_bound
        ));
        let order: Vec<String> = self.traversal.iter().map(|n| n.to_string()).collect();
        out.push_str(&format!("  \"traversal\": [{}],\n", order.join(",")));
        match &self.numeric {
            Some(numeric) => out.push_str(&format!(
                "  \"numeric\": {{\"measured_peak_entries\": {}, \
                 \"model_peak_entries\": {}, \"factor_nnz\": {}, \
                 \"solve_error\": {:e}}},\n",
                numeric.measured_peak_entries,
                numeric.model_peak_entries,
                numeric.factor_nnz,
                numeric.solve_error
            )),
            None => out.push_str("  \"numeric\": null,\n"),
        }
        match &self.solve {
            Some(solve) => {
                let residual = match solve.max_residual {
                    // A non-finite residual would not be JSON; `null` keeps
                    // the document well-formed (it cannot be confused with
                    // "check disabled", which omits the whole field).
                    Some(value) if value.is_finite() => format!("{value:e}"),
                    Some(_) => "null".to_string(),
                    None => "null".to_string(),
                };
                out.push_str(&format!(
                    "  \"solve\": {{\"rhs_count\": {}, \"residual_checked\": {}, \
                     \"max_residual\": {residual}}},\n",
                    solve.rhs_count,
                    solve.max_residual.is_some()
                ));
            }
            None => out.push_str("  \"solve\": null,\n"),
        }
        match &self.parallel {
            Some(parallel) => {
                out.push_str(&format!(
                    "  \"parallel\": {},\n",
                    parallel.to_json_fragment()
                ));
            }
            None => out.push_str("  \"parallel\": null,\n"),
        }
        match &self.distributed {
            Some(distributed) => {
                out.push_str(&format!(
                    "  \"distributed\": {},\n",
                    distributed.to_json_fragment()
                ));
            }
            None => out.push_str("  \"distributed\": null,\n"),
        }
        out.push_str(&format!(
            "  \"timings\": {{\"generate_seconds\": {:.6}, \"ordering_seconds\": {:.6}, \
             \"symbolic_seconds\": {:.6}, \"solver_seconds\": {:.6}, \
             \"io_seconds\": {:.6}, \"numeric_seconds\": {:.6}, \
             \"solve_seconds\": {:.6}}}\n",
            self.timings.generate_seconds,
            self.timings.ordering_seconds,
            self.timings.symbolic_seconds,
            self.timings.solver_seconds,
            self.timings.io_seconds,
            self.timings.numeric_seconds,
            self.timings.solve_seconds
        ));
        out.push_str("}\n");
        out
    }

    /// A deterministic identity of the result — every field except the run's
    /// provenance (`config_hash`), the wall-clock timings and the
    /// runtime-dependent parallel measurements — used by tests to assert
    /// that two runs produced the same outcome (e.g. parallel runs with
    /// different worker counts, whose configurations — and therefore config
    /// hashes — legitimately differ while the outcome must not).
    ///
    /// For parallel runs the measured peak depends on how the scheduler
    /// interleaved tasks, so `numeric.measured_peak_entries` and the
    /// [`ParallelReport`] runtime fields are zeroed alongside the timings;
    /// everything else — traversal, I/O schedule, factor size, solve
    /// residual, the cut shape and the static peaks — must be bit-identical
    /// for any worker count.
    pub fn fingerprint(&self) -> String {
        let mut stripped = self.clone();
        stripped.config_hash = String::new();
        stripped.timings = StageTimings::default();
        if let Some(parallel) = &mut stripped.parallel {
            parallel.strip_runtime();
            if let Some(numeric) = &mut stripped.numeric {
                numeric.measured_peak_entries = 0;
            }
        }
        if let Some(distributed) = &mut stripped.distributed {
            distributed.strip_runtime();
            if let Some(numeric) = &mut stripped.numeric {
                numeric.measured_peak_entries = 0;
            }
        }
        stripped.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn sample() -> Report {
        Report {
            config_hash: "0123456789abcdef".to_string(),
            source: "grid2d-400-s42".to_string(),
            ordering: "amd".to_string(),
            amalgamation: 4,
            solver: "minmem".to_string(),
            policy: "LSNF".to_string(),
            nodes: 10,
            matrix_n: 400,
            solver_peak: 123,
            memory_budget: 100,
            budget_spec: MemoryBudget::FractionOfPeak(0.5),
            io_volume: 23,
            read_volume: 23,
            files_written: 2,
            io_peak_memory: 99,
            divisible_bound: 20,
            traversal: vec![0, 2, 1],
            numeric: Some(NumericReport {
                measured_peak_entries: 500,
                model_peak_entries: 500,
                factor_nnz: 1234,
                solve_error: 1e-12,
            }),
            solve: None,
            parallel: None,
            distributed: None,
            timings: StageTimings {
                solver_seconds: 0.25,
                ..StageTimings::default()
            },
        }
    }

    fn sample_parallel() -> ParallelReport {
        ParallelReport {
            max_tasks: 8,
            subtree_count: 8,
            above_cut_nodes: 3,
            sequential_peak_entries: 400,
            budget_entries: Some(800),
            max_task_peak_entries: 120,
            merge_peak_entries: 300,
            oversized_tasks: 0,
            workers: 4,
            measured_peak_entries: 612,
            forced_admissions: 0,
            wall_seconds: 0.5,
            critical_path_seconds: 0.3,
            merge_seconds: 0.1,
            task_seconds: vec![0.1; 8],
            worker_busy_seconds: vec![0.2; 4],
            utilization: 0.8,
        }
    }

    fn sample_distributed() -> DistributedReport {
        DistributedReport {
            max_tasks: 16,
            subtree_count: 16,
            above_cut_nodes: 5,
            sequential_peak_entries: 400,
            budget_entries: Some(800),
            max_task_peak_entries: 120,
            merge_peak_entries: 300,
            oversized_tasks: 0,
            lease_ms: 30_000,
            workers: 2,
            tasks_requeued: 1,
            lease_expiries: 1,
            contribution_bytes: 65_536,
            wall_seconds: 0.7,
            merge_seconds: 0.2,
            worker_busy_seconds: vec![0.3, 0.25],
        }
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let report = sample();
        let json = Json::parse(&report.to_json()).unwrap();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("engine_report/v1")
        );
        assert_eq!(json.get("io_volume").and_then(Json::as_i64), Some(23));
        assert_eq!(
            json.get("traversal")
                .and_then(Json::as_array)
                .map(<[_]>::len),
            Some(3)
        );
        assert_eq!(
            json.get("numeric")
                .and_then(|n| n.get("factor_nnz"))
                .and_then(Json::as_usize),
            Some(1234)
        );
    }

    #[test]
    fn fingerprints_ignore_timings_only() {
        let a = sample();
        let mut b = a.clone();
        b.timings.solver_seconds = 99.0;
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.io_volume = 24;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn solve_json_includes_the_solve_section() {
        let mut report = sample();
        report.solve = Some(SolveReport {
            rhs_count: 3,
            max_residual: Some(4.5e-13),
        });
        report.timings.solve_seconds = 0.01;
        let json = Json::parse(&report.to_json()).unwrap();
        let solve = json.get("solve").unwrap();
        assert_eq!(solve.get("rhs_count").and_then(Json::as_usize), Some(3));
        assert_eq!(
            solve.get("residual_checked").and_then(Json::as_bool),
            Some(true)
        );
        assert!(solve.get("max_residual").and_then(Json::as_f64).unwrap() < 1e-12);
        // With the check disabled the residual renders as null but the
        // section still reports the batch size.
        report.solve = Some(SolveReport {
            rhs_count: 1,
            max_residual: None,
        });
        let json = Json::parse(&report.to_json()).unwrap();
        let solve = json.get("solve").unwrap();
        assert_eq!(
            solve.get("residual_checked").and_then(Json::as_bool),
            Some(false)
        );
        assert!(solve.get("max_residual").and_then(Json::as_f64).is_none());
    }

    #[test]
    fn fingerprints_keep_the_solve_outcome() {
        // The solve stage is deterministic (bit-identical factor, seeded
        // right-hand sides), so its outcome is part of the identity.
        let mut a = sample();
        a.solve = Some(SolveReport {
            rhs_count: 2,
            max_residual: Some(1e-14),
        });
        let mut b = a.clone();
        b.timings.solve_seconds = 42.0;
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.solve.as_mut().unwrap().rhs_count = 3;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn parallel_json_includes_the_parallel_section() {
        let mut report = sample();
        report.parallel = Some(sample_parallel());
        let json = Json::parse(&report.to_json()).unwrap();
        let parallel = json.get("parallel").unwrap();
        assert_eq!(parallel.get("workers").and_then(Json::as_usize), Some(4));
        assert_eq!(
            parallel.get("subtree_count").and_then(Json::as_usize),
            Some(8)
        );
        assert_eq!(
            parallel.get("budget_entries").and_then(Json::as_u64),
            Some(800)
        );
    }

    #[test]
    fn distributed_json_includes_the_distributed_section() {
        let mut report = sample();
        report.distributed = Some(sample_distributed());
        let json = Json::parse(&report.to_json()).unwrap();
        let distributed = json.get("distributed").unwrap();
        assert_eq!(distributed.get("workers").and_then(Json::as_usize), Some(2));
        assert_eq!(
            distributed.get("subtree_count").and_then(Json::as_usize),
            Some(16)
        );
        assert_eq!(
            distributed.get("lease_ms").and_then(Json::as_u64),
            Some(30_000)
        );
        assert_eq!(
            distributed
                .get("worker_busy_seconds")
                .and_then(Json::as_array)
                .map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn fingerprints_ignore_distributed_runtime_but_not_the_cut() {
        let mut a = sample();
        a.distributed = Some(sample_distributed());
        // Different cluster dynamics — worker count, requeues, expiries,
        // timings, bytes on the wire: the same run outcome.
        let mut b = a.clone();
        {
            let distributed = b.distributed.as_mut().unwrap();
            distributed.workers = 7;
            distributed.tasks_requeued = 9;
            distributed.lease_expiries = 9;
            distributed.contribution_bytes = 1;
            distributed.wall_seconds = 99.0;
            distributed.merge_seconds = 42.0;
            distributed.worker_busy_seconds = vec![1.0; 7];
        }
        b.numeric.as_mut().unwrap().measured_peak_entries = 999;
        assert_eq!(a.fingerprint(), b.fingerprint());
        // A different cut or lease policy is a different outcome.
        b.distributed.as_mut().unwrap().subtree_count = 17;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.distributed.as_mut().unwrap().lease_ms = 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprints_ignore_parallel_runtime_but_not_the_cut() {
        let mut a = sample();
        a.parallel = Some(sample_parallel());
        // Different worker count, interleaving-dependent peak and timings:
        // the same run outcome.
        let mut b = a.clone();
        {
            let parallel = b.parallel.as_mut().unwrap();
            parallel.workers = 8;
            parallel.measured_peak_entries = 700;
            parallel.forced_admissions = 2;
            parallel.wall_seconds = 9.0;
            parallel.worker_busy_seconds = vec![0.1; 8];
            parallel.utilization = 0.2;
        }
        b.numeric.as_mut().unwrap().measured_peak_entries = 999;
        assert_eq!(a.fingerprint(), b.fingerprint());
        // A different cut is a different outcome.
        b.parallel.as_mut().unwrap().subtree_count = 9;
        assert_ne!(a.fingerprint(), b.fingerprint());
        // So is a different static peak or budget.
        let mut c = a.clone();
        c.parallel.as_mut().unwrap().budget_entries = None;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
