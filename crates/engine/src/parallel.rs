//! Minimal parallel primitives: a data-parallel map over scoped threads and
//! a fixed worker pool for serving-style workloads.
//!
//! The build environment is offline, so `rayon` is unavailable; this module
//! provides the two primitives the workspace needs.  [`par_map`] maps over a
//! slice with dynamic (work-stealing-style) scheduling on top of
//! `std::thread::scope` — jobs are handed out through a shared atomic
//! counter, so uneven per-item cost (small trees next to big ones) balances
//! automatically, and results come back in input order.  [`WorkerPool`] is
//! the open-ended variant for jobs that arrive over time instead of as a
//! slice: a fixed set of threads draining a shared queue, used by
//! `crates/server` to execute HTTP requests.
//!
//! The module originally lived in `crates/bench`; it moved here so
//! [`Engine::run_batch`](crate::Engine::run_batch) can fan configurations
//! over the same pool, and `bench::parallel` now re-exports it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Number of worker threads to use by default: the available parallelism,
/// capped so tiny inputs do not spawn idle threads.
pub fn default_threads(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.min(jobs).max(1)
}

/// Apply `f` to every item of `items` on `threads` worker threads and return
/// the results in input order.
///
/// `f` receives the item index and a reference to the item.  Panics in a
/// worker propagate to the caller after all workers have stopped.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(idx, item)| f(idx, item))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= items.len() {
                            break;
                        }
                        done.push((idx, f(idx, &items[idx])));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            per_worker.push(handle.join().expect("parallel worker panicked"));
        }
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (idx, result) in per_worker.into_iter().flatten() {
        slots[idx] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every job produced a result"))
        .collect()
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: Mutex<PoolQueue>,
    wake: Condvar,
}

struct PoolQueue {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

/// A fixed pool of worker threads draining a shared job queue.
///
/// Unlike [`par_map`], which needs the whole work list up front, jobs can be
/// [`submit`](WorkerPool::submit)ted at any time from any thread; each runs
/// exactly once on some worker.  [`shutdown`](WorkerPool::shutdown) drains
/// the queue before joining the workers, so no accepted job is lost.
///
/// ```
/// use engine::parallel::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = WorkerPool::new(4);
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..100 {
///     let counter = counter.clone();
///     pool.submit(move || {
///         counter.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// pool.shutdown();
/// assert_eq!(counter.load(Ordering::Relaxed), 100);
/// ```
pub struct WorkerPool {
    state: Arc<PoolState>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool of `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let state = Arc::new(PoolState {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            wake: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|index| {
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("worker-{index}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawning a pool worker failed")
            })
            .collect();
        WorkerPool { state, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Queue `job` for execution on some worker.  Jobs submitted after
    /// [`shutdown`](WorkerPool::shutdown) began are dropped.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut queue = self.state.queue.lock().expect("worker pool poisoned");
        if queue.shutting_down {
            return;
        }
        queue.jobs.push_back(Box::new(job));
        drop(queue);
        self.state.wake.notify_one();
    }

    /// Pending (not yet started) jobs.
    pub fn backlog(&self) -> usize {
        self.state
            .queue
            .lock()
            .expect("worker pool poisoned")
            .jobs
            .len()
    }

    /// Finish every queued job, then stop and join the workers.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            worker.join().expect("pool worker panicked");
        }
    }

    fn begin_shutdown(&self) {
        let mut queue = self.state.queue.lock().expect("worker pool poisoned");
        queue.shutting_down = true;
        drop(queue);
        self.state.wake.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // `shutdown` already drained `workers`; a pool dropped without an
        // explicit shutdown still stops and joins cleanly.
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            worker.join().expect("pool worker panicked");
        }
    }
}

fn worker_loop(state: &PoolState) {
    loop {
        let job = {
            let mut queue = state.queue.lock().expect("worker pool poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutting_down {
                    return;
                }
                queue = state.wake.wait(queue).expect("worker pool poisoned");
            }
        };
        // Contain job panics: a failing job must not retire its worker (the
        // pool would silently lose capacity) nor poison the later
        // `shutdown`/`Drop` join.  The pool is fire-and-forget, so the
        // panic payload has nowhere better to go than being swallowed;
        // callers that care wrap their own `catch_unwind` first.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = par_map(&items, 8, |_, &x| 2 * x);
        assert_eq!(doubled, (0..100).map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty_inputs_work() {
        let items: Vec<usize> = vec![7];
        assert_eq!(par_map(&items, 1, |idx, &x| idx + x), vec![7]);
        let empty: Vec<usize> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
    }

    #[test]
    fn uneven_workloads_are_balanced() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..32)
            .map(|i| if i % 7 == 0 { 200_000 } else { 10 })
            .collect();
        let sums = par_map(&items, 4, |_, &n| (0..n).sum::<u64>());
        assert_eq!(sums.len(), 32);
        assert_eq!(sums[1], 45);
    }

    #[test]
    fn default_threads_is_positive_and_bounded() {
        assert!(default_threads(0) >= 1);
        assert!(default_threads(2) >= 1);
        assert!(default_threads(1_000) >= 1);
    }

    #[test]
    fn pool_runs_every_submitted_job() {
        use std::sync::atomic::AtomicUsize;

        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..250 {
            let counter = counter.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 250);
    }

    #[test]
    fn dropping_a_pool_joins_cleanly() {
        use std::sync::atomic::AtomicUsize;

        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..10 {
                let counter = counter.clone();
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        // Drop drains the queue before joining.
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn a_panicking_job_does_not_retire_its_worker() {
        use std::sync::atomic::AtomicUsize;

        let pool = WorkerPool::new(1);
        pool.submit(|| panic!("job blew up"));
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let counter = counter.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        // The single worker survived the panic, ran the rest, and the join
        // in shutdown() does not propagate the contained panic.
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn submissions_after_shutdown_are_dropped() {
        use std::sync::atomic::AtomicUsize;

        let pool = WorkerPool::new(1);
        pool.begin_shutdown();
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let counter = counter.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 0);
    }
}
