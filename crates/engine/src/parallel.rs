//! A minimal data-parallel map over scoped threads.
//!
//! The build environment is offline, so `rayon` is unavailable; this module
//! provides the one primitive the engine's batch runner and the bench sweep
//! engine need — `par_map` over a slice with dynamic (work-stealing-style)
//! scheduling — on top of `std::thread::scope`.  Jobs are handed out through
//! a shared atomic counter, so uneven per-item cost (small trees next to big
//! ones) balances automatically.  Results come back in input order.
//!
//! The module originally lived in `crates/bench`; it moved here so
//! [`Engine::run_batch`](crate::Engine::run_batch) can fan configurations
//! over the same pool, and `bench::parallel` now re-exports it.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default: the available parallelism,
/// capped so tiny inputs do not spawn idle threads.
pub fn default_threads(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.min(jobs).max(1)
}

/// Apply `f` to every item of `items` on `threads` worker threads and return
/// the results in input order.
///
/// `f` receives the item index and a reference to the item.  Panics in a
/// worker propagate to the caller after all workers have stopped.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(idx, item)| f(idx, item))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= items.len() {
                            break;
                        }
                        done.push((idx, f(idx, &items[idx])));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            per_worker.push(handle.join().expect("parallel worker panicked"));
        }
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (idx, result) in per_worker.into_iter().flatten() {
        slots[idx] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every job produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = par_map(&items, 8, |_, &x| 2 * x);
        assert_eq!(doubled, (0..100).map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty_inputs_work() {
        let items: Vec<usize> = vec![7];
        assert_eq!(par_map(&items, 1, |idx, &x| idx + x), vec![7]);
        let empty: Vec<usize> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
    }

    #[test]
    fn uneven_workloads_are_balanced() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..32)
            .map(|i| if i % 7 == 0 { 200_000 } else { 10 })
            .collect();
        let sums = par_map(&items, 4, |_, &n| (0..n).sum::<u64>());
        assert_eq!(sums.len(), 32);
        assert_eq!(sums[1], 45);
    }

    #[test]
    fn default_threads_is_positive_and_bounded() {
        assert!(default_threads(0) >= 1);
        assert!(default_threads(2) >= 1);
        assert!(default_threads(1_000) >= 1);
    }
}
