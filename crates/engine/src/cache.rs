//! A bounded, TTL-aware LRU cache of [`Plan`]s keyed by effective-config
//! hash.
//!
//! Planning — problem acquisition, fill-reducing ordering, elimination tree,
//! column counts, amalgamation — dominates the cost of a request, while a
//! [`Plan`] is immutable-after-build and internally caches its solver
//! traversals and divisible bounds.  A server handling repeated
//! configurations therefore wants exactly one `Plan` per distinct effective
//! configuration, shared via [`Arc`] across worker threads; this module
//! provides that cache plus the hit/miss/eviction counters the `/stats`
//! endpoint reports.
//!
//! Eviction is classic LRU bounded by a capacity, with an optional
//! time-to-live: an entry older than the TTL is dropped on access (counted
//! separately from capacity evictions, so a sweep of `/stats` distinguishes
//! "working set too big" from "entries aging out").
//!
//! ```
//! use engine::{Engine, EngineConfig, PlanCache};
//! use treemem::gadgets::harpoon;
//!
//! let engine = Engine::new();
//! let cache = PlanCache::new(8, None);
//! let config = EngineConfig::prebuilt(harpoon(3, 300, 1));
//! let (_, hit) = cache.get_or_plan(&engine, &config).unwrap();
//! assert!(!hit);
//! let (_, hit) = cache.get_or_plan(&engine, &config).unwrap();
//! assert!(hit);
//! assert_eq!(cache.stats().hits, 1);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use treemem::sync::{TrackedCondvar, TrackedMutex};

use crate::cancel::CancelToken;
use crate::config::EngineConfig;
use crate::run::{Engine, EngineError, Plan};

struct Entry {
    key: String,
    plan: Arc<Plan>,
    inserted: Instant,
}

/// Point-in-time counters of a [`PlanCache`]; see the field docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only an expired entry).
    pub misses: u64,
    /// Entries dropped to keep the cache within its capacity.
    pub evictions: u64,
    /// Entries dropped because they outlived the TTL.
    pub expirations: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum number of resident entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The shared plan cache; see the module docs.
pub struct PlanCache {
    /// Most-recently-used entries live at the *back* of the vector.
    entries: TrackedMutex<Vec<Entry>>,
    /// Keys currently being planned by some caller (single-flight): other
    /// callers of [`PlanCache::get_or_plan`] wait on [`PlanCache::settled`]
    /// instead of planning the same configuration concurrently.
    in_flight: TrackedMutex<Vec<String>>,
    /// Notified whenever a key leaves `in_flight`.
    settled: TrackedCondvar,
    capacity: usize,
    ttl: Option<Duration>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expirations: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (at least 1), each living at
    /// most `ttl` (no expiry when `None`).
    pub fn new(capacity: usize, ttl: Option<Duration>) -> Self {
        PlanCache {
            entries: TrackedMutex::new(Vec::new(), "plan-cache.entries"),
            in_flight: TrackedMutex::new(Vec::new(), "plan-cache.in-flight"),
            settled: TrackedCondvar::new(),
            capacity: capacity.max(1),
            ttl,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expirations: AtomicU64::new(0),
        }
    }

    /// Look up the plan cached under `key`, refreshing its LRU position.
    /// An expired entry is dropped and reported as a miss.
    pub fn get(&self, key: &str) -> Option<Arc<Plan>> {
        let mut entries = self.entries.lock();
        match entries.iter().position(|entry| entry.key == key) {
            Some(index) => {
                if let Some(ttl) = self.ttl {
                    if entries[index].inserted.elapsed() > ttl {
                        entries.remove(index);
                        self.expirations.fetch_add(1, Ordering::Relaxed);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                }
                let entry = entries.remove(index);
                let plan = entry.plan.clone();
                entries.push(entry);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(plan)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert `plan` under `key` (most-recently-used position), evicting the
    /// least-recently-used entry if the cache is full.  A concurrent insert
    /// of the same key keeps the newer plan; the two are interchangeable
    /// because planning is deterministic in the configuration.
    pub fn insert(&self, key: impl Into<String>, plan: Arc<Plan>) {
        let key = key.into();
        let mut entries = self.entries.lock();
        if let Some(index) = entries.iter().position(|entry| entry.key == key) {
            entries.remove(index);
        }
        while entries.len() >= self.capacity {
            entries.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        entries.push(Entry {
            key,
            plan,
            inserted: Instant::now(),
        });
    }

    /// The cached plan for `config`'s effective-config hash, planning (and
    /// inserting) on a miss.  Returns the shared plan and whether the lookup
    /// hit.
    ///
    /// Misses are *single-flight*: concurrent callers with the same key
    /// wait for the one planner instead of each re-running the expensive
    /// ordering/symbolic stages, and then share its plan (reported as a
    /// hit).  Planning happens outside every lock, so a slow plan never
    /// blocks hits — or other misses — on different keys.
    pub fn get_or_plan(
        &self,
        engine: &Engine,
        config: &EngineConfig,
    ) -> Result<(Arc<Plan>, bool), EngineError> {
        self.get_or_plan_with_cancel(engine, config, None)
    }

    /// [`PlanCache::get_or_plan`] under a [`CancelToken`]: the token is
    /// threaded into [`Engine::plan_with_cancel`], and a caller *waiting* on
    /// another planner's in-flight key polls the token too, so its own
    /// deadline fires even while someone else does the planning.
    pub fn get_or_plan_with_cancel(
        &self,
        engine: &Engine,
        config: &EngineConfig,
        cancel: Option<&CancelToken>,
    ) -> Result<(Arc<Plan>, bool), EngineError> {
        let key = config.hash();
        self.single_flight(&key, cancel, || engine.plan_with_cancel(config, cancel))
    }

    /// The single-flight core: at most one caller plans `key` at a time;
    /// the others wait for it to settle and then share its entry.  The key
    /// settles on *every* exit from the planner — success, typed error, or
    /// panic (via [`SettleGuard`]) — so no outcome can wedge later callers.
    fn single_flight(
        &self,
        key: &str,
        cancel: Option<&CancelToken>,
        plan: impl FnOnce() -> Result<Plan, EngineError>,
    ) -> Result<(Arc<Plan>, bool), EngineError> {
        loop {
            if let Some(plan) = self.get(key) {
                return Ok((plan, true));
            }
            let mut in_flight = self.in_flight.lock();
            if !in_flight.iter().any(|flying| flying == key) {
                // This caller becomes the planner for the key.
                in_flight.push(key.to_string());
                break;
            }
            // Someone else is planning this key: wait until it settles,
            // then retry the lookup (normally a hit; a miss again only if
            // the planner failed or the entry was already evicted).  With a
            // token, wait in slices so this caller's own deadline fires
            // even though someone else does the work.
            while in_flight.iter().any(|flying| flying == key) {
                match cancel {
                    Some(token) => {
                        if token.is_cancelled() {
                            return Err(EngineError::Cancelled {
                                stage: "plan",
                                elapsed: token.elapsed(),
                            });
                        }
                        let (guard, _) = self
                            .settled
                            .wait_timeout(in_flight, Duration::from_millis(25));
                        in_flight = guard;
                    }
                    None => {
                        in_flight = self.settled.wait(in_flight);
                    }
                }
            }
        }
        // From here on the key MUST settle no matter how the planner exits;
        // the guard handles the panic path (a planner that unwinds must not
        // leave its waiters blocked forever).
        let guard = SettleGuard { cache: self, key };
        let planned = plan();
        // Insert before the key settles, so woken waiters find the entry.
        let result = planned.map(|plan| {
            let plan = Arc::new(plan);
            self.insert(key.to_string(), plan.clone());
            (plan, false)
        });
        drop(guard);
        result
    }

    /// Current counters (a consistent-enough snapshot for reporting).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
            entries: self.entries.lock().len(),
            capacity: self.capacity,
        }
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

/// Removes `key` from the in-flight set and wakes the waiters on drop, so
/// the key settles even when the planner panics.  [`TrackedMutex::lock`] is
/// poison-tolerant: this drop runs *during* that very unwind, and panicking
/// again would abort the process.
struct SettleGuard<'c> {
    cache: &'c PlanCache,
    key: &'c str,
}

impl Drop for SettleGuard<'_> {
    fn drop(&mut self) {
        let mut in_flight = self.cache.in_flight.lock();
        in_flight.retain(|flying| flying != self.key);
        drop(in_flight);
        self.cache.settled.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treemem::gadgets::harpoon;

    fn config(seed: u64) -> EngineConfig {
        EngineConfig::prebuilt(harpoon(3, 300, seed as treemem::tree::Size))
    }

    #[test]
    fn plans_are_shared_on_hits() {
        let engine = Engine::new();
        let cache = PlanCache::new(4, None);
        let (first, hit_a) = cache.get_or_plan(&engine, &config(1)).unwrap();
        let (second, hit_b) = cache.get_or_plan(&engine, &config(1)).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let engine = Engine::new();
        let cache = PlanCache::new(2, None);
        let configs: Vec<EngineConfig> = (1..=3).map(config).collect();
        cache.get_or_plan(&engine, &configs[0]).unwrap();
        cache.get_or_plan(&engine, &configs[1]).unwrap();
        // Touch 0 so 1 becomes the LRU victim.
        cache.get_or_plan(&engine, &configs[0]).unwrap();
        cache.get_or_plan(&engine, &configs[2]).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&configs[0].hash()).is_some());
        assert!(cache.get(&configs[1].hash()).is_none());
        assert!(cache.get(&configs[2].hash()).is_some());
    }

    #[test]
    fn ttl_expires_entries() {
        let engine = Engine::new();
        let cache = PlanCache::new(4, Some(Duration::from_millis(20)));
        cache.get_or_plan(&engine, &config(1)).unwrap();
        assert!(cache.get(&config(1).hash()).is_some());
        std::thread::sleep(Duration::from_millis(40));
        assert!(cache.get(&config(1).hash()).is_none());
        let stats = cache.stats();
        assert_eq!(stats.expirations, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn clear_keeps_counters() {
        let engine = Engine::new();
        let cache = PlanCache::new(4, None);
        cache.get_or_plan(&engine, &config(1)).unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn planning_errors_pass_through() {
        let engine = Engine::new();
        let cache = PlanCache::new(4, None);
        let bad = config(1).with_solver("nope");
        assert!(cache.get_or_plan(&engine, &bad).is_err());
        assert_eq!(cache.stats().entries, 0);
        // The failed key settled: a later attempt plans again (and a valid
        // config on the same cache is unaffected).
        assert!(cache.get_or_plan(&engine, &bad).is_err());
        assert!(cache.get_or_plan(&engine, &config(1)).is_ok());
    }

    #[test]
    fn a_panicking_planner_settles_the_key_and_unblocks_waiters() {
        let engine = Engine::new();
        let cache = PlanCache::new(4, None);
        let config = config(5);
        let key = config.hash();
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            // Thread A becomes the planner, proves a second caller is on its
            // way in, then dies mid-plan.
            let panicker = scope.spawn(|| {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.single_flight(&key, None, || {
                        barrier.wait();
                        std::thread::sleep(Duration::from_millis(30));
                        panic!("injected planner panic");
                    })
                }));
                assert!(outcome.is_err(), "the planner panic must propagate");
            });
            barrier.wait();
            // Thread B (this one): before the fix, A's unwind left the key
            // in `in_flight` forever and this call never returned.
            let (plan, hit) = cache
                .single_flight(&key, None, || engine.plan(&config))
                .expect("the second caller plans after the panic settles");
            assert!(!hit, "the panicked attempt cached nothing");
            assert_eq!(plan.config_hash(), key);
            panicker.join().expect("panic was caught inside the thread");
        });
        assert_eq!(cache.stats().entries, 1);
        // The in-flight set is empty again: a third caller hits the cache.
        let (_, hit) = cache.get_or_plan(&engine, &config).unwrap();
        assert!(hit);
    }

    #[test]
    fn waiters_honor_their_own_deadline_while_another_caller_plans() {
        let engine = Engine::new();
        let cache = PlanCache::new(4, None);
        let config = config(6);
        let key = config.hash();
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            let slow = scope.spawn(|| {
                cache
                    .single_flight(&key, None, || {
                        barrier.wait();
                        std::thread::sleep(Duration::from_millis(200));
                        engine.plan(&config)
                    })
                    .unwrap()
            });
            barrier.wait();
            // An already-expired token: the waiter must give up long before
            // the slow planner finishes.
            let token = crate::cancel::CancelToken::with_deadline(Duration::ZERO);
            let started = std::time::Instant::now();
            let result = cache.get_or_plan_with_cancel(&engine, &config, Some(&token));
            assert!(
                matches!(result, Err(EngineError::Cancelled { stage: "plan", .. })),
                "the waiter's own deadline fires while someone else plans"
            );
            assert!(started.elapsed() < Duration::from_millis(150));
            slow.join().expect("the slow planner finishes normally");
        });
    }

    #[test]
    fn concurrent_misses_are_single_flight() {
        let engine = Engine::new();
        let cache = PlanCache::new(4, None);
        let config = config(2);
        // Every concurrent caller gets the *same* Arc: exactly one of them
        // planned, the rest waited for it (or hit the cache afterwards).
        let plans: Vec<Arc<Plan>> = std::thread::scope(|scope| {
            let tasks: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| cache.get_or_plan(&engine, &config).unwrap().0))
                .collect();
            tasks
                .into_iter()
                .map(|task| task.join().expect("worker"))
                .collect()
        });
        for plan in &plans {
            assert!(Arc::ptr_eq(plan, &plans[0]));
        }
        assert_eq!(cache.stats().entries, 1);
    }
}
