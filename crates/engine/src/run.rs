//! The typed Plan → Schedule → Report flow.
//!
//! [`Engine::plan`] runs the *symbolic* half of the pipeline (problem
//! acquisition, fill-reducing ordering, elimination tree, column counts,
//! amalgamation) and returns a [`Plan`] — the reusable analysis object.
//! [`Plan::schedule`] runs the *traversal* half (MinMemory solver plus the
//! out-of-core MinIO simulation) and returns a [`Schedule`];
//! [`Schedule::execute`] optionally adds the numeric multifrontal
//! factorization and folds everything into a serializable [`Report`].
//!
//! A plan caches solver results by name, so sweeping many policies or memory
//! budgets over the same traversal re-runs neither the symbolic analysis nor
//! the solver — the "symbolic analysis reused across numeric runs" shape of
//! production multifrontal codes.

use std::sync::Mutex;
use std::time::Duration;

use minio::{
    divisible_lower_bound, schedule_io_with_stop, MinIoError, OutOfCoreRun, PolicyRegistry,
};
use multifrontal::memory::{instrumented_factorization_with_stop, per_column_model};
use multifrontal::numeric::SymbolicStructure;
use multifrontal::parallel::{factor_columns_with, BudgetLedger};
use multifrontal::{
    solve, CholeskyFactor, ContributionStore, FactorColumn, FactorizationError, FrontArena,
    FrontKernel,
};
use sparsemat::gen::spd_matrix_from_pattern;
use sparsemat::matrixmarket::{read_pattern, MatrixMarketError};
use sparsemat::SparsePattern;
use symbolic::{amalgamate, column_counts, elimination_tree, AssemblyTree, EliminationTree};
use treemem::registry::UnknownName;
use treemem::solver::SolverRegistry;
use treemem::tree::{NodeId, Size};
use treemem::{Traversal, TraversalResult, Tree};

use crate::cancel::CancelToken;
use crate::config::{
    BudgetShare, DistributedConfig, EngineConfig, MemoryBudget, ParallelConfig, ProblemSource,
    SolveConfig, SolveRhs,
};
use crate::parallel::{default_threads, par_map};
use crate::parexec::{execute_parallel, merge_and_assemble, CutPlan};
use crate::report::{
    DistributedReport, NumericReport, ParallelReport, Report, SolveReport, StageTimings,
};

/// Errors raised anywhere in the plan/schedule/execute flow.
#[derive(Debug)]
pub enum EngineError {
    /// A solver or policy name is not registered.
    UnknownName(UnknownName),
    /// The configuration is structurally invalid (zero allowance, NaN
    /// fraction, ...).
    InvalidConfig(String),
    /// The MatrixMarket source could not be parsed.
    MatrixMarket(MatrixMarketError),
    /// The problem source could not be read from disk.
    Io(String),
    /// The out-of-core simulation failed (insufficient memory, invalid
    /// traversal).
    MinIo(MinIoError),
    /// The numeric factorization failed.
    Factorization(FactorizationError),
    /// The numeric stage was requested but the source is a prebuilt tree,
    /// which has no matrix to factorize.
    NumericUnavailable,
    /// An execution-layer invariant broke (e.g. a panic inside a parallel
    /// subtree task).  Never the client's fault.
    Internal(String),
    /// The run was cancelled cooperatively (deadline or explicit
    /// [`CancelToken::cancel`]), noticed by the named stage after `elapsed`
    /// wall-clock time.
    Cancelled {
        /// The pipeline stage that observed the cancellation (`"plan"`,
        /// `"ordering"`, `"symbolic"`, `"solver"`, `"io"`, `"numeric"`,
        /// `"solve"`).
        stage: &'static str,
        /// Wall-clock time from token creation to the observation.
        elapsed: Duration,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownName(err) => write!(fmt, "{err}"),
            EngineError::InvalidConfig(message) => write!(fmt, "invalid config: {message}"),
            EngineError::MatrixMarket(err) => write!(fmt, "MatrixMarket input: {err}"),
            EngineError::Io(message) => write!(fmt, "I/O: {message}"),
            EngineError::MinIo(err) => write!(fmt, "out-of-core simulation: {err}"),
            EngineError::Factorization(err) => write!(fmt, "numeric factorization: {err}"),
            EngineError::NumericUnavailable => {
                write!(fmt, "numeric factorization requires a matrix source")
            }
            EngineError::Internal(message) => write!(fmt, "internal error: {message}"),
            EngineError::Cancelled { stage, elapsed } => write!(
                fmt,
                "cancelled in the {stage} stage after {:.1} ms",
                elapsed.as_secs_f64() * 1e3
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<UnknownName> for EngineError {
    fn from(err: UnknownName) -> Self {
        EngineError::UnknownName(err)
    }
}

impl From<MatrixMarketError> for EngineError {
    fn from(err: MatrixMarketError) -> Self {
        EngineError::MatrixMarket(err)
    }
}

impl From<MinIoError> for EngineError {
    fn from(err: MinIoError) -> Self {
        EngineError::MinIo(err)
    }
}

impl From<FactorizationError> for EngineError {
    fn from(err: FactorizationError) -> Self {
        EngineError::Factorization(err)
    }
}

/// The facade over the whole matrix-to-traversal pipeline: a pair of
/// registries plus the plan/schedule/execute drivers.
///
/// ```
/// use engine::{Engine, EngineConfig};
/// use treemem::gadgets::harpoon;
///
/// let engine = Engine::new();
/// let config = EngineConfig::prebuilt(harpoon(3, 300, 1));
/// let report = engine.run(&config).unwrap();
/// assert_eq!(report.io_volume, 0); // unlimited memory: no eviction needed
/// ```
pub struct Engine {
    solvers: SolverRegistry,
    policies: PolicyRegistry,
}

impl Engine {
    /// An engine with the built-in solver and policy registries.
    pub fn new() -> Self {
        Engine {
            solvers: SolverRegistry::with_builtin(),
            policies: PolicyRegistry::with_builtin(),
        }
    }

    /// An engine with custom registries (downstream crates can register
    /// their own solvers and policies before constructing the engine).
    pub fn with_registries(solvers: SolverRegistry, policies: PolicyRegistry) -> Self {
        Engine { solvers, policies }
    }

    /// The solver registry.
    pub fn solvers(&self) -> &SolverRegistry {
        &self.solvers
    }

    /// The policy registry.
    pub fn policies(&self) -> &PolicyRegistry {
        &self.policies
    }

    /// Validate `config` and run the symbolic half of the pipeline.
    ///
    /// Name resolution happens here, so a typo in the solver or policy name
    /// fails fast with a typed [`UnknownName`] before any real work starts.
    pub fn plan(&self, config: &EngineConfig) -> Result<Plan, EngineError> {
        self.plan_with_cancel(config, None)
    }

    /// [`Engine::plan`] under a [`CancelToken`]: the ordering stage polls the
    /// token every few hundred eliminations, and the stage boundaries check
    /// it too, so a fired token (deadline or explicit cancel) unwinds with
    /// [`EngineError::Cancelled`] instead of finishing the analysis.
    pub fn plan_with_cancel(
        &self,
        config: &EngineConfig,
        cancel: Option<&CancelToken>,
    ) -> Result<Plan, EngineError> {
        self.validate(config)?;
        check(cancel, "plan")?;
        let mut timings = StageTimings::default();
        let (pattern, generate_seconds) = timed(|| acquire_pattern(&config.source))?;
        timings.generate_seconds = generate_seconds;
        match pattern {
            None => Ok(Plan {
                config: config.clone(),
                config_hash: config.hash(),
                symbolic: None,
                tree: PlanTree::Prebuilt,
                timings,
                solved: Mutex::new(Vec::new()),
                bounds: Mutex::new(Vec::new()),
                numeric_model: Mutex::new(None),
            }),
            Some(pattern) => {
                fire_fault("plan:ordering");
                check(cancel, "ordering")?;
                let probe;
                let stop: Option<&dyn Fn() -> bool> = match cancel {
                    Some(token) => {
                        probe = move || token.is_cancelled();
                        Some(&probe)
                    }
                    None => None,
                };
                let (ordered, ordering_seconds) = timed_ok(|| {
                    let perm = config.ordering.order_with_stop(&pattern, stop)?;
                    let permuted = perm.apply(&pattern);
                    let etree = elimination_tree(&permuted);
                    let counts = column_counts(&permuted, &etree);
                    Some((permuted, etree, counts))
                });
                timings.ordering_seconds = ordering_seconds;
                let Some((permuted, etree, counts)) = ordered else {
                    return Err(cancelled(cancel, "ordering"));
                };
                fire_fault("plan:symbolic");
                check(cancel, "symbolic")?;
                let (assembly, symbolic_seconds) =
                    timed_ok(|| amalgamate(&etree, &counts, config.amalgamation));
                timings.symbolic_seconds = symbolic_seconds;
                Ok(Plan {
                    config: config.clone(),
                    config_hash: config.hash(),
                    symbolic: Some(SymbolicData {
                        permuted,
                        etree,
                        counts,
                    }),
                    tree: PlanTree::Assembly(Box::new(assembly)),
                    timings,
                    solved: Mutex::new(Vec::new()),
                    bounds: Mutex::new(Vec::new()),
                    numeric_model: Mutex::new(None),
                })
            }
        }
    }

    /// Convenience: plan, schedule and execute `config` in one call.
    pub fn run(&self, config: &EngineConfig) -> Result<Report, EngineError> {
        self.plan(config)?.schedule(self)?.execute(self)
    }

    /// Fan a batch of configurations over the [`par_map`] worker pool and
    /// return one result per configuration, in input order.  `threads`
    /// defaults to the available parallelism.
    pub fn run_batch(
        &self,
        configs: &[EngineConfig],
        threads: Option<usize>,
    ) -> Vec<Result<Report, EngineError>> {
        let threads = threads.unwrap_or_else(|| default_threads(configs.len()));
        par_map(configs, threads, |_, config| self.run(config))
    }

    fn validate(&self, config: &EngineConfig) -> Result<(), EngineError> {
        self.solvers.get_or_err(&config.solver)?;
        self.policies.get_or_err(&config.policy)?;
        if config.amalgamation == 0 {
            return Err(EngineError::InvalidConfig(
                "the amalgamation allowance must be at least 1".to_string(),
            ));
        }
        if let MemoryBudget::FractionOfPeak(fraction) = config.memory {
            if !fraction.is_finite() {
                return Err(EngineError::InvalidConfig(format!(
                    "memory fraction must be finite, got {fraction}"
                )));
            }
        }
        if config.numeric && matches!(config.source, ProblemSource::Prebuilt { .. }) {
            return Err(EngineError::NumericUnavailable);
        }
        validate_parallel(&config.parallel, config.numeric)?;
        validate_distributed(&config.distributed, config.numeric)?;
        validate_solve(&config.solve, config.numeric)?;
        Ok(())
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

/// Hard cap on requested workers.  Each worker is a real OS thread spawned
/// eagerly by the pool, and configurations arrive over the network: without
/// a cap, one cheap request asking for millions of workers exhausts
/// PIDs/memory for the whole host.  64 comfortably covers the machines this
/// targets; oversubscription beyond the core count buys nothing anyway.
const MAX_PARALLEL_WORKERS: usize = 64;

/// Hard cap on the cut granularity: the scheduler's admission scan is
/// O(pending tasks) per pick, so the queue must stay small; far beyond the
/// worker cap there is no balance benefit either.
const MAX_PARALLEL_TASKS: usize = 4096;

fn validate_parallel(parallel: &ParallelConfig, numeric: bool) -> Result<(), EngineError> {
    if !parallel.enabled() {
        return Ok(());
    }
    if !numeric {
        return Err(EngineError::InvalidConfig(
            "parallel execution requires the numeric stage".to_string(),
        ));
    }
    if parallel.workers > MAX_PARALLEL_WORKERS {
        return Err(EngineError::InvalidConfig(format!(
            "at most {MAX_PARALLEL_WORKERS} parallel workers are supported, got {}",
            parallel.workers
        )));
    }
    if parallel.max_tasks == 0 {
        return Err(EngineError::InvalidConfig(
            "the parallel cut needs at least one task".to_string(),
        ));
    }
    if parallel.max_tasks > MAX_PARALLEL_TASKS {
        return Err(EngineError::InvalidConfig(format!(
            "at most {MAX_PARALLEL_TASKS} parallel tasks are supported, got {}",
            parallel.max_tasks
        )));
    }
    if let BudgetShare::MultipleOfSequentialPeak(multiple) = parallel.budget {
        if !multiple.is_finite() || multiple <= 0.0 {
            return Err(EngineError::InvalidConfig(format!(
                "the parallel budget multiple must be finite and positive, got {multiple}"
            )));
        }
    }
    Ok(())
}

/// Lease-duration floor.  A lease shorter than this expires before a worker
/// can even deserialize the task, so every task would be requeued forever.
const MIN_DISTRIBUTED_LEASE_MS: u64 = 10;

/// Lease-duration ceiling (one hour).  A longer lease means a dead worker
/// wedges its task — and therefore the whole job — for longer than any
/// sane request deadline; configurations arrive over the network.
const MAX_DISTRIBUTED_LEASE_MS: u64 = 3_600_000;

fn validate_distributed(distributed: &DistributedConfig, numeric: bool) -> Result<(), EngineError> {
    if !distributed.enabled() {
        return Ok(());
    }
    if !numeric {
        return Err(EngineError::InvalidConfig(
            "distributed execution requires the numeric stage".to_string(),
        ));
    }
    if distributed.tasks > MAX_PARALLEL_TASKS {
        return Err(EngineError::InvalidConfig(format!(
            "at most {MAX_PARALLEL_TASKS} distributed tasks are supported, got {}",
            distributed.tasks
        )));
    }
    if distributed.lease_ms < MIN_DISTRIBUTED_LEASE_MS
        || distributed.lease_ms > MAX_DISTRIBUTED_LEASE_MS
    {
        return Err(EngineError::InvalidConfig(format!(
            "the distributed lease must be between {MIN_DISTRIBUTED_LEASE_MS} and \
             {MAX_DISTRIBUTED_LEASE_MS} ms, got {}",
            distributed.lease_ms
        )));
    }
    if let BudgetShare::MultipleOfSequentialPeak(multiple) = distributed.budget {
        if !multiple.is_finite() || multiple <= 0.0 {
            return Err(EngineError::InvalidConfig(format!(
                "the distributed budget multiple must be finite and positive, got {multiple}"
            )));
        }
    }
    Ok(())
}

/// Hard cap on the solve batch.  Right-hand sides arrive over the network
/// as explicit vectors or a generated count: without a cap, one request
/// asking for millions of columns allocates gigabytes before any real work
/// starts.
pub const MAX_SOLVE_RHS: usize = 4096;

fn validate_solve(solve: &SolveConfig, numeric: bool) -> Result<(), EngineError> {
    if !solve.enabled {
        return Ok(());
    }
    if !numeric {
        return Err(EngineError::InvalidConfig(
            "the solve stage requires the numeric stage".to_string(),
        ));
    }
    let count = solve.rhs_count();
    if count == 0 {
        return Err(EngineError::InvalidConfig(
            "the solve stage needs at least one right-hand side".to_string(),
        ));
    }
    if count > MAX_SOLVE_RHS {
        return Err(EngineError::InvalidConfig(format!(
            "at most {MAX_SOLVE_RHS} right-hand sides are supported, got {count}"
        )));
    }
    if let SolveRhs::Vectors(vectors) = &solve.rhs {
        for vector in vectors {
            if vector.iter().any(|value| !value.is_finite()) {
                return Err(EngineError::InvalidConfig(
                    "right-hand sides must be finite".to_string(),
                ));
            }
        }
    }
    Ok(())
}

/// A deterministic column-major batch of `count` right-hand sides of
/// dimension `n`, entries in `[-1, 1)` (xorshift64*; independent of any
/// external generator so the solve stage is reproducible from the
/// configuration alone).
fn generated_rhs_batch(n: usize, count: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut batch = Vec::with_capacity(n * count);
    for _ in 0..n * count {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        batch.push((state >> 11) as f64 / (1u64 << 52) as f64 - 1.0);
    }
    batch
}

fn acquire_pattern(source: &ProblemSource) -> Result<Option<SparsePattern>, EngineError> {
    match source {
        ProblemSource::Generated { kind, nodes, seed } => Ok(Some(kind.generate(*nodes, *seed))),
        ProblemSource::MatrixMarket { path } => {
            let file = std::fs::File::open(path)
                .map_err(|e| EngineError::Io(format!("cannot open {path}: {e}")))?;
            Ok(Some(read_pattern(file)?))
        }
        ProblemSource::Prebuilt { .. } => Ok(None),
    }
}

/// Typed cancellation error for `stage` (zero elapsed without a token; that
/// combination never happens in practice because only tokens cancel).
fn cancelled(cancel: Option<&CancelToken>, stage: &'static str) -> EngineError {
    EngineError::Cancelled {
        stage,
        elapsed: cancel.map_or(Duration::ZERO, CancelToken::elapsed),
    }
}

/// Check the token at a stage boundary.
fn check(cancel: Option<&CancelToken>, stage: &'static str) -> Result<(), EngineError> {
    match cancel {
        Some(token) if token.is_cancelled() => Err(cancelled(cancel, stage)),
        _ => Ok(()),
    }
}

/// Hit a [`treemem::faultinject`] point.  The pipeline stages have no
/// drop-able unit of work, so a `Drop` rule here is a no-op; `Panic` and
/// `SleepMs` act inside `fire` itself.
fn fire_fault(point: &str) {
    let _ = treemem::faultinject::fire(point);
}

/// Time a fallible stage with `perfprof::timing` (one run, median == the
/// run), returning the value and the wall-clock seconds.
fn timed<T>(f: impl FnMut() -> Result<T, EngineError>) -> Result<(T, f64), EngineError> {
    let (value, summary) = perfprof::timing::time_runs(1, f);
    Ok((value?, summary.median_seconds))
}

/// Time an infallible stage.
fn timed_ok<T>(f: impl FnMut() -> T) -> (T, f64) {
    let (value, summary) = perfprof::timing::time_runs(1, f);
    (value, summary.median_seconds)
}

struct SymbolicData {
    permuted: SparsePattern,
    etree: EliminationTree,
    counts: Vec<usize>,
}

enum PlanTree {
    Assembly(Box<AssemblyTree>),
    /// The tree lives in `Plan::config`'s source; no second copy is kept.
    Prebuilt,
}

/// The numeric substrate shared by every `execute` on one plan: the SPD
/// matrix, its symbolic factor structure and the paper's per-column model
/// tree, built once and cached.  `pub(crate)` so the parallel execution
/// layer ([`crate::parexec`]) can share it across pool workers via `Arc`.
pub(crate) struct NumericModel {
    pub(crate) matrix: sparsemat::SymmetricCsr,
    pub(crate) structure: SymbolicStructure,
    pub(crate) model: Tree,
    /// Bottom-up factorization orders cached by solver name.
    orders: Mutex<Vec<(String, Vec<NodeId>)>>,
}

impl NumericModel {
    /// Approximate heap footprint in bytes (matrix, symbolic structure,
    /// per-column model tree and the cached factorization orders).
    pub(crate) fn heap_bytes(&self) -> u64 {
        let mut bytes =
            self.matrix.heap_bytes() + self.structure.heap_bytes() + self.model.heap_bytes();
        let orders = self.orders.lock().expect("order cache poisoned");
        for (name, order) in orders.iter() {
            bytes += name.len() as u64;
            bytes += (order.len() * std::mem::size_of::<NodeId>()) as u64;
        }
        bytes
    }

    /// The bottom-up factorization order of `solver` on the per-column
    /// model, computed once per solver and cached.
    fn order_for(&self, engine: &Engine, solver: &str) -> Result<Vec<NodeId>, EngineError> {
        {
            let cache = self.orders.lock().expect("order cache poisoned");
            if let Some((_, order)) = cache.iter().find(|(name, _)| name == solver) {
                return Ok(order.clone());
            }
        }
        let entry = engine.solvers.get_or_err(solver)?;
        if !entry.supports(&self.model) {
            return Err(EngineError::InvalidConfig(format!(
                "solver '{solver}' does not support the {}-node per-column model",
                self.model.len()
            )));
        }
        let order: Vec<NodeId> = entry.solve(&self.model).traversal.reversed().into_order();
        let mut cache = self.orders.lock().expect("order cache poisoned");
        if !cache.iter().any(|(name, _)| name == solver) {
            cache.push((solver.to_string(), order.clone()));
        }
        Ok(order)
    }
}

/// The reusable symbolic-analysis object: the weighted tree plus everything
/// needed to derive schedules (and, for matrix sources, re-amalgamated
/// sibling plans and numeric runs) without repeating the expensive stages.
///
/// ```
/// use engine::{Engine, EngineConfig, MemoryBudget};
/// use treemem::gadgets::harpoon;
///
/// let engine = Engine::new();
/// let plan = engine
///     .plan(&EngineConfig::prebuilt(harpoon(4, 400, 1)))
///     .unwrap();
/// // One plan, many schedules: the solver result is computed once and
/// // cached, only the eviction simulation differs per policy.
/// for policy in ["LSNF", "FirstFit", "GDSF"] {
///     let schedule = plan
///         .schedule_with(
///             &engine,
///             engine::ScheduleSpec::default()
///                 .policy(policy)
///                 .memory(MemoryBudget::FractionOfPeak(0.0)),
///         )
///         .unwrap();
///     assert!(schedule.io_volume() >= schedule.divisible_bound());
/// }
/// ```
pub struct Plan {
    config: EngineConfig,
    config_hash: String,
    symbolic: Option<SymbolicData>,
    tree: PlanTree,
    timings: StageTimings,
    /// Solver results cached by name: `(solver, result, seconds)`.
    solved: Mutex<Vec<(String, TraversalResult, f64)>>,
    /// Divisible lower bounds cached by `(solver, memory budget)`: the bound
    /// depends only on the traversal and the budget, so policy sweeps reuse
    /// it instead of recomputing an identical O(p log p) pass per policy.
    bounds: Mutex<Vec<((String, Size), Size)>>,
    /// The numeric substrate, built lazily by the first `execute` with the
    /// numeric stage enabled and shared by all later ones.
    numeric_model: Mutex<Option<std::sync::Arc<NumericModel>>>,
}

impl Plan {
    /// The configuration this plan was built from.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The FNV-1a hash of the configuration (report provenance).
    pub fn config_hash(&self) -> &str {
        &self.config_hash
    }

    /// The weighted tree the traversal stages run on.
    pub fn tree(&self) -> &Tree {
        match &self.tree {
            PlanTree::Assembly(assembly) => &assembly.tree,
            PlanTree::Prebuilt => match &self.config.source {
                ProblemSource::Prebuilt { tree } => tree,
                _ => unreachable!("PlanTree::Prebuilt implies a prebuilt source"),
            },
        }
    }

    /// The assembly tree with its grouping metadata (`None` for prebuilt
    /// sources).
    pub fn assembly(&self) -> Option<&AssemblyTree> {
        match &self.tree {
            PlanTree::Assembly(assembly) => Some(assembly),
            PlanTree::Prebuilt => None,
        }
    }

    /// The permuted pattern the symbolic analysis ran on (`None` for
    /// prebuilt sources).
    pub fn permuted_pattern(&self) -> Option<&SparsePattern> {
        self.symbolic.as_ref().map(|s| &s.permuted)
    }

    /// Number of unknowns of the underlying matrix (0 for prebuilt trees).
    pub fn matrix_n(&self) -> usize {
        self.symbolic.as_ref().map_or(0, |s| s.permuted.n())
    }

    /// Wall-clock seconds of the planning stages.
    pub fn timings(&self) -> &StageTimings {
        &self.timings
    }

    /// Approximate heap footprint of the plan in bytes: the tree (or
    /// assembly tree with its grouping metadata), the symbolic analysis,
    /// the cached solver traversals, and the numeric substrate if one was
    /// built.  Estimated from array lengths at call time — the serving
    /// caches charge entries by this value at insert, so footprints are
    /// byte-accurate for the dominant CSR/factor arrays while later lazy
    /// fills (a new solver's traversal) are charged on re-insert only.
    pub fn approx_heap_bytes(&self) -> u64 {
        use std::mem::size_of;
        let mut bytes = size_of::<Plan>() as u64 + self.config_hash.len() as u64;
        match &self.tree {
            PlanTree::Assembly(assembly) => {
                bytes += assembly.tree.heap_bytes();
                let groups: usize = assembly
                    .groups
                    .iter()
                    .map(|g| g.len() * size_of::<usize>() + size_of::<Vec<usize>>())
                    .sum();
                bytes += groups as u64;
                bytes += ((assembly.eta.len() + assembly.mu.len()) * size_of::<usize>()) as u64;
            }
            PlanTree::Prebuilt => {
                bytes += self.tree().heap_bytes();
            }
        }
        if let Some(symbolic) = &self.symbolic {
            bytes += symbolic.permuted.heap_bytes();
            bytes += (symbolic.etree.len() * size_of::<Option<usize>>()) as u64;
            bytes += (symbolic.counts.len() * size_of::<usize>()) as u64;
        }
        {
            let solved = self.solved.lock().expect("solver cache poisoned");
            for (name, result, _) in solved.iter() {
                bytes += name.len() as u64;
                bytes += (result.traversal.len() * size_of::<NodeId>()) as u64;
            }
        }
        {
            let numeric = self.numeric_model.lock().expect("numeric model poisoned");
            if let Some(model) = numeric.as_ref() {
                bytes += model.heap_bytes();
            }
        }
        bytes
    }

    /// Derive a sibling plan with a different amalgamation allowance,
    /// reusing the ordering, elimination tree and column counts (only the
    /// amalgamation itself is recomputed).  Errors on prebuilt sources,
    /// which have no symbolic analysis to re-amalgamate.
    pub fn reamalgamate(&self, amalgamation: usize) -> Result<Plan, EngineError> {
        if amalgamation == 0 {
            return Err(EngineError::InvalidConfig(
                "the amalgamation allowance must be at least 1".to_string(),
            ));
        }
        let Some(symbolic) = &self.symbolic else {
            return Err(EngineError::InvalidConfig(
                "prebuilt sources have no symbolic analysis to re-amalgamate".to_string(),
            ));
        };
        let config = self.config.clone().with_amalgamation(amalgamation);
        let (assembly, symbolic_seconds) =
            timed_ok(|| amalgamate(&symbolic.etree, &symbolic.counts, amalgamation));
        let mut timings = self.timings.clone();
        timings.symbolic_seconds = symbolic_seconds;
        Ok(Plan {
            config_hash: config.hash(),
            config,
            symbolic: Some(SymbolicData {
                permuted: symbolic.permuted.clone(),
                etree: symbolic.etree.clone(),
                counts: symbolic.counts.clone(),
            }),
            tree: PlanTree::Assembly(Box::new(assembly)),
            timings,
            solved: Mutex::new(Vec::new()),
            bounds: Mutex::new(Vec::new()),
            numeric_model: Mutex::new(None),
        })
    }

    /// Run (or fetch from the cache) the named solver on the plan's tree.
    pub fn solve(
        &self,
        engine: &Engine,
        solver: &str,
    ) -> Result<(TraversalResult, f64), EngineError> {
        self.solve_with_cancel(engine, solver, None)
    }

    /// [`Plan::solve`] under a [`CancelToken`]; a fired token yields
    /// [`EngineError::Cancelled`] instead of a traversal.
    pub fn solve_with_cancel(
        &self,
        engine: &Engine,
        solver: &str,
        cancel: Option<&CancelToken>,
    ) -> Result<(TraversalResult, f64), EngineError> {
        {
            let cache = self.solved.lock().expect("solver cache poisoned");
            if let Some((_, result, seconds)) = cache.iter().find(|(name, _, _)| name == solver) {
                return Ok((result.clone(), *seconds));
            }
        }
        let entry = engine.solvers.get_or_err(solver)?;
        if !entry.supports(self.tree()) {
            return Err(EngineError::InvalidConfig(format!(
                "solver '{solver}' does not support a tree of {} nodes",
                self.tree().len()
            )));
        }
        fire_fault("schedule:solver");
        let probe;
        let stop: Option<&dyn Fn() -> bool> = match cancel {
            Some(token) => {
                probe = move || token.is_cancelled();
                Some(&probe)
            }
            None => None,
        };
        let (result, seconds) = timed_ok(|| entry.solve_with_stop(self.tree(), stop));
        let Some(result) = result else {
            return Err(cancelled(cancel, "solver"));
        };
        let mut cache = self.solved.lock().expect("solver cache poisoned");
        if !cache.iter().any(|(name, _, _)| name == solver) {
            cache.push((solver.to_string(), result.clone(), seconds));
        }
        Ok((result, seconds))
    }

    /// The divisible lower bound for `solver`'s traversal under `memory`,
    /// computed once per (solver, budget) pair and cached: policy sweeps
    /// share the bound instead of recomputing it per policy.
    fn divisible_bound_cached(
        &self,
        solver: &str,
        solved: &TraversalResult,
        memory: Size,
    ) -> Result<Size, MinIoError> {
        {
            let cache = self.bounds.lock().expect("bound cache poisoned");
            if let Some((_, bound)) = cache
                .iter()
                .find(|((name, budget), _)| name == solver && *budget == memory)
            {
                return Ok(*bound);
            }
        }
        let bound = divisible_lower_bound(self.tree(), &solved.traversal, memory)?;
        let mut cache = self.bounds.lock().expect("bound cache poisoned");
        if !cache
            .iter()
            .any(|((name, budget), _)| name == solver && *budget == memory)
        {
            cache.push(((solver.to_string(), memory), bound));
        }
        Ok(bound)
    }

    /// The numeric substrate (SPD matrix + per-column model), built on first
    /// use and shared by every `execute` on this plan.
    fn numeric_model(&self) -> Result<std::sync::Arc<NumericModel>, EngineError> {
        {
            let cache = self.numeric_model.lock().expect("numeric cache poisoned");
            if let Some(model) = cache.as_ref() {
                return Ok(model.clone());
            }
        }
        let Some(symbolic) = &self.symbolic else {
            return Err(EngineError::NumericUnavailable);
        };
        let seed = match &self.config.source {
            ProblemSource::Generated { seed, .. } => *seed,
            _ => 1,
        };
        let matrix = spd_matrix_from_pattern(&symbolic.permuted, seed);
        let structure = SymbolicStructure::from_pattern(&matrix.pattern());
        let model = per_column_model(&structure);
        let built = std::sync::Arc::new(NumericModel {
            matrix,
            structure,
            model,
            orders: Mutex::new(Vec::new()),
        });
        let mut cache = self.numeric_model.lock().expect("numeric cache poisoned");
        Ok(cache.get_or_insert_with(|| built).clone())
    }

    /// Factor one subtree task of a distributed run: the worker-process side
    /// of [`Schedule::distributed_cut`].  `order` is the task's bottom-up
    /// column order exactly as the coordinator issued it; the worker derives
    /// the same matrix and symbolic structure from the same configuration,
    /// so the produced columns and contribution blocks are bit-identical to
    /// what the single-process executor would compute for those columns.
    ///
    /// `order` arrives over the network, so it is validated (bounds,
    /// duplicates) before touching the kernel; a malformed order yields a
    /// typed error, never a panic.
    pub fn factor_subtree(
        &self,
        order: &[usize],
        cancel: Option<&CancelToken>,
    ) -> Result<SubtreeParts, EngineError> {
        let numeric = self.numeric_model()?;
        let n = numeric.matrix.n();
        let mut seen = vec![false; n];
        for &column in order {
            if column >= n {
                return Err(EngineError::InvalidConfig(format!(
                    "subtree column {column} is out of range for an n = {n} problem"
                )));
            }
            if std::mem::replace(&mut seen[column], true) {
                return Err(EngineError::InvalidConfig(format!(
                    "subtree column {column} appears twice in the task order"
                )));
            }
        }
        let children = numeric.structure.etree.children();
        // Unbounded ledger: the *cluster* budget was enforced when the
        // coordinator admitted this task's claim; locally it only measures.
        let ledger = BudgetLedger::new(None);
        let probe;
        let stop: Option<&dyn Fn() -> bool> = match cancel {
            Some(token) => {
                probe = move || token.is_cancelled();
                Some(&probe)
            }
            None => None,
        };
        let outcome = factor_columns_with(
            &numeric.matrix,
            &numeric.structure,
            &children,
            order,
            ContributionStore::new(),
            &ledger,
            &mut FrontArena::new(),
            FrontKernel::default(),
            stop,
        )
        .map_err(|err| match err {
            FactorizationError::Cancelled => cancelled(cancel, "numeric"),
            other => EngineError::Factorization(other),
        })?;
        Ok(SubtreeParts {
            columns: outcome.columns,
            blocks: outcome.blocks,
            block_entries: outcome.block_entries,
        })
    }

    /// Produce the schedule described by the plan's own configuration.
    pub fn schedule<'p>(&'p self, engine: &Engine) -> Result<Schedule<'p>, EngineError> {
        self.schedule_with(engine, ScheduleSpec::default())
    }

    /// Produce a schedule with per-call overrides, reusing the plan (and the
    /// cached solver traversal) across calls — the engine-level analogue of
    /// a sweep cell.
    pub fn schedule_with<'p>(
        &'p self,
        engine: &Engine,
        spec: ScheduleSpec,
    ) -> Result<Schedule<'p>, EngineError> {
        self.schedule_with_cancel(engine, spec, None)
    }

    /// [`Plan::schedule_with`] under a [`CancelToken`]: the solver checks the
    /// token at its boundaries and the out-of-core simulation polls it every
    /// few thousand steps.
    pub fn schedule_with_cancel<'p>(
        &'p self,
        engine: &Engine,
        spec: ScheduleSpec,
        cancel: Option<&CancelToken>,
    ) -> Result<Schedule<'p>, EngineError> {
        let solver = spec.solver.unwrap_or_else(|| self.config.solver.clone());
        let policy_name = spec.policy.unwrap_or_else(|| self.config.policy.clone());
        let budget_spec = spec.memory.unwrap_or(self.config.memory);
        let parallel = spec.parallel.unwrap_or(self.config.parallel);
        validate_parallel(&parallel, self.config.numeric)?;
        let policy = engine.policies.get_or_err(&policy_name)?;
        let (solved, solver_seconds) = self.solve_with_cancel(engine, &solver, cancel)?;

        fire_fault("schedule:io");
        check(cancel, "io")?;
        let probe;
        let stop: Option<&dyn Fn() -> bool> = match cancel {
            Some(token) => {
                probe = move || token.is_cancelled();
                Some(&probe)
            }
            None => None,
        };
        let tree = self.tree();
        let memory_budget = budget_spec.resolve(tree.max_mem_req(), solved.peak);
        let ((run, divisible_bound), io_seconds) = {
            let (result, summary) = perfprof::timing::time_runs(1, || {
                let run =
                    schedule_io_with_stop(tree, &solved.traversal, memory_budget, policy, stop)?;
                let bound = match &run {
                    Some(_) => {
                        Some(self.divisible_bound_cached(&solver, &solved, memory_budget)?)
                    }
                    None => None,
                };
                Ok::<_, MinIoError>((run, bound))
            });
            (result?, summary.median_seconds)
        };
        let (Some(run), Some(divisible_bound)) = (run, divisible_bound) else {
            return Err(cancelled(cancel, "io"));
        };
        // Provenance: the hash of the *effective* configuration.  When the
        // spec overrides nothing this is the plan's own hash; otherwise the
        // overrides are applied first, so replaying the hashed configuration
        // reproduces exactly this schedule.
        let config_hash = if solver == self.config.solver
            && policy_name == self.config.policy
            && budget_spec == self.config.memory
            && parallel == self.config.parallel
        {
            self.config_hash.clone()
        } else {
            self.config
                .clone()
                .with_solver(&solver)
                .with_policy(&policy_name)
                .with_memory(budget_spec)
                .with_parallel(parallel)
                .hash()
        };
        Ok(Schedule {
            plan: self,
            config_hash,
            solver,
            policy: policy_name,
            parallel,
            traversal: solved.traversal,
            solver_peak: solved.peak,
            budget_spec,
            memory_budget,
            run,
            divisible_bound,
            solver_seconds,
            io_seconds,
        })
    }
}

/// Per-call overrides for [`Plan::schedule_with`]; unset fields fall back to
/// the plan's configuration.
#[derive(Debug, Clone, Default)]
pub struct ScheduleSpec {
    /// Solver-name override.
    pub solver: Option<String>,
    /// Policy-name override.
    pub policy: Option<String>,
    /// Memory-budget override.
    pub memory: Option<MemoryBudget>,
    /// Parallel-execution override (worker-count sweeps share one plan).
    pub parallel: Option<ParallelConfig>,
}

impl ScheduleSpec {
    /// Override the solver.
    pub fn solver(mut self, name: impl Into<String>) -> Self {
        self.solver = Some(name.into());
        self
    }

    /// Override the policy.
    pub fn policy(mut self, name: impl Into<String>) -> Self {
        self.policy = Some(name.into());
        self
    }

    /// Override the memory budget.
    pub fn memory(mut self, memory: MemoryBudget) -> Self {
        self.memory = Some(memory);
        self
    }

    /// Override the parallel execution section.
    pub fn parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = Some(parallel);
        self
    }
}

/// A solver traversal plus its simulated out-of-core execution, borrowed
/// from the [`Plan`] that produced it.
pub struct Schedule<'p> {
    plan: &'p Plan,
    /// Hash of the effective configuration (plan config + spec overrides).
    config_hash: String,
    solver: String,
    policy: String,
    parallel: ParallelConfig,
    traversal: Traversal,
    solver_peak: Size,
    budget_spec: MemoryBudget,
    memory_budget: Size,
    run: OutOfCoreRun,
    divisible_bound: Size,
    solver_seconds: f64,
    io_seconds: f64,
}

impl Schedule<'_> {
    /// The plan this schedule was derived from.
    pub fn plan(&self) -> &Plan {
        self.plan
    }

    /// The FNV-1a hash of the effective configuration (the plan's
    /// configuration with any [`ScheduleSpec`] overrides applied).
    pub fn config_hash(&self) -> &str {
        &self.config_hash
    }

    /// Per-stage wall-clock seconds up to and including this schedule: the
    /// plan's stages plus the solver and I/O stages (`numeric_seconds`
    /// stays 0.0 until [`Schedule::execute`] runs the numeric stage).
    pub fn timings(&self) -> StageTimings {
        let mut timings = self.plan.timings.clone();
        timings.solver_seconds = self.solver_seconds;
        timings.io_seconds = self.io_seconds;
        timings
    }

    /// The solver that produced the traversal.
    pub fn solver(&self) -> &str {
        &self.solver
    }

    /// The eviction policy that produced the I/O schedule.
    pub fn policy(&self) -> &str {
        &self.policy
    }

    /// The traversal (top-down order, root first).
    pub fn traversal(&self) -> &Traversal {
        &self.traversal
    }

    /// Peak memory of the traversal (the MinMemory objective).
    pub fn peak(&self) -> Size {
        self.solver_peak
    }

    /// The resolved absolute memory budget of the simulated execution.
    pub fn memory_budget(&self) -> Size {
        self.memory_budget
    }

    /// The simulated out-of-core run (I/O volume, eviction schedule, peak).
    pub fn io_run(&self) -> &OutOfCoreRun {
        &self.run
    }

    /// Volume written to secondary memory (the MinIO objective).
    pub fn io_volume(&self) -> Size {
        self.run.io_volume
    }

    /// The divisible-relaxation lower bound for this traversal and budget.
    pub fn divisible_bound(&self) -> Size {
        self.divisible_bound
    }

    /// Run the execution stage: fold the simulation into a [`Report`] and,
    /// when the configuration asks for it, run the numeric multifrontal
    /// factorization (solver traversal on the per-column model) and the
    /// batched solve stage, attaching their measurements.
    pub fn execute(&self, engine: &Engine) -> Result<Report, EngineError> {
        Ok(self.execute_with_factor(engine)?.0)
    }

    /// [`Schedule::execute`], additionally handing back the computed factor
    /// as a reusable [`FactorHandle`] (when the numeric stage ran) so
    /// callers — the HTTP server's factor cache above all — can serve later
    /// solves against it without re-running the factorization.
    pub fn execute_with_factor(
        &self,
        engine: &Engine,
    ) -> Result<(Report, Option<FactorHandle>), EngineError> {
        self.execute_with_factor_cancel(engine, None)
    }

    /// [`Schedule::execute_with_factor`] under a [`CancelToken`]: the numeric
    /// column loop (sequential and work-stealing parallel alike) polls the
    /// token every few dozen columns, so a fired deadline stops the
    /// factorization mid-flight with [`EngineError::Cancelled`].
    pub fn execute_with_factor_cancel(
        &self,
        engine: &Engine,
        cancel: Option<&CancelToken>,
    ) -> Result<(Report, Option<FactorHandle>), EngineError> {
        let plan = self.plan;
        let mut timings = self.timings();

        let (numeric, parallel, handle) = if plan.config.numeric {
            fire_fault("execute:numeric");
            check(cancel, "numeric")?;
            let (result, numeric_seconds) = {
                let (result, summary) =
                    perfprof::timing::time_runs(1, || self.run_numeric(engine, cancel));
                (result?, summary.median_seconds)
            };
            timings.numeric_seconds = numeric_seconds;
            let (numeric_report, parallel_report, factor) = result;
            let handle = FactorHandle {
                numeric: plan.numeric_model()?,
                factor,
            };
            (Some(numeric_report), parallel_report, Some(handle))
        } else {
            (None, None, None)
        };

        let solve = if plan.config.solve.enabled {
            check(cancel, "solve")?;
            // Plan-time validation guarantees the numeric stage ran; the
            // error path is defensive.
            let handle = handle.as_ref().ok_or_else(|| {
                EngineError::InvalidConfig("the solve stage requires the numeric stage".to_string())
            })?;
            let (result, summary) =
                perfprof::timing::time_runs(1, || self.run_solve(&plan.config.solve, handle));
            timings.solve_seconds = summary.median_seconds;
            Some(result?)
        } else {
            None
        };

        let report = Report {
            config_hash: self.config_hash.clone(),
            source: plan.config.source_name(),
            ordering: plan.config.ordering.name().to_string(),
            amalgamation: plan.config.amalgamation,
            solver: self.solver.clone(),
            policy: self.policy.clone(),
            nodes: plan.tree().len(),
            matrix_n: plan.matrix_n(),
            solver_peak: self.solver_peak,
            memory_budget: self.memory_budget,
            budget_spec: self.budget_spec,
            io_volume: self.run.io_volume,
            read_volume: self.run.read_volume,
            files_written: self.run.files_written,
            io_peak_memory: self.run.peak_memory,
            divisible_bound: self.divisible_bound,
            traversal: self.traversal.order().to_vec(),
            numeric,
            solve,
            parallel,
            distributed: None,
            timings,
        };
        Ok((report, handle))
    }

    fn run_numeric(
        &self,
        engine: &Engine,
        cancel: Option<&CancelToken>,
    ) -> Result<(NumericReport, Option<ParallelReport>, CholeskyFactor), EngineError> {
        let numeric = self.plan.numeric_model()?;
        let bottom_up = numeric.order_for(engine, &self.solver)?;

        if self.parallel.enabled() {
            let (factor, parallel_report) =
                execute_parallel(&numeric, &bottom_up, &self.parallel, cancel)?;
            let numeric_report = NumericReport {
                measured_peak_entries: parallel_report.measured_peak_entries as usize,
                model_peak_entries: parallel_report.sequential_peak_entries,
                factor_nnz: factor.nnz(),
                solve_error: solve_check(&numeric.matrix, &factor),
            };
            return Ok((numeric_report, Some(parallel_report), factor));
        }

        let probe;
        let stop: Option<&dyn Fn() -> bool> = match cancel {
            Some(token) => {
                probe = move || token.is_cancelled();
                Some(&probe)
            }
            None => None,
        };
        let stats = instrumented_factorization_with_stop(
            &numeric.matrix,
            &numeric.structure,
            Some(&bottom_up),
            stop,
        )
        .map_err(|err| match err {
            FactorizationError::Cancelled => cancelled(cancel, "numeric"),
            other => EngineError::Factorization(other),
        })?;
        let numeric_report = NumericReport {
            measured_peak_entries: stats.measured_peak_entries,
            model_peak_entries: stats.model_peak_entries,
            factor_nnz: stats.factor_nnz,
            solve_error: solve_check(&numeric.matrix, &stats.factor),
        };
        Ok((numeric_report, None, stats.factor))
    }

    /// The solve stage: materialize the configured right-hand sides, solve
    /// the whole batch in one pass over the factor, and (optionally) check
    /// the residual.
    fn run_solve(
        &self,
        config: &SolveConfig,
        handle: &FactorHandle,
    ) -> Result<SolveReport, EngineError> {
        let n = handle.n();
        let mut batch: Vec<f64> = match &config.rhs {
            SolveRhs::Generated { count, seed } => generated_rhs_batch(n, *count, *seed),
            SolveRhs::Vectors(vectors) => {
                for vector in vectors {
                    if vector.len() != n {
                        return Err(EngineError::InvalidConfig(format!(
                            "right-hand side length {} does not match the problem dimension {n}",
                            vector.len()
                        )));
                    }
                }
                let mut batch = Vec::with_capacity(n * vectors.len());
                for vector in vectors {
                    batch.extend_from_slice(vector);
                }
                batch
            }
        };
        let rhs_count = config.rhs_count();
        let original = config.check_residual.then(|| batch.clone());
        handle.solve_batch(&mut batch)?;
        let max_residual = original.map(|rhs| handle.max_residual(&rhs, &batch));
        Ok(SolveReport {
            rhs_count,
            max_residual,
        })
    }

    /// The deterministic distributed cut of this schedule: the subtree task
    /// set a coordinator hands to worker processes.  Depends only on the
    /// plan, the solver's traversal and the `distributed` configuration
    /// section — never on how many workers are attached — which is what
    /// makes the merged factor bit-identical to the single-process
    /// [`Schedule::execute`].
    ///
    /// Errors unless the configuration enables distributed execution
    /// (`distributed.tasks >= 2`) and the numeric stage.
    pub fn distributed_cut(&self, engine: &Engine) -> Result<DistributedCut, EngineError> {
        let distributed = self.plan.config.distributed;
        if !distributed.enabled() {
            return Err(EngineError::InvalidConfig(
                "the distributed cut needs distributed.tasks >= 2".to_string(),
            ));
        }
        let numeric = self.plan.numeric_model()?;
        let order = numeric.order_for(engine, &self.solver)?;
        let cut = CutPlan::compute(&numeric, &order, distributed.tasks, &distributed.budget)?;
        Ok(DistributedCut {
            cut,
            max_tasks: distributed.tasks,
            lease_ms: distributed.lease_ms,
        })
    }

    /// The coordinator's final phase of a distributed run: absorb the
    /// workers' per-task contributions (in task order), eliminate the
    /// above-cut columns sequentially, assemble the factor, run the solve
    /// stage, and fold everything into a [`Report`] whose `distributed`
    /// section carries the cut plus the supplied cluster `runtime`
    /// measurements.
    ///
    /// `contributions[t]` must be the [`SubtreeParts`] of task `t` of `cut`
    /// (the order [`DistributedCut::task_order`] reports) — merging in task
    /// order is what keeps the factor bit-identical to the single-process
    /// path.
    pub fn execute_distributed(
        &self,
        _engine: &Engine,
        cut: DistributedCut,
        contributions: Vec<SubtreeParts>,
        runtime: DistributedRuntime,
        cancel: Option<&CancelToken>,
    ) -> Result<(Report, Option<FactorHandle>), EngineError> {
        let started = std::time::Instant::now();
        let plan = self.plan;
        let mut timings = self.timings();
        if contributions.len() != cut.task_count() {
            return Err(EngineError::Internal(format!(
                "distributed merge expected {} task contributions, got {}",
                cut.task_count(),
                contributions.len()
            )));
        }
        check(cancel, "numeric")?;

        let numeric = plan.numeric_model()?;
        let children = numeric.structure.etree.children();
        let mut merge_blocks = ContributionStore::new();
        let mut parts: Vec<FactorColumn> = Vec::with_capacity(numeric.matrix.n());
        for done in contributions {
            merge_blocks.absorb(done.blocks);
            parts.extend(done.columns);
        }

        // The cluster-level budget gated task *claims* (in the coordinator's
        // job ledger); the merge itself is sequential and local, so it runs
        // on a fresh unbounded ledger that only measures.
        let ledger = BudgetLedger::new(None);
        let (factor, merge_seconds) = merge_and_assemble(
            &numeric,
            &children,
            &cut.cut.merge_order,
            merge_blocks,
            cut.cut.merge_initial,
            &ledger,
            FrontKernel::default(),
            cancel,
            parts,
        )?;
        timings.numeric_seconds = started.elapsed().as_secs_f64();

        let numeric_report = NumericReport {
            // The coordinator physically holds the retained root blocks
            // while the merge fronts come and go on top of them.
            measured_peak_entries: (cut.cut.merge_initial + ledger.measured_peak_entries())
                as usize,
            model_peak_entries: cut.cut.sequential_peak,
            factor_nnz: factor.nnz(),
            solve_error: solve_check(&numeric.matrix, &factor),
        };
        let distributed_report = DistributedReport {
            max_tasks: cut.max_tasks,
            subtree_count: cut.cut.task_orders.len(),
            above_cut_nodes: cut.cut.merge_order.len(),
            sequential_peak_entries: cut.cut.sequential_peak,
            budget_entries: cut.cut.budget_entries,
            max_task_peak_entries: cut.cut.task_peaks.iter().copied().max().unwrap_or(0),
            merge_peak_entries: cut.cut.merge_peak,
            oversized_tasks: cut.cut.oversized_tasks,
            lease_ms: cut.lease_ms,
            workers: runtime.workers,
            tasks_requeued: runtime.tasks_requeued,
            lease_expiries: runtime.lease_expiries,
            contribution_bytes: runtime.contribution_bytes,
            wall_seconds: runtime.claim_wall_seconds + started.elapsed().as_secs_f64(),
            merge_seconds,
            worker_busy_seconds: runtime.worker_busy_seconds,
        };
        let handle = FactorHandle {
            numeric: numeric.clone(),
            factor,
        };

        let solve = if plan.config.solve.enabled {
            check(cancel, "solve")?;
            let (result, summary) =
                perfprof::timing::time_runs(1, || self.run_solve(&plan.config.solve, &handle));
            timings.solve_seconds = summary.median_seconds;
            Some(result?)
        } else {
            None
        };

        let report = Report {
            config_hash: self.config_hash.clone(),
            source: plan.config.source_name(),
            ordering: plan.config.ordering.name().to_string(),
            amalgamation: plan.config.amalgamation,
            solver: self.solver.clone(),
            policy: self.policy.clone(),
            nodes: plan.tree().len(),
            matrix_n: plan.matrix_n(),
            solver_peak: self.solver_peak,
            memory_budget: self.memory_budget,
            budget_spec: self.budget_spec,
            io_volume: self.run.io_volume,
            read_volume: self.run.read_volume,
            files_written: self.run.files_written,
            io_peak_memory: self.run.peak_memory,
            divisible_bound: self.divisible_bound,
            traversal: self.traversal.order().to_vec(),
            numeric: Some(numeric_report),
            solve,
            parallel: None,
            distributed: Some(distributed_report),
            timings,
        };
        Ok((report, Some(handle)))
    }
}

/// The deterministic coordinator-side cut of one scheduled factorization
/// into subtree tasks, obtained via [`Schedule::distributed_cut`].  The
/// per-task column orders are what travels to the workers; the static peaks
/// are what the coordinator's budget ledger gates claims on.
pub struct DistributedCut {
    cut: CutPlan,
    max_tasks: usize,
    lease_ms: u64,
}

impl DistributedCut {
    /// Number of subtree tasks the cut produced.
    pub fn task_count(&self) -> usize {
        self.cut.task_orders.len()
    }

    /// Bottom-up column order of task `task` (what a worker factors).
    pub fn task_order(&self, task: usize) -> &[usize] {
        &self.cut.task_orders[task]
    }

    /// Statically modeled peak live entries of task `task` (the claim-time
    /// budget reservation).
    pub fn task_peak_entries(&self, task: usize) -> u64 {
        self.cut.task_peaks[task]
    }

    /// Entries task `task` retains after finishing (its root contribution
    /// blocks, held until the merge consumes them).
    pub fn task_retained_entries(&self, task: usize) -> u64 {
        self.cut.task_retained[task]
    }

    /// The resolved cluster budget in matrix entries (`None` = unbounded).
    pub fn budget_entries(&self) -> Option<u64> {
        self.cut.budget_entries
    }

    /// Number of columns above the cut (merged by the coordinator).
    pub fn above_cut_nodes(&self) -> usize {
        self.cut.merge_order.len()
    }

    /// The configured lease duration per claimed task, in milliseconds.
    pub fn lease_ms(&self) -> u64 {
        self.lease_ms
    }
}

/// What one worker hands back for one subtree task: the task's finished
/// factor columns, the contribution blocks its roots leave for the merge
/// phase, and the entry count of those blocks (the budget the task retains).
/// Produced by [`Plan::factor_subtree`]; consumed in task order by
/// [`Schedule::execute_distributed`].
#[derive(Debug)]
pub struct SubtreeParts {
    /// Finished factor columns `(column, rows, values)`.
    pub columns: Vec<FactorColumn>,
    /// Root contribution blocks for the merge phase.
    pub blocks: ContributionStore,
    /// Total entries of `blocks`.
    pub block_entries: u64,
}

/// Cluster-dynamics measurements the coordinator's job machinery feeds into
/// [`Schedule::execute_distributed`]; they land in the report's
/// [`DistributedReport`] runtime fields.
#[derive(Debug, Clone, Default)]
pub struct DistributedRuntime {
    /// Distinct worker processes that claimed at least one task.
    pub workers: usize,
    /// Tasks re-issued after a lease expiry.
    pub tasks_requeued: u64,
    /// Leases that expired before a contribution arrived.
    pub lease_expiries: u64,
    /// Serialized contribution bytes received from workers.
    pub contribution_bytes: u64,
    /// Wall-clock seconds of the claim/contribute phase (the merge phase's
    /// own wall-clock is added by `execute_distributed`).
    pub claim_wall_seconds: f64,
    /// Busy seconds per worker process, in first-claim order.
    pub worker_busy_seconds: Vec<f64>,
}

/// A computed Cholesky factor bundled with its problem, detached from the
/// borrowed [`Schedule`]: the unit the HTTP server caches and serves
/// `POST /solve` requests from.  Obtained via
/// [`Schedule::execute_with_factor`].
pub struct FactorHandle {
    numeric: std::sync::Arc<NumericModel>,
    factor: CholeskyFactor,
}

impl FactorHandle {
    /// The problem dimension.
    pub fn n(&self) -> usize {
        self.numeric.matrix.n()
    }

    /// Nonzeros of the factor.
    pub fn factor_nnz(&self) -> usize {
        self.factor.nnz()
    }

    /// The computed factor itself (bit-identity gates compare two handles'
    /// factors directly).
    pub fn factor(&self) -> &CholeskyFactor {
        &self.factor
    }

    /// Approximate heap footprint in bytes: the factor's arrays plus the
    /// shared numeric substrate.  The factor cache charges deposits by this
    /// value, so one 10⁶-node factor weighs as much as it actually is
    /// instead of counting like one small entry.
    pub fn approx_heap_bytes(&self) -> u64 {
        self.factor.heap_bytes() + self.numeric.heap_bytes()
    }

    /// A deterministic column-major batch of `count` generated right-hand
    /// sides (the same generator the solve stage uses for
    /// [`SolveRhs::Generated`]).
    pub fn generated_rhs(&self, count: usize, seed: u64) -> Vec<f64> {
        generated_rhs_batch(self.n(), count, seed)
    }

    /// Solve `A X = B` in place for a column-major batch `B` of one or more
    /// right-hand sides.  The batch length must be a positive multiple of
    /// [`FactorHandle::n`] and at most the engine's right-hand-side cap;
    /// entries must be finite.
    pub fn solve_batch(&self, batch: &mut [f64]) -> Result<(), EngineError> {
        let n = self.n();
        if n == 0 || batch.is_empty() || !batch.len().is_multiple_of(n) {
            return Err(EngineError::InvalidConfig(format!(
                "the batch length {} must be a positive multiple of the problem dimension {n}",
                batch.len()
            )));
        }
        if batch.len() / n > MAX_SOLVE_RHS {
            return Err(EngineError::InvalidConfig(format!(
                "at most {MAX_SOLVE_RHS} right-hand sides are supported, got {}",
                batch.len() / n
            )));
        }
        if batch.iter().any(|value| !value.is_finite()) {
            return Err(EngineError::InvalidConfig(
                "right-hand sides must be finite".to_string(),
            ));
        }
        self.factor.solve_batch(batch);
        Ok(())
    }

    /// Largest max-norm residual `‖A x_j − b_j‖∞` over a solved batch,
    /// given the original right-hand sides.
    pub fn max_residual(&self, rhs: &[f64], solutions: &[f64]) -> f64 {
        let n = self.n();
        assert_eq!(rhs.len(), solutions.len(), "batch lengths must match");
        let mut worst = 0.0f64;
        if n == 0 {
            return worst;
        }
        for (b, x) in rhs.chunks_exact(n).zip(solutions.chunks_exact(n)) {
            let ax = self.numeric.matrix.multiply(x);
            for (lhs, rhs_entry) in ax.iter().zip(b) {
                worst = worst.max((lhs - rhs_entry).abs());
            }
        }
        worst
    }
}

/// Validate a factorization by solving a system with a known answer,
/// returning the max-norm error of the recovered solution.
fn solve_check(matrix: &sparsemat::SymmetricCsr, factor: &CholeskyFactor) -> f64 {
    let n = matrix.n();
    let expected: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
    let rhs = matrix.multiply(&expected);
    let solution = solve(factor, &rhs);
    solution
        .iter()
        .zip(&expected)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use ordering::OrderingMethod;
    use sparsemat::gen::ProblemKind;
    use treemem::gadgets::harpoon;

    #[test]
    fn unknown_names_fail_at_plan_time() {
        let engine = Engine::new();
        let config = EngineConfig::prebuilt(harpoon(3, 300, 1)).with_solver("nope");
        match engine.plan(&config) {
            Err(EngineError::UnknownName(err)) => assert_eq!(err.kind, "solver"),
            other => panic!("expected UnknownName, got {other:?}", other = other.err()),
        }
        let config = EngineConfig::prebuilt(harpoon(3, 300, 1)).with_policy("nope");
        match engine.plan(&config) {
            Err(EngineError::UnknownName(err)) => assert_eq!(err.kind, "policy"),
            other => panic!("expected UnknownName, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn prebuilt_plans_skip_the_symbolic_stages() {
        let engine = Engine::new();
        let tree = harpoon(4, 400, 1);
        let plan = engine.plan(&EngineConfig::prebuilt(tree.clone())).unwrap();
        assert_eq!(plan.tree(), &tree);
        assert!(plan.assembly().is_none());
        assert_eq!(plan.matrix_n(), 0);
        assert!(plan.reamalgamate(4).is_err());
    }

    #[test]
    fn solver_results_are_cached_per_plan() {
        let engine = Engine::new();
        let plan = engine
            .plan(&EngineConfig::prebuilt(harpoon(4, 400, 1)))
            .unwrap();
        let (first, _) = plan.solve(&engine, "minmem").unwrap();
        let (second, _) = plan.solve(&engine, "minmem").unwrap();
        assert_eq!(first, second);
        assert_eq!(plan.solved.lock().unwrap().len(), 1);
        plan.solve(&engine, "postorder").unwrap();
        assert_eq!(plan.solved.lock().unwrap().len(), 2);
    }

    #[test]
    fn reamalgamation_reuses_the_symbolic_analysis() {
        let engine = Engine::new();
        let base = EngineConfig::generated(ProblemKind::Grid2d, 300, 21)
            .with_ordering(OrderingMethod::NestedDissection)
            .with_amalgamation(1);
        let plan = engine.plan(&base).unwrap();
        let relaxed = plan.reamalgamate(16).unwrap();
        assert!(relaxed.tree().len() <= plan.tree().len());
        // The derived plan matches a from-scratch plan bit for bit.
        let direct = engine.plan(&base.clone().with_amalgamation(16)).unwrap();
        assert_eq!(relaxed.tree(), direct.tree());
        assert_eq!(relaxed.config_hash(), direct.config_hash());
    }

    #[test]
    fn overridden_schedules_carry_the_effective_config_hash() {
        let engine = Engine::new();
        let config = EngineConfig::prebuilt(harpoon(4, 400, 1));
        let plan = engine.plan(&config).unwrap();
        // No overrides: the plan's own hash.
        let report = plan.schedule(&engine).unwrap().execute(&engine).unwrap();
        assert_eq!(report.config_hash, config.hash());
        // Overrides: the hash of the configuration with the overrides
        // applied, so the hash identifies what actually ran.
        let spec = ScheduleSpec::default()
            .solver("postorder")
            .policy("GDSF")
            .memory(MemoryBudget::FractionOfPeak(0.0));
        let report = plan
            .schedule_with(&engine, spec)
            .unwrap()
            .execute(&engine)
            .unwrap();
        let effective = config
            .clone()
            .with_solver("postorder")
            .with_policy("GDSF")
            .with_memory(MemoryBudget::FractionOfPeak(0.0));
        assert_eq!(report.config_hash, effective.hash());
        assert_ne!(report.config_hash, config.hash());
    }

    #[test]
    fn hostile_parallel_sections_are_rejected_at_plan_time() {
        let engine = Engine::new();
        let base = EngineConfig::generated(ProblemKind::Grid2d, 100, 1).with_numeric(true);
        // A network request must not be able to spawn unbounded OS threads
        // or an unbounded task queue.
        for parallel in [
            crate::config::ParallelConfig::with_workers(10_000_000),
            crate::config::ParallelConfig::with_workers(MAX_PARALLEL_WORKERS + 1),
            crate::config::ParallelConfig::with_workers(2).with_max_tasks(0),
            crate::config::ParallelConfig::with_workers(2).with_max_tasks(MAX_PARALLEL_TASKS + 1),
            crate::config::ParallelConfig::with_workers(2)
                .with_budget(crate::config::BudgetShare::MultipleOfSequentialPeak(-1.0)),
            crate::config::ParallelConfig::with_workers(2).with_budget(
                crate::config::BudgetShare::MultipleOfSequentialPeak(f64::NAN),
            ),
        ] {
            let config = base.clone().with_parallel(parallel);
            assert!(
                matches!(engine.plan(&config), Err(EngineError::InvalidConfig(_))),
                "{parallel:?} must be rejected"
            );
        }
        // The caps themselves are accepted.
        let config = base
            .clone()
            .with_parallel(crate::config::ParallelConfig::with_workers(
                MAX_PARALLEL_WORKERS,
            ));
        assert!(engine.plan(&config).is_ok());
        // Parallel execution without the numeric stage is rejected too.
        let config = base
            .with_numeric(false)
            .with_parallel(crate::config::ParallelConfig::with_workers(2));
        assert!(matches!(
            engine.plan(&config),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn numeric_stage_requires_a_matrix_source() {
        let engine = Engine::new();
        let config = EngineConfig::prebuilt(harpoon(3, 300, 1)).with_numeric(true);
        assert!(matches!(
            engine.plan(&config),
            Err(EngineError::NumericUnavailable)
        ));
    }

    #[test]
    fn solve_stage_reports_a_green_residual() {
        let engine = Engine::new();
        let config = EngineConfig::generated(ProblemKind::Grid2d, 144, 9)
            .with_numeric(true)
            .with_solve(SolveConfig::generated(3, 42));
        let plan = engine.plan(&config).unwrap();
        let (report, handle) = plan
            .schedule(&engine)
            .unwrap()
            .execute_with_factor(&engine)
            .unwrap();
        let solve = report.solve.expect("solve stage ran");
        assert_eq!(solve.rhs_count, 3);
        let residual = solve.max_residual.expect("residual checked");
        assert!(residual.is_finite() && residual < 1e-8, "{residual}");
        assert!(report.timings.solve_seconds > 0.0);
        let handle = handle.expect("numeric stage hands back a factor");
        assert_eq!(handle.n(), report.matrix_n);
        assert!(handle.factor_nnz() > 0);
    }

    #[test]
    fn batched_solves_match_single_solves() {
        let engine = Engine::new();
        let config = EngineConfig::generated(ProblemKind::Grid3d, 64, 5).with_numeric(true);
        let plan = engine.plan(&config).unwrap();
        let (_, handle) = plan
            .schedule(&engine)
            .unwrap()
            .execute_with_factor(&engine)
            .unwrap();
        let handle = handle.unwrap();
        let n = handle.n();
        let batch = handle.generated_rhs(4, 77);
        let mut solved = batch.clone();
        handle.solve_batch(&mut solved).unwrap();
        for (column, expected) in batch.chunks_exact(n).zip(solved.chunks_exact(n)) {
            let mut single = column.to_vec();
            handle.solve_batch(&mut single).unwrap();
            assert_eq!(single, expected, "batched column must match single solve");
        }
    }

    #[test]
    fn explicit_right_hand_sides_round_through_the_solve_stage() {
        let engine = Engine::new();
        let base = EngineConfig::generated(ProblemKind::Banded, 12, 3).with_numeric(true);
        let vectors = vec![vec![1.0; 12], (0..12).map(|i| i as f64 - 6.0).collect()];
        let config = base
            .clone()
            .with_solve(SolveConfig::vectors(vectors.clone()));
        let plan = engine.plan(&config).unwrap();
        let report = plan.schedule(&engine).unwrap().execute(&engine).unwrap();
        let solve = report.solve.unwrap();
        assert_eq!(solve.rhs_count, 2);
        assert!(solve.max_residual.unwrap() < 1e-10);
        // A wrong-length vector passes plan-time validation (lengths are
        // only known once the matrix exists) but fails at execute time.
        let config = base.with_solve(SolveConfig::vectors(vec![vec![1.0; 5]]));
        let plan = engine.plan(&config).unwrap();
        assert!(matches!(
            plan.schedule(&engine).unwrap().execute(&engine),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn hostile_solve_sections_are_rejected_at_plan_time() {
        let engine = Engine::new();
        let base = EngineConfig::generated(ProblemKind::Grid2d, 100, 1).with_numeric(true);
        for solve in [
            SolveConfig::generated(0, 1),
            SolveConfig::generated(MAX_SOLVE_RHS + 1, 1),
            SolveConfig::vectors(vec![]),
            SolveConfig::vectors(vec![vec![f64::NAN; 4]]),
        ] {
            let config = base.clone().with_solve(solve.clone());
            assert!(
                matches!(engine.plan(&config), Err(EngineError::InvalidConfig(_))),
                "{solve:?} must be rejected"
            );
        }
        // Solving requires the numeric stage.
        let config = base
            .with_numeric(false)
            .with_solve(SolveConfig::generated(1, 1));
        assert!(matches!(
            engine.plan(&config),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn factor_handles_validate_caller_batches() {
        let engine = Engine::new();
        let config = EngineConfig::generated(ProblemKind::Banded, 10, 2).with_numeric(true);
        let plan = engine.plan(&config).unwrap();
        let (_, handle) = plan
            .schedule(&engine)
            .unwrap()
            .execute_with_factor(&engine)
            .unwrap();
        let handle = handle.unwrap();
        for mut bad in [
            vec![],
            vec![1.0; 7],
            vec![f64::INFINITY; 10],
            vec![0.5; 10 * (MAX_SOLVE_RHS + 1)],
        ] {
            assert!(matches!(
                handle.solve_batch(&mut bad),
                Err(EngineError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn an_expired_deadline_cancels_planning_before_work_starts() {
        let engine = Engine::new();
        let config = EngineConfig::generated(ProblemKind::Grid2d, 2500, 1)
            .with_ordering(OrderingMethod::NestedDissection);
        let token = crate::cancel::CancelToken::with_deadline(Duration::ZERO);
        match engine.plan_with_cancel(&config, Some(&token)) {
            Err(EngineError::Cancelled { stage, .. }) => assert_eq!(stage, "plan"),
            other => panic!("expected Cancelled, got {:?}", other.err()),
        }
        // Without a token the same config plans fine.
        assert!(engine.plan(&config).is_ok());
    }

    #[test]
    fn a_fired_token_cancels_the_schedule_and_execute_stages() {
        let engine = Engine::new();
        let config = EngineConfig::generated(ProblemKind::Grid2d, 400, 3).with_numeric(true);
        let plan = engine.plan(&config).unwrap();
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        match plan.schedule_with_cancel(&engine, ScheduleSpec::default(), Some(&token)) {
            Err(EngineError::Cancelled { stage, elapsed }) => {
                assert_eq!(stage, "solver");
                assert!(elapsed >= Duration::ZERO);
            }
            other => panic!("expected Cancelled, got {:?}", other.err()),
        }
        // A schedule produced without a token still cancels at execute time.
        let schedule = plan.schedule(&engine).unwrap();
        match schedule.execute_with_factor_cancel(&engine, Some(&token)) {
            Err(EngineError::Cancelled { stage, .. }) => assert_eq!(stage, "numeric"),
            other => panic!("expected Cancelled, got {:?}", other.err()),
        }
        // The plan is unpoisoned: a token-free execute completes.
        assert!(schedule.execute(&engine).is_ok());
    }

    #[test]
    fn parallel_execution_honors_cancellation() {
        let engine = Engine::new();
        let config = EngineConfig::generated(ProblemKind::Grid2d, 900, 7)
            .with_numeric(true)
            .with_parallel(crate::config::ParallelConfig::with_workers(2));
        let plan = engine.plan(&config).unwrap();
        let schedule = plan.schedule(&engine).unwrap();
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        match schedule.execute_with_factor_cancel(&engine, Some(&token)) {
            Err(EngineError::Cancelled { stage, .. }) => assert_eq!(stage, "numeric"),
            other => panic!("expected Cancelled, got {:?}", other.err()),
        }
        // And the same schedule still completes without a token, with the
        // budget ledger drained (a wedged gate would hang this call).
        assert!(schedule.execute(&engine).is_ok());
    }

    #[test]
    fn distributed_merge_is_bit_identical_to_the_single_process_factor() {
        let engine = Engine::new();
        let base = EngineConfig::generated(ProblemKind::Grid2d, 900, 13)
            .with_ordering(OrderingMethod::NestedDissection)
            .with_numeric(true)
            .with_solve(SolveConfig::generated(2, 5));
        // Reference: the plain single-process execution.
        let reference_plan = engine.plan(&base).unwrap();
        let (reference_report, reference_handle) = reference_plan
            .schedule(&engine)
            .unwrap()
            .execute_with_factor(&engine)
            .unwrap();
        let reference_handle = reference_handle.unwrap();
        // Distributed: cut, factor every task independently (as worker
        // processes would), merge.  Different task counts simulate different
        // cluster shapes; every one must reproduce the factor bit for bit.
        for tasks in [2, 5, 16] {
            let config = base
                .clone()
                .with_distributed(crate::config::DistributedConfig::with_tasks(tasks));
            let plan = engine.plan(&config).unwrap();
            let schedule = plan.schedule(&engine).unwrap();
            let cut = schedule.distributed_cut(&engine).unwrap();
            assert!(cut.task_count() >= 1 && cut.task_count() <= tasks);
            let contributions: Vec<SubtreeParts> = (0..cut.task_count())
                .map(|task| plan.factor_subtree(cut.task_order(task), None).unwrap())
                .collect();
            let (report, handle) = schedule
                .execute_distributed(
                    &engine,
                    cut,
                    contributions,
                    DistributedRuntime::default(),
                    None,
                )
                .unwrap();
            let handle = handle.unwrap();
            assert_eq!(
                handle.factor().columns,
                reference_handle.factor().columns,
                "structure must match at {tasks} tasks"
            );
            assert_eq!(
                handle.factor().values,
                reference_handle.factor().values,
                "values must be bit-identical at {tasks} tasks"
            );
            let distributed = report.distributed.as_ref().expect("distributed section");
            assert_eq!(distributed.max_tasks, tasks);
            // The deterministic outcome (factor size, solve residual) matches
            // the reference run's too.
            assert_eq!(
                report.numeric.as_ref().unwrap().factor_nnz,
                reference_report.numeric.as_ref().unwrap().factor_nnz
            );
            assert_eq!(
                report.solve.as_ref().unwrap().max_residual,
                reference_report.solve.as_ref().unwrap().max_residual,
                "seeded solve through a bit-identical factor is bit-identical"
            );
        }
    }

    #[test]
    fn hostile_subtree_orders_are_rejected_without_panicking() {
        let engine = Engine::new();
        let config = EngineConfig::generated(ProblemKind::Grid2d, 100, 1)
            .with_numeric(true)
            .with_distributed(crate::config::DistributedConfig::with_tasks(2));
        let plan = engine.plan(&config).unwrap();
        // Out-of-range column.
        assert!(matches!(
            plan.factor_subtree(&[0, 1_000_000], None),
            Err(EngineError::InvalidConfig(_))
        ));
        // Duplicate column.
        assert!(matches!(
            plan.factor_subtree(&[3, 3], None),
            Err(EngineError::InvalidConfig(_))
        ));
        // Not bottom-up within the subset: a typed kernel error, no panic.
        assert!(matches!(
            plan.factor_subtree(&[99, 0], None),
            Err(EngineError::Factorization(_))
        ));
    }

    #[test]
    fn hostile_distributed_sections_are_rejected_at_plan_time() {
        let engine = Engine::new();
        let base = EngineConfig::generated(ProblemKind::Grid2d, 100, 1).with_numeric(true);
        for distributed in [
            crate::config::DistributedConfig::with_tasks(MAX_PARALLEL_TASKS + 1),
            crate::config::DistributedConfig::with_tasks(2).with_lease_ms(0),
            crate::config::DistributedConfig::with_tasks(2)
                .with_lease_ms(MAX_DISTRIBUTED_LEASE_MS + 1),
            crate::config::DistributedConfig::with_tasks(2).with_budget(
                crate::config::BudgetShare::MultipleOfSequentialPeak(f64::NAN),
            ),
        ] {
            let config = base.clone().with_distributed(distributed);
            assert!(
                matches!(engine.plan(&config), Err(EngineError::InvalidConfig(_))),
                "{distributed:?} must be rejected"
            );
        }
        // Distributed execution requires the numeric stage.
        let config = base
            .with_numeric(false)
            .with_distributed(crate::config::DistributedConfig::with_tasks(2));
        assert!(matches!(
            engine.plan(&config),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn absolute_budgets_below_memreq_are_reported() {
        let engine = Engine::new();
        let tree = harpoon(3, 300, 1);
        let too_small = tree.max_mem_req() - 1;
        let config = EngineConfig::prebuilt(tree).with_memory(MemoryBudget::Absolute(too_small));
        let plan = engine.plan(&config).unwrap();
        assert!(matches!(
            plan.schedule(&engine),
            Err(EngineError::MinIo(MinIoError::InsufficientMemory { .. }))
        ));
    }
}
