//! The parallel numeric execution layer: proportional-mapping cut, a
//! budget-aware work-stealing scheduler on the [`WorkerPool`], and the
//! sequential merge phase above the cut.
//!
//! The flow mirrors a production parallel multifrontal code:
//!
//! 1. **Cut** — `treemem::partition::proportional_cut` splits the per-column
//!    model tree into at most `max_tasks` work-balanced subtrees; the nodes
//!    above the cut form the sequential merge set.  The cut depends only on
//!    the tree and `max_tasks`, never on the worker count.
//! 2. **Subtree phase** — `workers` pool threads drain a shared task queue,
//!    largest task first.  Admission goes through the
//!    [`BudgetLedger`](multifrontal::BudgetLedger): a worker reserves a
//!    task's statically modeled peak before starting, takes a *smaller*
//!    pending task when the largest would overshoot the shared budget,
//!    blocks when nothing fits while other tasks run, and force-admits the
//!    smallest candidate when the ledger is idle (so an undersized budget
//!    degrades to sequential execution instead of deadlocking).  Every
//!    worker factors its subtrees with a private
//!    [`FrontArena`](multifrontal::FrontArena).
//! 3. **Merge phase** — the caller's thread absorbs the finished tasks'
//!    root contribution blocks and eliminates the above-cut columns in the
//!    chosen traversal's order.
//!
//! The computed factor is bit-identical for every worker count (including
//! the sequential path), because each front assembles its children blocks in
//! tree order regardless of which worker produced them.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use multifrontal::parallel::{
    assemble_factor, factor_columns_with, modeled_peak_entries, BudgetLedger, ReserveSelection,
};
use multifrontal::{
    CholeskyFactor, ContributionStore, FactorColumn, FactorizationError, FrontKernel,
};
use treemem::partition::{default_node_work, proportional_cut};
use treemem::variants::bottom_up_peak;
use treemem::Traversal;

use crate::cancel::CancelToken;
use crate::config::{BudgetShare, ParallelConfig};
use crate::parallel::WorkerPool;
use crate::report::ParallelReport;
use crate::run::{EngineError, NumericModel};

/// The deterministic part of a parallel (or distributed) execution: the cut,
/// the per-piece column orders, and the statically modeled memory peaks the
/// budget ledger gates on.  Depends only on the plan, the traversal order,
/// `max_tasks` and the budget share — never on worker counts or timing — so
/// the in-process executor and the distributed coordinator derive the exact
/// same task set from the same configuration.
pub(crate) struct CutPlan {
    /// Bottom-up column order of each subtree task (largest work first).
    pub task_orders: Vec<Vec<usize>>,
    /// Statically modeled peak live entries of each task.
    pub task_peaks: Vec<u64>,
    /// Entries each task retains (its pending root contribution blocks).
    pub task_retained: Vec<u64>,
    /// Bottom-up column order of the sequential merge phase.
    pub merge_order: Vec<usize>,
    /// Live entries already held when the merge starts (Σ task_retained).
    pub merge_initial: u64,
    /// Statically modeled peak of the merge phase (including the retained
    /// task root blocks).
    pub merge_peak: u64,
    /// Peak of the plain sequential execution along the same order.
    pub sequential_peak: i64,
    /// The resolved budget (`None` = unbounded).
    pub budget_entries: Option<u64>,
    /// Tasks whose static peak alone exceeds the budget (forced admissions).
    pub oversized_tasks: usize,
}

impl CutPlan {
    /// Cut `numeric`'s model tree along `order` into at most `max_tasks`
    /// pieces and resolve `budget` against the sequential peak.
    pub fn compute(
        numeric: &NumericModel,
        order: &[usize],
        max_tasks: usize,
        budget: &BudgetShare,
    ) -> Result<CutPlan, EngineError> {
        let n = numeric.matrix.n();
        let structure = &numeric.structure;
        let counts = structure.column_counts();
        let parents: Vec<Option<usize>> = (0..n).map(|j| structure.etree.parent(j)).collect();
        let children = structure.etree.children();

        // The cut, on the per-column model tree whose `f + n = µ²` is
        // exactly the flop-proportional work estimate.
        let work = default_node_work(&numeric.model);
        let partition = proportional_cut(&numeric.model, max_tasks, &work);
        let (task_orders, merge_order) = partition.split_order(order);

        // Static peaks: exact for this kernel, so reservations are tight.
        let mut task_peaks = Vec::with_capacity(task_orders.len());
        let mut task_retained = Vec::with_capacity(task_orders.len());
        for task_order in &task_orders {
            let (peak, retained) =
                modeled_peak_entries(&counts, &parents, &children, task_order, 0);
            task_peaks.push(peak);
            task_retained.push(retained);
        }
        let merge_initial: u64 = task_retained.iter().sum();
        let (merge_peak, _) =
            modeled_peak_entries(&counts, &parents, &children, &merge_order, merge_initial);

        let sequential_peak = bottom_up_peak(&numeric.model, &Traversal::new(order.to_vec()))
            .map_err(|_| EngineError::Factorization(FactorizationError::InvalidTraversal))?;
        let budget_entries = budget.resolve(sequential_peak.max(0) as u64);
        let oversized_tasks = match budget_entries {
            Some(budget) => task_peaks.iter().filter(|&&peak| peak > budget).count(),
            None => 0,
        };
        Ok(CutPlan {
            task_orders,
            task_peaks,
            task_retained,
            merge_order,
            merge_initial,
            merge_peak,
            sequential_peak,
            budget_entries,
            oversized_tasks,
        })
    }
}

/// What one finished subtree task hands back to the orchestrator.
struct TaskDone {
    columns: Vec<FactorColumn>,
    blocks: ContributionStore,
    seconds: f64,
}

/// Why a subtree task did not finish.  Panics are caught per task: the
/// `WorkerPool` would otherwise swallow the payload, leave the results slot
/// empty and surface only a misleading secondary "task never ran" panic in
/// the orchestrator.
enum TaskFailure {
    Factorization(FactorizationError),
    Panic(String),
}

impl TaskFailure {
    fn into_engine_error(self, task: usize) -> EngineError {
        match self {
            TaskFailure::Factorization(error) => EngineError::Factorization(error),
            TaskFailure::Panic(message) => {
                EngineError::Internal(format!("parallel subtree task {task} panicked: {message}"))
            }
        }
    }
}

/// Render a `catch_unwind` payload (almost always a `&str` or `String`).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Everything the pool workers share.
struct Shared {
    numeric: Arc<NumericModel>,
    children: Vec<Vec<usize>>,
    task_orders: Vec<Vec<usize>>,
    task_peaks: Vec<u64>,
    /// Remaining task ids, in admission-preference order (largest work
    /// first — the same order `partition.roots` uses).
    queue: Mutex<Vec<usize>>,
    ledger: BudgetLedger,
    results: Mutex<Vec<Option<Result<TaskDone, TaskFailure>>>>,
    /// The dense elimination kernel every task (and the merge phase) runs.
    /// One shared choice, per-worker arenas: the kernel never carries state,
    /// so the bit-identical-across-worker-counts guarantee is untouched.
    kernel: FrontKernel,
    /// The caller's cancellation token, polled between tasks and (through
    /// the stop probe) every few dozen columns inside one.
    cancel: Option<CancelToken>,
}

impl Shared {
    fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }
}

/// One pool worker: drain the queue through the budget gate.  Returns this
/// worker's busy seconds.
fn worker_loop(shared: &Shared) -> f64 {
    let mut arena = multifrontal::FrontArena::new();
    let mut busy = 0.0;
    let probe;
    let stop: Option<&dyn Fn() -> bool> = match &shared.cancel {
        Some(token) => {
            probe = move || token.is_cancelled();
            Some(&probe)
        }
        None => None,
    };
    loop {
        let task = loop {
            if shared.is_cancelled() {
                // Wake (and drain) every worker blocked on the budget gate;
                // the orchestrator reports the typed cancellation.
                shared.ledger.cancel();
                return busy;
            }
            let mut queue = shared.queue.lock().expect("parallel task queue poisoned");
            if queue.is_empty() {
                return busy;
            }
            let amounts: Vec<u64> = queue.iter().map(|&t| shared.task_peaks[t]).collect();
            match shared.ledger.select_and_reserve(&amounts) {
                ReserveSelection::Selected(index) => break queue.remove(index),
                ReserveSelection::Blocked(generation) => {
                    drop(queue);
                    if !shared.ledger.wait_past(generation) {
                        // The ledger was cancelled while we were blocked.
                        return busy;
                    }
                }
            }
        };
        // Fault point "parexec:task".  The reservation is already held, so
        // both the injected panic and the injected drop must release it —
        // otherwise the chaos harness would wedge the budget gate instead of
        // testing it.
        match std::panic::catch_unwind(|| treemem::faultinject::fire("parexec:task")) {
            Ok(treemem::faultinject::FaultSignal::Continue) => {}
            Ok(treemem::faultinject::FaultSignal::Drop) => {
                // Injected task loss: leave the result slot empty,
                // exercising the orchestrator's "task never ran" path.
                shared.ledger.finish_task(shared.task_peaks[task], 0);
                continue;
            }
            Err(payload) => {
                shared.ledger.finish_task(shared.task_peaks[task], 0);
                shared.results.lock().expect("parallel results poisoned")[task] =
                    Some(Err(TaskFailure::Panic(panic_message(payload))));
                continue;
            }
        }
        let started = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            factor_columns_with(
                &shared.numeric.matrix,
                &shared.numeric.structure,
                &shared.children,
                &shared.task_orders[task],
                ContributionStore::new(),
                &shared.ledger,
                &mut arena,
                shared.kernel,
                stop,
            )
        }));
        let seconds = started.elapsed().as_secs_f64();
        busy += seconds;
        let stored = match outcome {
            Ok(Ok(done)) => {
                shared
                    .ledger
                    .finish_task(shared.task_peaks[task], done.block_entries);
                Ok(TaskDone {
                    columns: done.columns,
                    blocks: done.blocks,
                    seconds,
                })
            }
            Ok(Err(error)) => {
                shared.ledger.finish_task(shared.task_peaks[task], 0);
                Err(TaskFailure::Factorization(error))
            }
            Err(payload) => {
                // Releasing the reservation keeps the other workers live;
                // the orchestrator turns this into a typed error.
                shared.ledger.finish_task(shared.task_peaks[task], 0);
                Err(TaskFailure::Panic(panic_message(payload)))
            }
        };
        shared.results.lock().expect("parallel results poisoned")[task] = Some(stored);
    }
}

/// Run the numeric factorization of `numeric` along the bottom-up `order`
/// with the parallel execution layer; see the module docs.
pub(crate) fn execute_parallel(
    numeric: &Arc<NumericModel>,
    order: &[usize],
    parallel: &ParallelConfig,
    cancel: Option<&CancelToken>,
) -> Result<(CholeskyFactor, ParallelReport), EngineError> {
    let started = Instant::now();
    let n = numeric.matrix.n();
    let children = numeric.structure.etree.children();
    let cut = CutPlan::compute(numeric, order, parallel.max_tasks, &parallel.budget)?;
    let CutPlan {
        task_orders,
        task_peaks,
        task_retained: _,
        merge_order,
        merge_initial,
        merge_peak,
        sequential_peak,
        budget_entries,
        oversized_tasks,
    } = cut;

    let task_count = task_orders.len();
    let shared = Arc::new(Shared {
        numeric: numeric.clone(),
        children,
        task_orders,
        task_peaks,
        queue: Mutex::new((0..task_count).collect()),
        ledger: BudgetLedger::new(budget_entries),
        results: Mutex::new((0..task_count).map(|_| None).collect()),
        kernel: FrontKernel::default(),
        cancel: cancel.cloned(),
    });

    // Subtree phase: one draining loop per pool worker.
    let workers = parallel.workers.max(1);
    let busy = Arc::new(Mutex::new(vec![0.0f64; workers]));
    let pool = WorkerPool::new(workers);
    for worker in 0..workers {
        let shared = shared.clone();
        let busy = busy.clone();
        pool.submit(move || {
            let seconds = worker_loop(&shared);
            busy.lock().expect("busy ledger poisoned")[worker] = seconds;
        });
    }
    pool.shutdown();

    if let Some(token) = cancel {
        if token.is_cancelled() {
            return Err(EngineError::Cancelled {
                stage: "numeric",
                elapsed: token.elapsed(),
            });
        }
    }

    let shared = Arc::try_unwrap(shared)
        .unwrap_or_else(|_| unreachable!("all workers joined; no clone outlives the pool"));
    let results = shared.results.into_inner().expect("results poisoned");
    let mut task_seconds = Vec::with_capacity(task_count);
    let mut merge_blocks = ContributionStore::new();
    let mut parts: Vec<FactorColumn> = Vec::with_capacity(n);
    for (task, slot) in results.into_iter().enumerate() {
        let done = slot
            .ok_or_else(|| {
                EngineError::Internal(format!("parallel subtree task {task} never ran"))
            })?
            .map_err(|failure| failure.into_engine_error(task))?;
        task_seconds.push(done.seconds);
        merge_blocks.absorb(done.blocks);
        parts.extend(done.columns);
    }

    // Merge phase: sequential, on the caller's thread.
    let (factor, merge_seconds) = merge_and_assemble(
        &shared.numeric,
        &shared.children,
        &merge_order,
        merge_blocks,
        merge_initial,
        &shared.ledger,
        shared.kernel,
        cancel,
        parts,
    )?;

    let wall_seconds = started.elapsed().as_secs_f64();
    let worker_busy_seconds = Arc::try_unwrap(busy)
        .expect("all workers joined")
        .into_inner()
        .expect("busy ledger poisoned");
    let longest_task = task_seconds.iter().copied().fold(0.0f64, f64::max);
    let total_busy: f64 = worker_busy_seconds.iter().sum::<f64>() + merge_seconds;
    let report = ParallelReport {
        max_tasks: parallel.max_tasks,
        subtree_count: task_count,
        above_cut_nodes: merge_order.len(),
        sequential_peak_entries: sequential_peak,
        budget_entries,
        max_task_peak_entries: shared.task_peaks.iter().copied().max().unwrap_or(0),
        merge_peak_entries: merge_peak,
        oversized_tasks,
        workers: parallel.workers,
        measured_peak_entries: shared.ledger.measured_peak_entries(),
        forced_admissions: shared.ledger.forced_admissions(),
        wall_seconds,
        critical_path_seconds: longest_task + merge_seconds,
        merge_seconds,
        task_seconds,
        worker_busy_seconds,
        utilization: if wall_seconds > 0.0 {
            total_busy / (workers as f64 * wall_seconds)
        } else {
            0.0
        },
    };
    Ok((factor, report))
}

/// The sequential merge phase shared by the in-process executor and the
/// distributed coordinator: eliminate the above-cut columns (the finished
/// tasks' root contribution blocks must already sit in `merge_blocks`, in
/// task order), release the `merge_initial` retained entries from `ledger`,
/// and assemble the final factor from `parts` plus the merge columns.
/// Returns the factor and the merge wall-clock seconds.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_and_assemble(
    numeric: &NumericModel,
    children: &[Vec<usize>],
    merge_order: &[usize],
    merge_blocks: ContributionStore,
    merge_initial: u64,
    ledger: &BudgetLedger,
    kernel: FrontKernel,
    cancel: Option<&CancelToken>,
    mut parts: Vec<FactorColumn>,
) -> Result<(CholeskyFactor, f64), EngineError> {
    let merge_started = Instant::now();
    let merge_probe;
    let merge_stop: Option<&dyn Fn() -> bool> = match cancel {
        Some(token) => {
            merge_probe = move || token.is_cancelled();
            Some(&merge_probe)
        }
        None => None,
    };
    let merge_outcome = factor_columns_with(
        &numeric.matrix,
        &numeric.structure,
        children,
        merge_order,
        merge_blocks,
        ledger,
        &mut multifrontal::FrontArena::new(),
        kernel,
        merge_stop,
    )
    .map_err(|err| match err {
        FactorizationError::Cancelled => EngineError::Cancelled {
            stage: "numeric",
            elapsed: cancel.map_or(std::time::Duration::ZERO, CancelToken::elapsed),
        },
        other => EngineError::Factorization(other),
    })?;
    let merge_seconds = merge_started.elapsed().as_secs_f64();
    ledger.release_retained(merge_initial);
    debug_assert!(merge_outcome.blocks.is_empty());
    parts.extend(merge_outcome.columns);
    let factor = assemble_factor(numeric.matrix.n(), parts).map_err(EngineError::Factorization)?;
    Ok((factor, merge_seconds))
}
