//! Cooperative cancellation: a shareable flag + optional deadline that the
//! long-running pipeline stages poll.
//!
//! A [`CancelToken`] is cheap to clone (one `Arc`) and carries two ways to
//! fire: an explicit [`CancelToken::cancel`] call (a client hung up, the
//! server is shutting down) and an optional deadline set at construction
//! (per-request time budgets).  Either one makes [`CancelToken::is_cancelled`]
//! return `true`; the stages check it at bounded intervals — every few
//! hundred eliminations in the ordering, every few thousand simulation steps
//! in the out-of-core scheduler, every few dozen columns in the numeric
//! factorization — so a fired token unwinds the whole
//! plan → schedule → execute flow within a few milliseconds of real work,
//! surfacing as [`EngineError::Cancelled`](crate::EngineError::Cancelled)
//! with the stage that noticed and the elapsed wall-clock time.
//!
//! The lower crates stay dependency-free: they take a plain
//! `Option<&dyn Fn() -> bool>` stop probe, and the engine supplies a closure
//! that polls the token.
//!
//! ```
//! use engine::cancel::CancelToken;
//! use std::time::Duration;
//!
//! let token = CancelToken::with_deadline(Duration::from_millis(50));
//! assert!(!token.is_cancelled());
//! token.cancel();
//! assert!(token.is_cancelled());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The process-wide monotonic anchor behind [`monotonic_millis`], pinned on
/// first use.
static MONOTONIC_ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Milliseconds elapsed since a process-wide monotonic anchor (the first
/// call in this process).
///
/// This is the clock the distributed coordinator stamps task leases with.
/// Leases must never use wall time (`SystemTime`): an NTP step or a
/// suspended laptop would expire every outstanding lease at once — or worse,
/// push expiries into the future so a dead worker's task is never re-issued.
/// `Instant` is monotonic by contract, and anchoring once per process makes
/// the values cheap to store, compare, and subtract as plain `u64`s.
pub fn monotonic_millis() -> u64 {
    let anchor = *MONOTONIC_ANCHOR.get_or_init(Instant::now);
    Instant::now().duration_since(anchor).as_millis() as u64
}

struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    started: Instant,
}

/// A shareable cancellation flag with an optional deadline; see the module
/// docs.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline: it only fires via [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
                started: Instant::now(),
            }),
        }
    }

    /// A token that fires automatically once `budget` has elapsed (and can
    /// still be fired earlier via [`CancelToken::cancel`]).
    pub fn with_deadline(budget: Duration) -> Self {
        let now = Instant::now();
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(now.checked_add(budget).unwrap_or_else(|| {
                    // A budget beyond the representable range is "no
                    // practical deadline"; saturate far in the future.
                    now + Duration::from_secs(60 * 60 * 24 * 365)
                })),
                started: now,
            }),
        }
    }

    /// Fire the token explicitly.  Idempotent; never blocks.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Has the token fired (explicitly or by deadline)?
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Acquire)
            || self
                .inner
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// Wall-clock time since the token was created (what
    /// [`EngineError::Cancelled`](crate::EngineError::Cancelled) reports).
    pub fn elapsed(&self) -> Duration {
        self.inner.started.elapsed()
    }

    /// Time left until the deadline (`None` when the token has no deadline;
    /// zero once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|deadline| deadline.saturating_duration_since(Instant::now()))
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancellation_fires_for_every_clone() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn deadlines_fire_on_their_own() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert!(token.is_cancelled());
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        assert!(token.remaining().unwrap() > Duration::from_secs(3000));
        assert!(CancelToken::new().remaining().is_none());
    }

    #[test]
    fn huge_budgets_saturate_instead_of_panicking() {
        let token = CancelToken::with_deadline(Duration::MAX);
        assert!(!token.is_cancelled());
    }

    #[test]
    fn monotonic_millis_never_goes_backwards() {
        let a = monotonic_millis();
        let b = monotonic_millis();
        std::thread::sleep(Duration::from_millis(5));
        let c = monotonic_millis();
        assert!(b >= a);
        assert!(c >= b + 4, "slept 5ms but clock advanced {}ms", c - b);
    }
}
