//! # engine — the unified facade over the matrix-to-traversal pipeline
//!
//! The paper's end-to-end story — sparse matrix → fill-reducing ordering →
//! elimination/assembly tree → MinMemory traversal → out-of-core MinIO
//! schedule → multifrontal factorization — spans seven crates.  This crate
//! is the single typed entry point over all of them:
//!
//! * [`EngineConfig`] — a JSON-round-trippable description of one run: the
//!   problem source (generator / MatrixMarket file / prebuilt tree), the
//!   ordering method, the amalgamation allowance, the solver and policy
//!   names, and the memory budget;
//! * [`Engine::plan`] — ordering + symbolic analysis + tree construction,
//!   returning a reusable [`Plan`];
//! * [`Plan::schedule`] / [`Plan::schedule_with`] — solver traversal plus
//!   the MinIO eviction schedule, as a [`Schedule`];
//! * [`Schedule::execute`] — simulation results and (optionally) the numeric
//!   multifrontal factorization, folded into a serializable [`Report`] with
//!   per-stage wall-clock times and provenance;
//! * [`Engine::run_batch`] — a whole `Vec<EngineConfig>` fanned over the
//!   [`parallel::par_map`] worker pool for server-style throughput;
//! * [`PlanCache`] — a bounded LRU (+ optional TTL) of `Arc<Plan>`s keyed by
//!   effective-config hash, so repeated configurations skip the
//!   ordering/symbolic stages entirely (the substrate of `crates/server`'s
//!   plan cache).
//!
//! ```
//! use engine::prelude::*;
//!
//! let engine = Engine::new();
//! let config = EngineConfig::generated(ProblemKind::Grid2d, 225, 7)
//!     .with_ordering(OrderingMethod::MinimumDegree)
//!     .with_amalgamation(4)
//!     .with_policy("FirstFit")
//!     .with_memory(MemoryBudget::FractionOfPeak(0.0));
//! let plan = engine.plan(&config).unwrap();      // symbolic analysis, reusable
//! let schedule = plan.schedule(&engine).unwrap(); // traversal + eviction schedule
//! let report = schedule.execute(&engine).unwrap();
//! assert!(report.io_volume >= report.divisible_bound);
//! assert_eq!(report.config_hash, config.hash());
//! ```

pub mod cache;
pub mod cancel;
pub mod config;
pub mod json;
pub mod parallel;
mod parexec;
pub mod report;
pub mod run;

/// Re-exported fault-injection registry (the chaos harness arms it from the
/// serving layer, the lower crates fire the points).
pub use treemem::faultinject;

pub use cache::{
    fingerprint64, Admission, CacheConfig, CacheCore, CacheStats, PlanCache, PlanCacheConfig,
    ServingPolicy, ServingPolicyRegistry, TenantUsage, DEFAULT_TENANT,
};
pub use cancel::{monotonic_millis, CancelToken};
pub use config::{
    BudgetShare, ConfigParseError, DistributedConfig, EngineConfig, MemoryBudget, ParallelConfig,
    ProblemSource, SolveConfig, SolveRhs,
};
pub use report::{
    DistributedReport, NumericReport, ParallelReport, Report, SolveReport, StageTimings,
};
pub use run::{
    DistributedCut, DistributedRuntime, Engine, EngineError, FactorHandle, Plan, Schedule,
    ScheduleSpec, SubtreeParts, MAX_SOLVE_RHS,
};

/// Everything a typical engine user needs in scope.
pub mod prelude {
    pub use crate::cache::{CacheStats, PlanCache, PlanCacheConfig};
    pub use crate::cancel::CancelToken;
    pub use crate::config::{
        BudgetShare, ConfigParseError, DistributedConfig, EngineConfig, MemoryBudget,
        ParallelConfig, ProblemSource, SolveConfig, SolveRhs,
    };
    pub use crate::report::{
        DistributedReport, NumericReport, ParallelReport, Report, SolveReport, StageTimings,
    };
    pub use crate::run::{
        DistributedCut, DistributedRuntime, Engine, EngineError, FactorHandle, Plan, Schedule,
        ScheduleSpec, SubtreeParts,
    };
    pub use minio::PolicyRegistry;
    pub use ordering::OrderingMethod;
    pub use sparsemat::gen::ProblemKind;
    pub use treemem::SolverRegistry;
}
