//! A minimal JSON reader/writer for the engine's configuration and reports.
//!
//! The workspace is fully offline (no `serde`), and the existing reports
//! (`bench::sweep`) hand-roll their JSON output.  The engine needs the other
//! direction too — [`EngineConfig`](crate::EngineConfig) must *round-trip* —
//! so this module provides a small recursive-descent parser and the matching
//! writer helpers.  Only what the engine serialises is supported: objects,
//! arrays, strings, booleans, `null`, and numbers (kept as their source text
//! so 64-bit integers survive the trip without a detour through `f64`).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fmt, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integral number (parsed from the
    /// source text, so the full 64-bit range is exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is an integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The array elements, if the value is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected '{}'", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected '{word}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    if text.is_empty() || text.parse::<f64>().is_err() {
        return Err(err(start, format!("invalid number '{text}'")));
    }
    Ok(Json::Num(text.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are not produced by our writer;
                        // lone surrogates map to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8).
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("input is valid UTF-8");
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

/// Escape a string for embedding in a JSON document (same rules as the
/// report writers elsewhere in the workspace).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc =
            r#"{"a": [1, -2.5, "x\n"], "b": true, "c": null, "d": {"e": 18446744073709551615}}"#;
        let json = Json::parse(doc).unwrap();
        let a = json.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_i64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_str(), Some("x\n"));
        assert_eq!(json.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(json.get("c"), Some(&Json::Null));
        // Full u64 range survives (no f64 round-trip).
        assert_eq!(
            json.get("d").unwrap().get("e").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("01a").is_err());
    }

    #[test]
    fn escaping_round_trips() {
        let text = "a\"b\\c\nd\te\u{1}";
        let doc = format!("\"{}\"", escape(text));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(text));
    }
}
