//! A minimal JSON reader/writer for the engine's configuration and reports.
//!
//! The workspace is fully offline (no `serde`), and the existing reports
//! (`bench::sweep`) hand-roll their JSON output.  The engine needs the other
//! direction too — [`EngineConfig`](crate::EngineConfig) must *round-trip* —
//! so this module provides a small recursive-descent parser and the matching
//! writer helpers.  Only what the engine serialises is supported: objects,
//! arrays, strings, booleans, `null`, and numbers (kept as their source text
//! so 64-bit integers survive the trip without a detour through `f64`).
//!
//! The parser also reads documents from the network (`crates/server`), so it
//! is hardened against hostile input: nesting depth is bounded by
//! [`MAX_DEPTH`], numbers must match the JSON grammar exactly, strings may
//! not contain raw control characters, objects reject duplicate keys, and
//! `\u` surrogate pairs are combined (lone surrogates decode to U+FFFD).
//! Every failure is a [`JsonError`] with a byte offset — never a panic or
//! a stack overflow.

/// Maximum container nesting depth accepted by [`Json::parse`].
///
/// Deeper documents fail with a [`JsonError`] instead of exhausting the call
/// stack — `Json::parse(&"[".repeat(100_000))` is an error, not an abort.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fmt, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integral number (parsed from the
    /// source text, so the full 64-bit range is exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is an integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The array elements, if the value is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected '{}'", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    if depth > MAX_DEPTH {
        return Err(err(*pos, format!("nesting deeper than {MAX_DEPTH} levels")));
    }
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected '{word}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    if !is_valid_number(text.as_bytes()) {
        return Err(err(start, format!("invalid number '{text}'")));
    }
    Ok(Json::Num(text.to_string()))
}

/// Validate the exact JSON number grammar: `-? (0 | [1-9][0-9]*) (\.[0-9]+)?
/// ([eE][+-]?[0-9]+)?`.  Rust's `f64::from_str` is laxer (it accepts `1.`,
/// `.5`, `01`, `inf`, `NaN`), so network input is checked against the
/// grammar instead of a parse attempt.
fn is_valid_number(text: &[u8]) -> bool {
    let mut i = 0;
    if text.get(i) == Some(&b'-') {
        i += 1;
    }
    match text.get(i) {
        Some(b'0') => i += 1,
        Some(b'1'..=b'9') => {
            while matches!(text.get(i), Some(b'0'..=b'9')) {
                i += 1;
            }
        }
        _ => return false,
    }
    if text.get(i) == Some(&b'.') {
        i += 1;
        if !matches!(text.get(i), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(text.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    if matches!(text.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(text.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        if !matches!(text.get(i), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(text.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    i == text.len()
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        *pos += 1;
                        out.push(parse_unicode_escape(bytes, pos)?);
                        continue;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&byte) if byte < 0x20 => {
                // `escape()` never emits a raw control character, so
                // accepting one here would break the parse∘escape bijection
                // (and the JSON grammar forbids it anyway).
                return Err(err(
                    *pos,
                    format!("raw control character 0x{byte:02x} in string"),
                ));
            }
            Some(_) => {
                // Consume the whole run of plain bytes in one step.  The
                // delimiters (quote, backslash, controls) are ASCII, so the
                // run ends on a char boundary and the chunk is valid UTF-8
                // (the input is a &str).  Validating per chunk keeps the
                // parser linear; validating the remainder per character
                // would be quadratic — megabyte hex strings in contribution
                // frames turned exactly that into a multi-hour CPU spin.
                let start = *pos;
                while let Some(&byte) = bytes.get(*pos) {
                    if byte == b'"' || byte == b'\\' || byte < 0x20 {
                        break;
                    }
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..*pos]).expect("input is valid UTF-8");
                out.push_str(chunk);
            }
        }
    }
}

/// Read the four hex digits of a `\u` escape.  `*pos` points at the first
/// digit on entry and just past the last one on success.
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let hex = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
    // Exactly four ASCII hex digits: `from_str_radix` alone would also
    // tolerate a leading `+`, which the JSON grammar does not.
    if !hex.iter().all(u8::is_ascii_hexdigit) {
        return Err(err(*pos, "invalid \\u escape"));
    }
    let text = std::str::from_utf8(hex).expect("hex digits are ASCII");
    let code = u32::from_str_radix(text, 16).expect("validated hex digits");
    *pos += 4;
    Ok(code)
}

/// Decode one `\u` escape, combining a high surrogate with an immediately
/// following `\uDC00..\uDFFF` low surrogate into the supplementary-plane
/// scalar it encodes.  Lone (unpaired) surrogates decode to U+FFFD rather
/// than failing, matching the usual lenient-decode behaviour.  `*pos` points
/// just past the `u` on entry and past the last consumed digit on exit.
fn parse_unicode_escape(bytes: &[u8], pos: &mut usize) -> Result<char, JsonError> {
    let first = parse_hex4(bytes, pos)?;
    if (0xD800..0xDC00).contains(&first) {
        // High surrogate: only a directly adjacent `\uXXXX` low surrogate
        // completes the pair; anything else leaves it lone (→ U+FFFD)
        // without consuming the lookahead.
        if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u') {
            let mut ahead = *pos + 2;
            let second = parse_hex4(bytes, &mut ahead)?;
            if (0xDC00..0xE000).contains(&second) {
                *pos = ahead;
                let scalar = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                return Ok(char::from_u32(scalar).expect("surrogate pair decodes to a scalar"));
            }
        }
        return Ok('\u{fffd}');
    }
    if (0xDC00..0xE000).contains(&first) {
        // Lone low surrogate.
        return Ok('\u{fffd}');
    }
    Ok(char::from_u32(first).expect("non-surrogate BMP code point"))
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields: Vec<(String, Json)> = Vec::new();
    // Seen keys, tracked separately so the duplicate check is O(1) per key —
    // a linear rescan of `fields` would make a many-key object quadratic,
    // a CPU sink on the network-facing parser.
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key_offset = *pos;
        let key = parse_string(bytes, pos)?;
        if !seen.insert(key.clone()) {
            // Duplicate keys are legal JSON but a classic smuggling vector
            // for configuration documents (one parser reads the first, one
            // the last); reject them outright.
            return Err(err(key_offset, format!("duplicate key \"{key}\"")));
        }
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

/// Escape a string for embedding in a JSON document (same rules as the
/// report writers elsewhere in the workspace).
///
/// Every control character — C0 (which the grammar forbids raw), DEL, and
/// the C1 range — is emitted as a `\u00XX` escape, so the output is printable
/// and `parse(escape(s)) == s` for every `s`.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if c.is_control() => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc =
            r#"{"a": [1, -2.5, "x\n"], "b": true, "c": null, "d": {"e": 18446744073709551615}}"#;
        let json = Json::parse(doc).unwrap();
        let a = json.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_i64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_str(), Some("x\n"));
        assert_eq!(json.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(json.get("c"), Some(&Json::Null));
        // Full u64 range survives (no f64 round-trip).
        assert_eq!(
            json.get("d").unwrap().get("e").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("01a").is_err());
    }

    #[test]
    fn escaping_round_trips() {
        let text = "a\"b\\c\nd\te\u{1}\u{7f}\u{9b}";
        let doc = format!("\"{}\"", escape(text));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(text));
    }

    #[test]
    fn deep_nesting_is_an_error_not_an_abort() {
        // Used to overflow the stack and abort the whole process.
        for opener in ["[", "{\"k\":"] {
            let bomb = opener.repeat(100_000);
            let error = Json::parse(&bomb).unwrap_err();
            assert!(error.message.contains("nesting"), "{error}");
        }
        // Depths at the limit still parse.
        let depth = MAX_DEPTH;
        let fine = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(Json::parse(&fine).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(depth + 1), "]".repeat(depth + 1));
        assert!(Json::parse(&too_deep).is_err());
    }

    #[test]
    fn megabyte_strings_parse_in_linear_time() {
        // Contribution frames carry multi-megabyte hex strings.  The string
        // scanner used to re-validate the entire remaining document for
        // every character consumed — quadratic, and a multi-hour CPU spin
        // at this size.  The parse below finishes instantly when the
        // scanner is linear and effectively hangs the suite when it is not.
        let payload = "0123456789abcdef".repeat(128 * 1024); // 2 MiB
        let doc = format!("{{\"values\": \"{payload}\", \"tail\": \"é\\n\"}}");
        let json = Json::parse(&doc).unwrap();
        assert_eq!(json.get("values").unwrap().as_str(), Some(payload.as_str()));
        assert_eq!(json.get("tail").unwrap().as_str(), Some("é\n"));
    }

    #[test]
    fn surrogate_pairs_combine() {
        // U+1F600 GRINNING FACE as an escaped surrogate pair — used to come
        // out as two U+FFFD replacement characters.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("😀")
        );
        // A raw non-BMP char round-trips through escape().
        let doc = format!("\"{}\"", escape("😀"));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some("😀"));
        // Lone surrogates (either half) decode to U+FFFD.
        assert_eq!(
            Json::parse(r#""\ud83dx""#).unwrap().as_str(),
            Some("\u{fffd}x")
        );
        assert_eq!(
            Json::parse(r#""\ude00""#).unwrap().as_str(),
            Some("\u{fffd}")
        );
        // High surrogate followed by a non-surrogate escape keeps both.
        assert_eq!(
            Json::parse(r#""\ud83dA""#).unwrap().as_str(),
            Some("\u{fffd}A")
        );
    }

    #[test]
    fn raw_control_characters_are_rejected() {
        assert!(Json::parse("\"a\nb\"").is_err());
        assert!(Json::parse("\"a\u{0}b\"").is_err());
        // The escaped forms are fine.
        assert_eq!(Json::parse(r#""a\nb""#).unwrap().as_str(), Some("a\nb"));
    }

    #[test]
    fn numbers_follow_the_json_grammar() {
        for bad in [
            "1.", ".5", "01", "+5", "--1", "1e", "1e+", "-", "NaN", "Infinity", "1.e5",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should be rejected");
        }
        for good in ["0", "-0", "10", "2.5e-1", "1e300", "0.3751", "1E+2"] {
            assert!(Json::parse(good).is_ok(), "{good:?} should parse");
        }
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let error = Json::parse(r#"{"a": 1, "a": 2}"#).unwrap_err();
        assert!(error.message.contains("duplicate key"), "{error}");
        assert_eq!(error.offset, 9);
        // Same key at different depths is fine.
        assert!(Json::parse(r#"{"a": {"a": 1}}"#).is_ok());
    }
}
