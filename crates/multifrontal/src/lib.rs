//! # multifrontal — a traversal-driven multifrontal Cholesky factorization
//!
//! The paper's motivation (Section II-A) is the multifrontal method: the
//! factorization of a sparse symmetric positive-definite matrix is organised
//! as a bottom-up traversal of its elimination tree, where every node
//! assembles the *contribution blocks* of its children into a dense *frontal
//! matrix*, eliminates its fully-summed variables and passes its own
//! contribution block to its parent.  The order in which the tree is
//! traversed determines how many contribution blocks are simultaneously live,
//! i.e. the memory footprint that the MinMemory / MinIO algorithms optimise.
//!
//! This crate implements that method end to end:
//!
//! * [`dense`] — the small dense kernels (Cholesky, triangular solves, Schur
//!   complement updates) applied to frontal matrices;
//! * [`numeric`] — the symbolic structure of the factor and the numeric
//!   multifrontal factorization itself, driven by an arbitrary bottom-up
//!   traversal, plus forward/backward substitution;
//! * [`memory`] — an instrumented execution that measures the real peak
//!   memory (in matrix entries) of a traversal and checks it against the
//!   prediction of the abstract tree model of the `treemem` crate, closing
//!   the loop between the paper's model and an actual factorization;
//! * [`parallel`] — the building blocks of the subtree-parallel execution
//!   layer: the shared memory-budget ledger, per-worker frontal-matrix
//!   arenas, and the partial (subtree / merge-phase) factorization.

pub mod dense;
pub mod memory;
pub mod numeric;
pub mod parallel;

pub use dense::{DenseMatrix, FrontArena, FrontKernel, DEFAULT_BLOCK};
pub use memory::{
    instrumented_factorization, instrumented_factorization_with_stop, FactorizationStats,
};
pub use numeric::{
    multifrontal_cholesky, multifrontal_cholesky_with, solve, solve_into, CholeskyFactor,
    ContributionStore, FactorColumn, FactorizationError, SymbolicStructure,
};
pub use parallel::{BudgetLedger, ReserveSelection, SubtreeOutcome};
