//! Small dense kernels used on frontal matrices.
//!
//! The elimination kernel comes in two flavours, selected by
//! [`FrontKernel`]: a scalar column-at-a-time `reference` implementation
//! kept for the parity battery, and the cache-blocked tiled kernel the
//! factorization actually runs (diagonal-block Cholesky, panel triangular
//! solve, register-blocked rank-k Schur update over column-major slices).

/// Panel width of the blocked factorization.  32 columns of f64 keep a
/// panel strip within L1 for the front sizes the multifrontal kernel
/// produces, while the rank-32 trailing update is wide enough to amortise
/// the multiplier loads; powers of two between 16 and 64 perform within a
/// few percent of each other, so there is little to tune.
pub const DEFAULT_BLOCK: usize = 32;

/// Selects the dense elimination kernel used on every frontal matrix.
///
/// `Blocked` is the production kernel; `Reference` is the scalar
/// column-at-a-time implementation pinned to it by the parity battery and
/// used as the baseline of the `exp_kernel` benchmark.  With a single pivot
/// (the multifrontal hot path) and with `block == 1` the blocked kernel is
/// *bit-identical* to the reference; wider blocks on multi-pivot
/// factorizations agree to a few ULPs (the 2-way unrolled Schur update
/// fuses two subtractions into one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontKernel {
    /// Scalar column-at-a-time elimination (baseline).
    Reference,
    /// Cache-blocked tiled elimination with the given panel width
    /// (clamped to at least 1).
    Blocked {
        /// Panel width, in columns.
        block: usize,
    },
}

impl Default for FrontKernel {
    fn default() -> Self {
        FrontKernel::Blocked {
            block: DEFAULT_BLOCK,
        }
    }
}

impl FrontKernel {
    /// Run this kernel's partial Cholesky on `matrix`; see
    /// [`DenseMatrix::partial_cholesky`].
    pub fn apply(&self, matrix: &mut DenseMatrix, pivots: usize) -> Result<(), usize> {
        match *self {
            FrontKernel::Reference => matrix.partial_cholesky_reference(pivots),
            FrontKernel::Blocked { block } => matrix.partial_cholesky_blocked(pivots, block.max(1)),
        }
    }

    /// A short stable name (benchmark labels).
    pub fn name(&self) -> &'static str {
        match self {
            FrontKernel::Reference => "reference",
            FrontKernel::Blocked { .. } => "blocked",
        }
    }
}

/// A dense square matrix in column-major storage.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    values: Vec<f64>,
}

impl DenseMatrix {
    /// A zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            values: vec![0.0; n * n],
        }
    }

    /// A zero matrix of dimension `n` reusing `buffer`'s allocation.
    fn from_buffer(n: usize, mut buffer: Vec<f64>) -> Self {
        buffer.clear();
        buffer.resize(n * n, 0.0);
        DenseMatrix { n, values: buffer }
    }

    /// Surrender the backing storage (for recycling through a
    /// [`FrontArena`]).
    fn into_buffer(self) -> Vec<f64> {
        self.values
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The backing column-major storage (`n²` entries), read-only — the
    /// distributed wire encoder walks it to serialize contribution blocks.
    pub fn column_major(&self) -> &[f64] {
        &self.values
    }

    /// Rebuild a matrix from its column-major storage (the inverse of
    /// [`column_major`](DenseMatrix::column_major)).
    ///
    /// # Panics
    /// Panics unless `values.len() == n²`.
    pub fn from_column_major(n: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), n * n, "column-major payload must be n²");
        DenseMatrix { n, values }
    }

    /// Number of stored entries (`n²`), the memory footprint used by the
    /// instrumentation.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the matrix has dimension zero.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[j * self.n + i]
    }

    /// Set entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        self.values[j * self.n + i] = value;
    }

    /// Add `value` to entry `(i, j)`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, value: f64) {
        self.values[j * self.n + i] += value;
    }

    /// In-place Cholesky factorization of the leading `pivots × pivots`
    /// block, with the elimination applied to the full matrix: on return the
    /// leading block holds its lower Cholesky factor, the off-diagonal block
    /// holds `L₂₁ = A₂₁ L₁₁⁻ᵀ` and the trailing block holds the Schur
    /// complement `A₂₂ − L₂₁ L₂₁ᵀ`.
    ///
    /// Returns an error if a non-positive pivot is met (the matrix is not
    /// positive definite).
    pub fn partial_cholesky(&mut self, pivots: usize) -> Result<(), usize> {
        self.partial_cholesky_blocked(pivots, DEFAULT_BLOCK)
    }

    /// The scalar column-at-a-time kernel: one rank-1 update per pivot,
    /// through bounds-checked element accessors.  Kept as the semantic
    /// baseline the blocked kernel is pinned to (see the parity battery in
    /// this module's tests) and as the `reference` side of `exp_kernel`.
    pub fn partial_cholesky_reference(&mut self, pivots: usize) -> Result<(), usize> {
        assert!(pivots <= self.n);
        for k in 0..pivots {
            let diagonal = self.get(k, k);
            if diagonal <= 0.0 || !diagonal.is_finite() {
                return Err(k);
            }
            let pivot = diagonal.sqrt();
            self.set(k, k, pivot);
            for i in (k + 1)..self.n {
                let value = self.get(i, k) / pivot;
                self.set(i, k, value);
            }
            for j in (k + 1)..self.n {
                let ljk = self.get(j, k);
                if ljk == 0.0 {
                    continue;
                }
                for i in j..self.n {
                    let update = self.get(i, k) * ljk;
                    self.add(i, j, -update);
                }
            }
        }
        Ok(())
    }

    /// The cache-blocked tiled kernel: pivots are processed in panels of
    /// `block` columns — the panel is factored in place (diagonal-block
    /// Cholesky fused with the triangular solve of the rows below it), then
    /// one rank-`block` Schur update hits every trailing column through
    /// column-major slices the autovectorizer can chew on.  Trailing columns
    /// whose whole multiplier panel is zero are skipped outright (the
    /// blocked form of the reference kernel's per-scalar zero test).
    pub fn partial_cholesky_blocked(&mut self, pivots: usize, block: usize) -> Result<(), usize> {
        assert!(pivots <= self.n);
        assert!(block > 0, "panel width must be positive");
        // Packing scratch for the Schur update; `Vec::new` does not
        // allocate, and the single-pivot path never touches it, so the
        // multifrontal hot loop stays allocation-free.
        let mut scratch = Vec::new();
        let mut start = 0;
        while start < pivots {
            let end = (start + block).min(pivots);
            self.factor_panel(start, end)?;
            self.schur_update(start, end, &mut scratch);
            start = end;
        }
        Ok(())
    }

    /// Factor panel columns `kb..ke` in place, in the textbook two-step
    /// shape: the `(ke−kb)²` diagonal block is factored with a scalar
    /// left-looking Cholesky (at most `block²` entries, never the hot
    /// term), and the subdiagonal rows `ke..n` of each panel column — the
    /// `L₂₁ ← A₂₁ L₁₁⁻ᵀ` triangular solve — stream through the 4-deep
    /// pivot-unrolled axpy so the solve runs at the vector units' rate.
    /// Division by the pivot — not multiplication by a reciprocal — and a
    /// width-1 panel degenerating to exactly the reference's pivot check
    /// plus column scaling keep the bit-parity guarantees intact.
    fn factor_panel(&mut self, kb: usize, ke: usize) -> Result<(), usize> {
        let n = self.n;
        for k in kb..ke {
            let (head, tail) = self.values.split_at_mut(k * n);
            // Diagonal-block rows k..ke of column k, scalar left-looking.
            for t in kb..k {
                let col_t = &head[t * n..t * n + n];
                let l_kt = col_t[k];
                if l_kt == 0.0 {
                    continue;
                }
                for (dst, &src) in tail[k..ke].iter_mut().zip(&col_t[k..ke]) {
                    *dst -= src * l_kt;
                }
            }
            let diagonal = tail[k];
            if diagonal <= 0.0 || !diagonal.is_finite() {
                return Err(k);
            }
            // Panel-solve rows ke..n of column k, 4 pivots per pass.
            if ke < n {
                let col_k = &mut tail[ke..n];
                let done = k - kb;
                let mut t = 0;
                while t + 4 <= done {
                    let sources =
                        [0, 1, 2, 3].map(|q| &head[(kb + t + q) * n + ke..(kb + t + q) * n + n]);
                    let l = [0, 1, 2, 3].map(|q| head[(kb + t + q) * n + k]);
                    axpy_quad(col_k, sources, l);
                    t += 4;
                }
                while t < done {
                    let col_t = &head[(kb + t) * n..(kb + t) * n + n];
                    axpy_one(col_k, &col_t[ke..], col_t[k]);
                    t += 1;
                }
            }
            let pivot = diagonal.sqrt();
            tail[k] = pivot;
            for value in &mut tail[k + 1..n] {
                *value /= pivot;
            }
        }
        Ok(())
    }

    /// Rank-`(ke−kb)` Schur update of the trailing columns `ke..n` (rows
    /// `i ≥ j` only — the lower triangle) by the factored panel `kb..ke`.
    ///
    /// Two shapes.  A panel of width 1 — every multifrontal front, which
    /// eliminates a single fully-summed variable — runs one axpy per
    /// trailing column, bit-identical to the reference kernel and with no
    /// scratch traffic.  Wider panels are first *packed*: the panel rows
    /// `ke..n` are copied contiguously into `scratch` (an all-zero panel is
    /// detected during the copy and skipped outright), then the trailing
    /// columns are processed as 4-column destination tiles under a 4-deep
    /// pivot unroll — each inner trip keeps 16 multipliers in registers and
    /// reuses 4 packed source loads across all four destinations, which is
    /// what turns the update from L2-bandwidth-bound into compute-bound.
    fn schur_update(&mut self, kb: usize, ke: usize, scratch: &mut Vec<f64>) {
        let n = self.n;
        let width = ke - kb;
        if width == 0 || ke == n {
            return;
        }
        if width == 1 {
            for j in ke..n {
                let (head, tail) = self.values.split_at_mut(j * n);
                let col_k = &head[kb * n..kb * n + n];
                let ljk = col_k[j];
                if ljk == 0.0 {
                    continue;
                }
                let col_j = &mut tail[j..n];
                for (dst, &src) in col_j.iter_mut().zip(&col_k[j..]) {
                    *dst -= src * ljk;
                }
            }
            return;
        }

        let rows = n - ke;
        scratch.clear();
        let mut any_nonzero = false;
        for t in kb..ke {
            let column = &self.values[t * n + ke..t * n + n];
            any_nonzero = any_nonzero || column.iter().any(|&value| value != 0.0);
            scratch.extend_from_slice(column);
        }
        // A whole-zero panel (fronts whose pivots touch none of the trailing
        // rows) contributes nothing: skip the update outright.
        if !any_nonzero {
            return;
        }

        // Destination tiles of 4 columns: each pass over the packed panel
        // feeds 4 columns, so panel traffic (the L2-bandwidth term) is a
        // quarter of the column-at-a-time figure.
        let mut j = ke;
        while j + 4 <= n {
            self.schur_tile4(kb, ke, j, scratch);
            j += 4;
        }
        // Trailing remainder (≤ 3 columns at the bottom-right corner): one
        // plain axpy per pivot per column.
        while j < n {
            let col_j = &mut self.values[j * n + j..(j + 1) * n];
            for t in 0..width {
                let offset = t * rows + (j - ke);
                axpy_one(col_j, &scratch[offset..t * rows + rows], scratch[offset]);
            }
            j += 1;
        }
    }

    /// One 4-column destination tile of the packed Schur update: columns
    /// `j..j+4`, triangle head rows handled scalar, shared rows `j+4..n`
    /// through the 4×4 register-tiled axpy.
    fn schur_tile4(&mut self, kb: usize, ke: usize, j: usize, panel: &[f64]) {
        let n = self.n;
        let width = ke - kb;
        let rows = n - ke;
        let multiplier = |t: usize, column: usize| panel[t * rows + (column - ke)];
        if (0..width).all(|t| (0..4).all(|dc| multiplier(t, j + dc) == 0.0)) {
            return;
        }

        // Triangle head: entries (i, j+dc) with i < j+4, computed with a
        // scalar pivot loop (at most 10 entries per tile).
        for dc in 0..4 {
            for i in (j + dc)..(j + 4) {
                let mut update = 0.0;
                for t in 0..width {
                    update += panel[t * rows + (i - ke)] * multiplier(t, j + dc);
                }
                self.values[(j + dc) * n + i] -= update;
            }
        }

        // Shared rows j+4..n of all four columns.
        let shared = j + 4;
        if shared == n {
            return;
        }
        let base = shared - ke;
        let (_, rest) = self.values.split_at_mut(j * n);
        let (c0, rest) = rest.split_at_mut(n);
        let (c1, rest) = rest.split_at_mut(n);
        let (c2, rest) = rest.split_at_mut(n);
        let d0 = &mut c0[shared..];
        let d1 = &mut c1[shared..n];
        let d2 = &mut c2[shared..n];
        let d3 = &mut rest[shared..n];
        let mut t = 0;
        while t + 4 <= width {
            let sources =
                [0, 1, 2, 3].map(|q| &panel[(t + q) * rows + base..(t + q) * rows + rows]);
            let l = [0, 1, 2, 3].map(|dc| [0, 1, 2, 3].map(|q| multiplier(t + q, j + dc)));
            axpy_tile4(d0, d1, d2, d3, sources, l);
            t += 4;
        }
        while t < width {
            let source = &panel[t * rows + base..t * rows + rows];
            axpy_one(d0, source, multiplier(t, j));
            axpy_one(d1, source, multiplier(t, j + 1));
            axpy_one(d2, source, multiplier(t, j + 2));
            axpy_one(d3, source, multiplier(t, j + 3));
            t += 1;
        }
    }

    /// Dense matrix-vector product `y = A x` using only the lower triangle
    /// (the matrix is assumed symmetric), written into `y`.
    pub fn symmetric_multiply_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        y.fill(0.0);
        for j in 0..self.n {
            for i in j..self.n {
                let value = self.get(i, j);
                y[i] += value * x[j];
                if i != j {
                    y[j] += value * x[i];
                }
            }
        }
    }

    /// Allocating convenience wrapper over [`symmetric_multiply_into`]
    /// (hot paths pass their own output slice instead).
    ///
    /// [`symmetric_multiply_into`]: DenseMatrix::symmetric_multiply_into
    pub fn symmetric_multiply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.symmetric_multiply_into(x, &mut y);
        y
    }
}

/// The 4×4 register tile of the blocked Schur update:
/// `dsts[dc] −= Σ_q sources[q] · l[dc][q]` for four destination columns
/// sharing the same four source rows.  The four source loads per element
/// are amortised over 32 flops, which keeps the update compute-bound
/// instead of load-port- or L2-bandwidth-bound.
#[inline]
#[allow(clippy::too_many_arguments)]
fn axpy_tile4(
    d0: &mut [f64],
    d1: &mut [f64],
    d2: &mut [f64],
    d3: &mut [f64],
    sources: [&[f64]; 4],
    l: [[f64; 4]; 4],
) {
    // Miri has no cpuid and rejects `#[target_feature]` calls, so it always
    // exercises the portable loop below.
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        // SAFETY: the required CPU features were just detected.
        unsafe { axpy_tile4_fma(d0, d1, d2, d3, sources, l) };
        return;
    }
    let len = d0.len();
    let (s0, s1, s2, s3) = (
        &sources[0][..len],
        &sources[1][..len],
        &sources[2][..len],
        &sources[3][..len],
    );
    let (d1, d2, d3) = (&mut d1[..len], &mut d2[..len], &mut d3[..len]);
    for i in 0..len {
        let (a, b, c, d) = (s0[i], s1[i], s2[i], s3[i]);
        d0[i] -= a * l[0][0] + b * l[0][1] + c * l[0][2] + d * l[0][3];
        d1[i] -= a * l[1][0] + b * l[1][1] + c * l[1][2] + d * l[1][3];
        d2[i] -= a * l[2][0] + b * l[2][1] + c * l[2][2] + d * l[2][3];
        d3[i] -= a * l[3][0] + b * l[3][1] + c * l[3][2] + d * l[3][3];
    }
}

/// [`axpy_tile4`] compiled with AVX2+FMA enabled: the products fuse into
/// chained FNMA ops, doubling the flop rate of the no-FMA baseline.  Only
/// reachable from the multi-pivot (already ULP-bounded, never bit-pinned)
/// Schur path, and only after runtime feature detection.
// SAFETY: `unsafe` only because of `#[target_feature]` — the body is plain
// safe slice code, and the sole caller dispatches here strictly after
// `is_x86_feature_detected!("avx2")` and `("fma")` both report true.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn axpy_tile4_fma(
    d0: &mut [f64],
    d1: &mut [f64],
    d2: &mut [f64],
    d3: &mut [f64],
    sources: [&[f64]; 4],
    l: [[f64; 4]; 4],
) {
    let len = d0.len();
    let (s0, s1, s2, s3) = (
        &sources[0][..len],
        &sources[1][..len],
        &sources[2][..len],
        &sources[3][..len],
    );
    let (d1, d2, d3) = (&mut d1[..len], &mut d2[..len], &mut d3[..len]);
    for i in 0..len {
        let (a, b, c, d) = (s0[i], s1[i], s2[i], s3[i]);
        let mut x0 = d0[i];
        let mut x1 = d1[i];
        let mut x2 = d2[i];
        let mut x3 = d3[i];
        x0 = a.mul_add(-l[0][0], x0);
        x1 = a.mul_add(-l[1][0], x1);
        x2 = a.mul_add(-l[2][0], x2);
        x3 = a.mul_add(-l[3][0], x3);
        x0 = b.mul_add(-l[0][1], x0);
        x1 = b.mul_add(-l[1][1], x1);
        x2 = b.mul_add(-l[2][1], x2);
        x3 = b.mul_add(-l[3][1], x3);
        x0 = c.mul_add(-l[0][2], x0);
        x1 = c.mul_add(-l[1][2], x1);
        x2 = c.mul_add(-l[2][2], x2);
        x3 = c.mul_add(-l[3][2], x3);
        x0 = d.mul_add(-l[0][3], x0);
        x1 = d.mul_add(-l[1][3], x1);
        x2 = d.mul_add(-l[2][3], x2);
        x3 = d.mul_add(-l[3][3], x3);
        d0[i] = x0;
        d1[i] = x1;
        d2[i] = x2;
        d3[i] = x3;
    }
}

/// `dst −= Σ_q sources[q] · l[q]`, 4 pivots at a time — the inner step of
/// the blocked panel triangular solve.
#[inline]
fn axpy_quad(dst: &mut [f64], sources: [&[f64]; 4], l: [f64; 4]) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        // SAFETY: the required CPU features were just detected.
        unsafe { axpy_quad_fma(dst, sources, l) };
        return;
    }
    let len = dst.len();
    let (s0, s1, s2, s3) = (
        &sources[0][..len],
        &sources[1][..len],
        &sources[2][..len],
        &sources[3][..len],
    );
    for i in 0..len {
        dst[i] -= s0[i] * l[0] + s1[i] * l[1] + s2[i] * l[2] + s3[i] * l[3];
    }
}

/// [`axpy_quad`] under AVX2+FMA; see [`axpy_tile4_fma`].
// SAFETY: `unsafe` only because of `#[target_feature]`; the sole caller
// dispatches here strictly after runtime AVX2+FMA detection.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_quad_fma(dst: &mut [f64], sources: [&[f64]; 4], l: [f64; 4]) {
    let len = dst.len();
    let (s0, s1, s2, s3) = (
        &sources[0][..len],
        &sources[1][..len],
        &sources[2][..len],
        &sources[3][..len],
    );
    for i in 0..len {
        let mut x = dst[i];
        x = s0[i].mul_add(-l[0], x);
        x = s1[i].mul_add(-l[1], x);
        x = s2[i].mul_add(-l[2], x);
        x = s3[i].mul_add(-l[3], x);
        dst[i] = x;
    }
}

/// `dst −= source · l` (pivot-loop remainder).
#[inline]
fn axpy_one(dst: &mut [f64], source: &[f64], l: f64) {
    if l == 0.0 {
        return;
    }
    let len = dst.len();
    let source = &source[..len];
    for i in 0..len {
        dst[i] -= source[i] * l;
    }
}

/// A recycling pool of frontal-matrix buffers.
///
/// The multifrontal kernel allocates one dense front per column and one
/// contribution block per non-root column; on large trees that is hundreds
/// of thousands of short-lived heap allocations.  An arena keeps the freed
/// backing buffers and hands them back (zeroed and resized) to later fronts,
/// so a worker's steady state performs no allocation at all.  Arenas are
/// *per worker* — they are plain `&mut` state, never shared — which is what
/// makes the parallel execution layer allocation-quiet without locks.
#[derive(Debug, Default)]
pub struct FrontArena {
    pool: Vec<Vec<f64>>,
    /// Total *capacity* (in `f64` entries) of the pooled buffers.  Pool
    /// retention is bounded by capacity, not buffer count, because
    /// `Vec::resize` never shrinks: a slot that once backed a separator
    /// front keeps that allocation forever, and counting buffers would let
    /// each worker quietly pin `count × largest-front` bytes outside the
    /// budget ledger's accounting.
    pooled_entries: usize,
}

/// Per-arena retention cap: 2²⁰ f64 entries = 8 MiB of spare buffers per
/// worker.  Enough to make the steady state allocation-free on 10⁵-node
/// problems (a handful of live matrices per task), small enough that the
/// arenas stay negligible next to the configured memory budget.
const ARENA_POOL_ENTRY_LIMIT: usize = 1 << 20;

impl FrontArena {
    /// An empty arena.
    pub fn new() -> Self {
        FrontArena::default()
    }

    /// A zeroed `n × n` matrix, reusing a pooled buffer when one is spare.
    ///
    /// Instrumented as fault point `arena:alloc`: a `drop` or `panic` rule
    /// simulates an allocation failure here, unwinding out of the numeric
    /// column loop (caught by the worker pool or the server's panic fence).
    pub(crate) fn take(&mut self, n: usize) -> DenseMatrix {
        if treemem::faultinject::fire("arena:alloc") == treemem::faultinject::FaultSignal::Drop {
            panic!("faultinject: injected allocation failure at arena:alloc ({n}x{n} front)");
        }
        match self.pool.pop() {
            Some(buffer) => {
                self.pooled_entries -= buffer.capacity();
                DenseMatrix::from_buffer(n, buffer)
            }
            None => DenseMatrix::zeros(n),
        }
    }

    /// Return a matrix's backing buffer to the pool (dropped instead when
    /// the retention cap is reached).
    pub(crate) fn recycle(&mut self, matrix: DenseMatrix) {
        let buffer = matrix.into_buffer();
        if self.pooled_entries + buffer.capacity() <= ARENA_POOL_ENTRY_LIMIT {
            self.pooled_entries += buffer.capacity();
            self.pool.push(buffer);
        }
    }

    /// Number of spare buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_3x3() -> DenseMatrix {
        // A = [4 2 2; 2 5 3; 2 3 6] (symmetric positive definite).
        let mut a = DenseMatrix::zeros(3);
        let entries = [
            (0, 0, 4.0),
            (1, 0, 2.0),
            (2, 0, 2.0),
            (1, 1, 5.0),
            (2, 1, 3.0),
            (2, 2, 6.0),
        ];
        for (i, j, v) in entries {
            a.set(i, j, v);
        }
        a
    }

    #[test]
    fn full_cholesky_reconstructs_the_matrix() {
        let a = spd_3x3();
        let mut factor = a.clone();
        factor.partial_cholesky(3).unwrap();
        // Check L Lᵀ == A on the lower triangle.
        for i in 0..3 {
            for j in 0..=i {
                let mut sum = 0.0;
                for k in 0..=j {
                    sum += factor.get(i, k) * factor.get(j, k);
                }
                assert!((sum - a.get(i, j)).abs() < 1e-12, "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn partial_cholesky_produces_the_schur_complement() {
        let a = spd_3x3();
        let mut factor = a.clone();
        factor.partial_cholesky(1).unwrap();
        // Schur complement of the (1,1) block: A22 - a21 a21^T / a11.
        let expected_11 = 5.0 - 2.0 * 2.0 / 4.0;
        let expected_21 = 3.0 - 2.0 * 2.0 / 4.0;
        let expected_22 = 6.0 - 2.0 * 2.0 / 4.0;
        assert!((factor.get(1, 1) - expected_11).abs() < 1e-12);
        assert!((factor.get(2, 1) - expected_21).abs() < 1e-12);
        assert!((factor.get(2, 2) - expected_22).abs() < 1e-12);
    }

    #[test]
    fn non_spd_matrices_are_rejected() {
        let mut a = DenseMatrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(1, 0, 5.0);
        a.set(1, 1, 1.0); // Schur complement is negative.
        assert_eq!(a.partial_cholesky(2), Err(1));
    }

    #[test]
    fn symmetric_multiply_matches_dense_expectation() {
        let a = spd_3x3();
        let y = a.symmetric_multiply(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![8.0, 10.0, 11.0]);
        assert_eq!(a.len(), 9);
    }

    use sparsemat::gen::{spd_matrix_from_pattern, ProblemKind};

    /// ULP distance between two finite doubles (0 when bitwise equal;
    /// `+0.0` and `-0.0` count as equal).
    fn ulp_distance(a: f64, b: f64) -> u64 {
        fn ordered(x: f64) -> i64 {
            let bits = x.to_bits() as i64;
            if bits < 0 {
                i64::MIN - bits
            } else {
                bits
            }
        }
        ordered(a).abs_diff(ordered(b))
    }

    /// A dense SPD matrix with the sparsity and values of `kind`'s
    /// generator (small enough that a full dense Cholesky is cheap).
    fn dense_spd(kind: ProblemKind, seed: u64) -> DenseMatrix {
        let matrix = spd_matrix_from_pattern(&kind.generate(72, seed), seed);
        let rows = matrix.to_dense();
        let n = matrix.n();
        let mut dense = DenseMatrix::zeros(n);
        for (i, row) in rows.iter().enumerate().take(n) {
            for (j, &value) in row.iter().enumerate().take(n) {
                dense.set(i, j, value);
            }
        }
        dense
    }

    /// The parity battery pinning the blocked kernel to the reference one:
    /// every `ProblemKind`, block sizes {1, 4, 8, 32, n}, full and partial
    /// factorizations.  `block == 1` and single-pivot eliminations (the
    /// multifrontal hot path) must be *bit-identical*; wider blocks on full
    /// factorizations must agree within `ULP_BOUND` ULPs per entry.
    #[test]
    fn blocked_kernel_parity_battery() {
        const ULP_BOUND: u64 = 64;
        let mut worst_ulp = 0u64;
        for (index, kind) in ProblemKind::ALL.into_iter().enumerate() {
            let seed = 11 + index as u64;
            let baseline = dense_spd(kind, seed);
            let n = baseline.n();

            let mut reference_full = baseline.clone();
            reference_full.partial_cholesky_reference(n).unwrap();
            let mut reference_partial = baseline.clone();
            reference_partial.partial_cholesky_reference(1).unwrap();

            for block in [1, 4, 8, 32, n] {
                // Single pivot: bit-identical at every panel width.
                let mut partial = baseline.clone();
                partial.partial_cholesky_blocked(1, block).unwrap();
                assert_eq!(
                    partial,
                    reference_partial,
                    "{} partial, block {block}",
                    kind.name()
                );

                let mut full = baseline.clone();
                full.partial_cholesky_blocked(n, block).unwrap();
                if block == 1 {
                    // Panel width 1 replays the reference operation order
                    // exactly.
                    assert_eq!(full, reference_full, "{} full, block 1", kind.name());
                    continue;
                }
                for j in 0..n {
                    for i in j..n {
                        let ulp = ulp_distance(full.get(i, j), reference_full.get(i, j));
                        worst_ulp = worst_ulp.max(ulp);
                        assert!(
                            ulp <= ULP_BOUND,
                            "{} ({i},{j}) block {block}: {} vs {} is {ulp} ULPs",
                            kind.name(),
                            full.get(i, j),
                            reference_full.get(i, j)
                        );
                    }
                }
            }
        }
        // The battery actually exercised the bounded-ULP (non-bitwise) path.
        assert!(worst_ulp > 0, "expected some rounding divergence");
    }

    #[test]
    fn default_kernel_is_blocked_and_applies() {
        assert_eq!(
            FrontKernel::default(),
            FrontKernel::Blocked {
                block: DEFAULT_BLOCK
            }
        );
        assert_eq!(FrontKernel::default().name(), "blocked");
        assert_eq!(FrontKernel::Reference.name(), "reference");
        let mut a = spd_3x3();
        FrontKernel::default().apply(&mut a, 3).unwrap();
        let mut b = spd_3x3();
        FrontKernel::Reference.apply(&mut b, 3).unwrap();
        // 3 columns fit in one panel: same operations, same bits.
        assert_eq!(a, b);
    }

    #[test]
    fn non_spd_matrices_are_rejected_by_both_kernels() {
        let mut indefinite = DenseMatrix::zeros(2);
        indefinite.set(0, 0, 1.0);
        indefinite.set(1, 0, 5.0);
        indefinite.set(1, 1, 1.0);
        let mut blocked = indefinite.clone();
        assert_eq!(blocked.partial_cholesky_blocked(2, 8), Err(1));
        assert_eq!(indefinite.partial_cholesky_reference(2), Err(1));
    }

    #[test]
    fn symmetric_multiply_into_is_allocation_free_and_matches() {
        let a = spd_3x3();
        let mut y = vec![9.0; 3];
        a.symmetric_multiply_into(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![8.0, 10.0, 11.0]);
        assert_eq!(a.symmetric_multiply(&[1.0, 1.0, 1.0]), y);
    }

    #[test]
    fn column_major_round_trips() {
        let a = spd_3x3();
        let rebuilt = DenseMatrix::from_column_major(3, a.column_major().to_vec());
        assert_eq!(rebuilt, a);
    }

    #[test]
    #[should_panic(expected = "column-major payload must be n²")]
    fn from_column_major_rejects_wrong_lengths() {
        let _ = DenseMatrix::from_column_major(3, vec![0.0; 8]);
    }

    #[test]
    fn arena_recycles_buffers_zeroed() {
        let mut arena = FrontArena::new();
        let mut first = arena.take(3);
        first.set(1, 2, 7.0);
        arena.recycle(first);
        assert_eq!(arena.pooled(), 1);
        // The recycled buffer comes back zeroed, at any dimension.
        let second = arena.take(5);
        assert_eq!(arena.pooled(), 0);
        assert_eq!(second, DenseMatrix::zeros(5));
        let third = arena.take(2);
        assert_eq!(third, DenseMatrix::zeros(2));
    }

    #[test]
    fn arena_retention_is_bounded_by_capacity_not_count() {
        let mut arena = FrontArena::new();
        // A buffer above the retention cap is dropped, not pooled.
        arena.recycle(DenseMatrix::zeros(1100)); // 1100² > 2²⁰ entries
        assert_eq!(arena.pooled(), 0);
        // Many small buffers pool until the capacity cap bites.
        for _ in 0..6 {
            arena.recycle(DenseMatrix::zeros(512)); // 2¹⁸ entries each
        }
        assert_eq!(arena.pooled(), 4); // 4 × 2¹⁸ = the 2²⁰ cap
    }
}
