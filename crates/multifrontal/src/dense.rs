//! Small dense kernels used on frontal matrices.

/// A dense square matrix in column-major storage.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    values: Vec<f64>,
}

impl DenseMatrix {
    /// A zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            values: vec![0.0; n * n],
        }
    }

    /// A zero matrix of dimension `n` reusing `buffer`'s allocation.
    fn from_buffer(n: usize, mut buffer: Vec<f64>) -> Self {
        buffer.clear();
        buffer.resize(n * n, 0.0);
        DenseMatrix { n, values: buffer }
    }

    /// Surrender the backing storage (for recycling through a
    /// [`FrontArena`]).
    fn into_buffer(self) -> Vec<f64> {
        self.values
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries (`n²`), the memory footprint used by the
    /// instrumentation.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the matrix has dimension zero.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[j * self.n + i]
    }

    /// Set entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        self.values[j * self.n + i] = value;
    }

    /// Add `value` to entry `(i, j)`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, value: f64) {
        self.values[j * self.n + i] += value;
    }

    /// In-place Cholesky factorization of the leading `pivots × pivots`
    /// block, with the elimination applied to the full matrix: on return the
    /// leading block holds its lower Cholesky factor, the off-diagonal block
    /// holds `L₂₁ = A₂₁ L₁₁⁻ᵀ` and the trailing block holds the Schur
    /// complement `A₂₂ − L₂₁ L₂₁ᵀ`.
    ///
    /// Returns an error if a non-positive pivot is met (the matrix is not
    /// positive definite).
    pub fn partial_cholesky(&mut self, pivots: usize) -> Result<(), usize> {
        assert!(pivots <= self.n);
        for k in 0..pivots {
            let diagonal = self.get(k, k);
            if diagonal <= 0.0 || !diagonal.is_finite() {
                return Err(k);
            }
            let pivot = diagonal.sqrt();
            self.set(k, k, pivot);
            for i in (k + 1)..self.n {
                let value = self.get(i, k) / pivot;
                self.set(i, k, value);
            }
            for j in (k + 1)..self.n {
                let ljk = self.get(j, k);
                if ljk == 0.0 {
                    continue;
                }
                for i in j..self.n {
                    let update = self.get(i, k) * ljk;
                    self.add(i, j, -update);
                }
            }
        }
        Ok(())
    }

    /// Dense matrix-vector product `y = A x` using only the lower triangle
    /// (the matrix is assumed symmetric).
    pub fn symmetric_multiply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for j in 0..self.n {
            for i in j..self.n {
                let value = self.get(i, j);
                y[i] += value * x[j];
                if i != j {
                    y[j] += value * x[i];
                }
            }
        }
        y
    }
}

/// A recycling pool of frontal-matrix buffers.
///
/// The multifrontal kernel allocates one dense front per column and one
/// contribution block per non-root column; on large trees that is hundreds
/// of thousands of short-lived heap allocations.  An arena keeps the freed
/// backing buffers and hands them back (zeroed and resized) to later fronts,
/// so a worker's steady state performs no allocation at all.  Arenas are
/// *per worker* — they are plain `&mut` state, never shared — which is what
/// makes the parallel execution layer allocation-quiet without locks.
#[derive(Debug, Default)]
pub struct FrontArena {
    pool: Vec<Vec<f64>>,
    /// Total *capacity* (in `f64` entries) of the pooled buffers.  Pool
    /// retention is bounded by capacity, not buffer count, because
    /// `Vec::resize` never shrinks: a slot that once backed a separator
    /// front keeps that allocation forever, and counting buffers would let
    /// each worker quietly pin `count × largest-front` bytes outside the
    /// budget ledger's accounting.
    pooled_entries: usize,
}

/// Per-arena retention cap: 2²⁰ f64 entries = 8 MiB of spare buffers per
/// worker.  Enough to make the steady state allocation-free on 10⁵-node
/// problems (a handful of live matrices per task), small enough that the
/// arenas stay negligible next to the configured memory budget.
const ARENA_POOL_ENTRY_LIMIT: usize = 1 << 20;

impl FrontArena {
    /// An empty arena.
    pub fn new() -> Self {
        FrontArena::default()
    }

    /// A zeroed `n × n` matrix, reusing a pooled buffer when one is spare.
    pub(crate) fn take(&mut self, n: usize) -> DenseMatrix {
        match self.pool.pop() {
            Some(buffer) => {
                self.pooled_entries -= buffer.capacity();
                DenseMatrix::from_buffer(n, buffer)
            }
            None => DenseMatrix::zeros(n),
        }
    }

    /// Return a matrix's backing buffer to the pool (dropped instead when
    /// the retention cap is reached).
    pub(crate) fn recycle(&mut self, matrix: DenseMatrix) {
        let buffer = matrix.into_buffer();
        if self.pooled_entries + buffer.capacity() <= ARENA_POOL_ENTRY_LIMIT {
            self.pooled_entries += buffer.capacity();
            self.pool.push(buffer);
        }
    }

    /// Number of spare buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_3x3() -> DenseMatrix {
        // A = [4 2 2; 2 5 3; 2 3 6] (symmetric positive definite).
        let mut a = DenseMatrix::zeros(3);
        let entries = [
            (0, 0, 4.0),
            (1, 0, 2.0),
            (2, 0, 2.0),
            (1, 1, 5.0),
            (2, 1, 3.0),
            (2, 2, 6.0),
        ];
        for (i, j, v) in entries {
            a.set(i, j, v);
        }
        a
    }

    #[test]
    fn full_cholesky_reconstructs_the_matrix() {
        let a = spd_3x3();
        let mut factor = a.clone();
        factor.partial_cholesky(3).unwrap();
        // Check L Lᵀ == A on the lower triangle.
        for i in 0..3 {
            for j in 0..=i {
                let mut sum = 0.0;
                for k in 0..=j {
                    sum += factor.get(i, k) * factor.get(j, k);
                }
                assert!((sum - a.get(i, j)).abs() < 1e-12, "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn partial_cholesky_produces_the_schur_complement() {
        let a = spd_3x3();
        let mut factor = a.clone();
        factor.partial_cholesky(1).unwrap();
        // Schur complement of the (1,1) block: A22 - a21 a21^T / a11.
        let expected_11 = 5.0 - 2.0 * 2.0 / 4.0;
        let expected_21 = 3.0 - 2.0 * 2.0 / 4.0;
        let expected_22 = 6.0 - 2.0 * 2.0 / 4.0;
        assert!((factor.get(1, 1) - expected_11).abs() < 1e-12);
        assert!((factor.get(2, 1) - expected_21).abs() < 1e-12);
        assert!((factor.get(2, 2) - expected_22).abs() < 1e-12);
    }

    #[test]
    fn non_spd_matrices_are_rejected() {
        let mut a = DenseMatrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(1, 0, 5.0);
        a.set(1, 1, 1.0); // Schur complement is negative.
        assert_eq!(a.partial_cholesky(2), Err(1));
    }

    #[test]
    fn symmetric_multiply_matches_dense_expectation() {
        let a = spd_3x3();
        let y = a.symmetric_multiply(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![8.0, 10.0, 11.0]);
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn arena_recycles_buffers_zeroed() {
        let mut arena = FrontArena::new();
        let mut first = arena.take(3);
        first.set(1, 2, 7.0);
        arena.recycle(first);
        assert_eq!(arena.pooled(), 1);
        // The recycled buffer comes back zeroed, at any dimension.
        let second = arena.take(5);
        assert_eq!(arena.pooled(), 0);
        assert_eq!(second, DenseMatrix::zeros(5));
        let third = arena.take(2);
        assert_eq!(third, DenseMatrix::zeros(2));
    }

    #[test]
    fn arena_retention_is_bounded_by_capacity_not_count() {
        let mut arena = FrontArena::new();
        // A buffer above the retention cap is dropped, not pooled.
        arena.recycle(DenseMatrix::zeros(1100)); // 1100² > 2²⁰ entries
        assert_eq!(arena.pooled(), 0);
        // Many small buffers pool until the capacity cap bites.
        for _ in 0..6 {
            arena.recycle(DenseMatrix::zeros(512)); // 2¹⁸ entries each
        }
        assert_eq!(arena.pooled(), 4); // 4 × 2¹⁸ = the 2²⁰ cap
    }
}
