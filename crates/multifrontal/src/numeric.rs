//! Symbolic structure and numeric multifrontal Cholesky factorization.

use std::collections::HashMap;

use sparsemat::{SparsePattern, SymmetricCsr};
use symbolic::etree::{elimination_tree, etree_postorder, EliminationTree};

use crate::dense::{DenseMatrix, FrontArena, FrontKernel};

/// The row structure of every column of the Cholesky factor, together with
/// the elimination tree it was derived from.
#[derive(Debug, Clone)]
pub struct SymbolicStructure {
    /// Row indices (diagonal included, sorted increasingly) of every column
    /// of `L`.
    pub columns: Vec<Vec<usize>>,
    /// The elimination tree of the (permuted) matrix.
    pub etree: EliminationTree,
}

impl SymbolicStructure {
    /// Approximate heap footprint in bytes (column row-index lists, `Vec`
    /// headers and the elimination tree's parent array).
    pub fn heap_bytes(&self) -> u64 {
        use std::mem::size_of;
        let payload: usize = self
            .columns
            .iter()
            .map(|c| c.len() * size_of::<usize>())
            .sum();
        let headers = self.columns.len() * size_of::<Vec<usize>>();
        let etree = self.etree.len() * size_of::<Option<usize>>();
        (payload + headers + etree) as u64
    }

    /// Compute the full symbolic structure of the factor of `pattern`
    /// (already permuted into elimination order).
    pub fn from_pattern(pattern: &SparsePattern) -> Self {
        let n = pattern.n();
        let etree = elimination_tree(pattern);
        let children = etree.children();
        let mut columns: Vec<Vec<usize>> = vec![Vec::new(); n];
        for j in 0..n {
            // Original entries below the diagonal plus the children
            // structures (minus the child index itself).
            let mut rows: Vec<usize> = vec![j];
            rows.extend(pattern.neighbors(j).iter().copied().filter(|&i| i > j));
            for &c in &children[j] {
                rows.extend(columns[c].iter().copied().filter(|&i| i > j));
            }
            rows.sort_unstable();
            rows.dedup();
            columns[j] = rows;
        }
        SymbolicStructure { columns, etree }
    }

    /// Number of columns.
    pub fn n(&self) -> usize {
        self.columns.len()
    }

    /// Column counts (number of nonzeros per column of `L`).
    pub fn column_counts(&self) -> Vec<usize> {
        self.columns.iter().map(Vec::len).collect()
    }

    /// Total number of nonzeros of `L`.
    pub fn factor_nnz(&self) -> usize {
        self.columns.iter().map(Vec::len).sum()
    }
}

/// Columns eliminated between two stop-probe checks in
/// [`eliminate_columns`].  Fronts take microseconds to tens of
/// microseconds each, so this bounds the cancellation latency to a few
/// milliseconds while keeping the probe off the per-column fast path.
pub(crate) const STOP_CHECK_COLUMNS: usize = 64;

/// Errors of the numeric factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactorizationError {
    /// A non-positive pivot was met at the given column: the matrix is not
    /// positive definite (or is numerically singular).
    NotPositiveDefinite { column: usize },
    /// The supplied traversal is not a valid bottom-up ordering.
    InvalidTraversal,
    /// A cooperative stop probe fired mid-factorization; all partial work
    /// was discarded.
    Cancelled,
}

impl std::fmt::Display for FactorizationError {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorizationError::NotPositiveDefinite { column } => {
                write!(fmt, "matrix is not positive definite (column {column})")
            }
            FactorizationError::InvalidTraversal => write!(fmt, "invalid bottom-up traversal"),
            FactorizationError::Cancelled => write!(fmt, "factorization cancelled"),
        }
    }
}

impl std::error::Error for FactorizationError {}

/// The numeric Cholesky factor in column-compressed form.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    /// Row indices of every column (diagonal first).
    pub columns: Vec<Vec<usize>>,
    /// Values parallel to `columns`.
    pub values: Vec<Vec<f64>>,
}

impl CholeskyFactor {
    /// Dimension of the factor.
    pub fn n(&self) -> usize {
        self.columns.len()
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.columns.iter().map(Vec::len).sum()
    }

    /// Approximate heap footprint in bytes: one `usize` row index and one
    /// `f64` value per stored nonzero, plus the per-column `Vec` headers.
    /// The serving caches charge factors by this estimate.
    pub fn heap_bytes(&self) -> u64 {
        use std::mem::size_of;
        let nnz = self.nnz();
        let payload = nnz * (size_of::<usize>() + size_of::<f64>());
        let headers = (self.columns.len() + self.values.len()) * size_of::<Vec<usize>>();
        (payload + headers) as u64
    }

    /// Solve `A x = b` for `k` right-hand sides stored column-major in
    /// `rhs` (`rhs.len() == k · n`), in place: on return `rhs` holds the
    /// solutions.  The factor traversal is shared across the batch — each
    /// column of `L` is walked once per substitution sweep, not once per
    /// right-hand side — and the per-column operation order is exactly that
    /// of [`solve`], so a batched solve is bit-identical to `k` single
    /// solves.  No allocation happens on this path.
    pub fn solve_batch(&self, rhs: &mut [f64]) {
        let n = self.n();
        if n == 0 {
            assert!(rhs.is_empty(), "right-hand sides of an empty factor");
            return;
        }
        assert_eq!(
            rhs.len() % n,
            0,
            "batched right-hand sides must be whole length-n columns"
        );
        let count = rhs.len() / n;
        // Forward: L y = b, all columns of the batch per factor column.
        for j in 0..n {
            let diagonal = self.values[j][0];
            for c in 0..count {
                let x = &mut rhs[c * n..(c + 1) * n];
                x[j] /= diagonal;
                let xj = x[j];
                for (&i, &v) in self.columns[j].iter().zip(&self.values[j]).skip(1) {
                    x[i] -= v * xj;
                }
            }
        }
        // Backward: Lᵀ x = y.
        for j in (0..n).rev() {
            let diagonal = self.values[j][0];
            for c in 0..count {
                let x = &mut rhs[c * n..(c + 1) * n];
                let mut sum = x[j];
                for (&i, &v) in self.columns[j].iter().zip(&self.values[j]).skip(1) {
                    sum -= v * x[i];
                }
                x[j] = sum / diagonal;
            }
        }
    }

    /// Reconstruct `L Lᵀ` as a dense matrix (tests only).
    pub fn reconstruct_dense(&self) -> Vec<Vec<f64>> {
        let n = self.n();
        let mut dense = vec![vec![0.0; n]; n];
        for j in 0..n {
            for (a, (&ia, &va)) in self.columns[j].iter().zip(&self.values[j]).enumerate() {
                for (&ib, &vb) in self.columns[j].iter().zip(&self.values[j]).skip(a) {
                    dense[ib][ia] += va * vb;
                    if ia != ib {
                        dense[ia][ib] += va * vb;
                    }
                }
            }
        }
        dense
    }
}

/// Observer invoked by [`factorize_with_observer`] at the key points of the
/// factorization, used by the memory instrumentation.
pub(crate) trait FrontalObserver {
    /// A frontal matrix of `entries` matrix entries has been allocated.
    fn front_allocated(&mut self, entries: usize);
    /// The frontal matrix has been released; a contribution block of
    /// `cb_entries` entries stays live until the parent assembles it.
    fn front_released(&mut self, entries: usize, cb_entries: usize);
    /// A contribution block of `entries` entries has been consumed.
    fn contribution_consumed(&mut self, entries: usize);
}

/// Observer that does nothing (plain factorization).
struct NoOpObserver;

impl FrontalObserver for NoOpObserver {
    fn front_allocated(&mut self, _entries: usize) {}
    fn front_released(&mut self, _entries: usize, _cb_entries: usize) {}
    fn contribution_consumed(&mut self, _entries: usize) {}
}

/// One computed column of the factor: `(column, row indices, values)` with
/// the diagonal first.  Partial factorizations (subtree tasks) return their
/// columns in this form so they can be scattered into a [`CholeskyFactor`]
/// once every task has finished.
pub type FactorColumn = (usize, Vec<usize>, Vec<f64>);

/// Contribution blocks waiting for their parent column, keyed by the column
/// that produced them.
///
/// In a sequential factorization this is a private map of the kernel; in the
/// parallel execution layer it is also the hand-off vehicle between a
/// finished subtree task (whose root block stays pending) and the sequential
/// merge phase above the cut, which absorbs every task's leftovers before it
/// starts.
#[derive(Debug, Default)]
pub struct ContributionStore {
    blocks: HashMap<usize, (Vec<usize>, DenseMatrix)>,
}

impl ContributionStore {
    /// An empty store.
    pub fn new() -> Self {
        ContributionStore::default()
    }

    /// Number of pending blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether no block is pending.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total number of matrix entries held by the pending blocks.
    pub fn total_entries(&self) -> u64 {
        self.blocks.values().map(|(_, cb)| cb.len() as u64).sum()
    }

    fn insert(&mut self, column: usize, rows: Vec<usize>, block: DenseMatrix) {
        self.blocks.insert(column, (rows, block));
    }

    fn remove(&mut self, column: usize) -> Option<(Vec<usize>, DenseMatrix)> {
        self.blocks.remove(&column)
    }

    /// Move every block of `other` into `self`.
    pub fn absorb(&mut self, other: ContributionStore) {
        self.blocks.extend(other.blocks);
    }

    /// Insert a block reconstructed from an external representation (the
    /// distributed wire format).  `rows` are the global row indices of the
    /// pending update and `block` its dense lower-triangular payload; an
    /// existing block for `column` is replaced.
    pub fn insert_block(&mut self, column: usize, rows: Vec<usize>, block: DenseMatrix) {
        self.insert(column, rows, block);
    }

    /// The pending blocks sorted by producing column — the deterministic
    /// iteration order the wire encoder relies on (`HashMap` iteration order
    /// would leak into the frame bytes otherwise).
    pub fn sorted_blocks(&self) -> Vec<(usize, &[usize], &DenseMatrix)> {
        let mut blocks: Vec<(usize, &[usize], &DenseMatrix)> = self
            .blocks
            .iter()
            .map(|(&column, (rows, block))| (column, rows.as_slice(), block))
            .collect();
        blocks.sort_unstable_by_key(|&(column, _, _)| column);
        blocks
    }
}

/// Multifrontal Cholesky factorization of `matrix`, driven by the given
/// bottom-up traversal (children before parents).  When `traversal` is `None`
/// the postorder of the elimination tree is used, which is what a classical
/// multifrontal code does.
pub fn multifrontal_cholesky(
    matrix: &SymmetricCsr,
    traversal: Option<&[usize]>,
) -> Result<CholeskyFactor, FactorizationError> {
    multifrontal_cholesky_with(matrix, traversal, FrontKernel::default())
}

/// [`multifrontal_cholesky`] with an explicit dense elimination kernel —
/// the hook the kernel benchmark and the parity tests use to run the same
/// factorization under [`FrontKernel::Reference`] and
/// [`FrontKernel::Blocked`].
pub fn multifrontal_cholesky_with(
    matrix: &SymmetricCsr,
    traversal: Option<&[usize]>,
    kernel: FrontKernel,
) -> Result<CholeskyFactor, FactorizationError> {
    let structure = SymbolicStructure::from_pattern(&matrix.pattern());
    let default_order;
    let order = match traversal {
        Some(order) => order,
        None => {
            default_order = etree_postorder(&structure.etree);
            &default_order
        }
    };
    factorize_with_observer(matrix, &structure, order, &mut NoOpObserver, kernel, None)
}

/// The factorization kernel, parameterised by an observer (see
/// [`crate::memory`] for the instrumented version) and an optional
/// cooperative stop probe (checked every [`STOP_CHECK_COLUMNS`] columns).
pub(crate) fn factorize_with_observer(
    matrix: &SymmetricCsr,
    structure: &SymbolicStructure,
    order: &[usize],
    observer: &mut dyn FrontalObserver,
    kernel: FrontKernel,
    stop: Option<&dyn Fn() -> bool>,
) -> Result<CholeskyFactor, FactorizationError> {
    let n = matrix.n();
    if order.len() != n {
        return Err(FactorizationError::InvalidTraversal);
    }
    // Validate the bottom-up precedence (children before parents).
    let mut position = vec![usize::MAX; n];
    for (step, &j) in order.iter().enumerate() {
        if j >= n || position[j] != usize::MAX {
            return Err(FactorizationError::InvalidTraversal);
        }
        position[j] = step;
    }
    for j in 0..n {
        if let Some(p) = structure.etree.parent(j) {
            if position[j] >= position[p] {
                return Err(FactorizationError::InvalidTraversal);
            }
        }
    }

    let children = structure.etree.children();
    let mut pending = ContributionStore::new();
    let mut arena = FrontArena::new();
    let mut parts: Vec<FactorColumn> = Vec::with_capacity(n);
    eliminate_columns(
        matrix,
        structure,
        &children,
        order,
        &mut pending,
        &mut parts,
        observer,
        &mut arena,
        kernel,
        stop,
    )?;

    let mut factor_columns: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut factor_values: Vec<Vec<f64>> = vec![Vec::new(); n];
    for (j, rows, values) in parts {
        factor_columns[j] = rows;
        factor_values[j] = values;
    }
    Ok(CholeskyFactor {
        columns: factor_columns,
        values: factor_values,
    })
}

/// The per-column elimination loop over an arbitrary *subset* of columns.
///
/// `order` must be bottom-up *within the subset*: whenever a child of `j`
/// (in the elimination tree) also belongs to `order`, it appears before `j`.
/// Contribution blocks of children outside the subset must already sit in
/// `pending` (the parallel layer passes the finished subtree tasks' root
/// blocks this way); a child whose block is neither pending nor produced in
/// this call is a scheduling error and yields `InvalidTraversal`.
///
/// Computed factor columns are appended to `out`; blocks produced for
/// parents outside the subset remain in `pending` when the call returns.
/// Every front and every *consumed* block is recycled through `arena`.
///
/// `stop` is a cooperative cancellation probe, checked once per
/// [`STOP_CHECK_COLUMNS`] eliminated columns; when it fires the loop
/// returns [`FactorizationError::Cancelled`] and the partial columns in
/// `out`/`pending` must be discarded by the caller.
#[allow(clippy::too_many_arguments)]
pub(crate) fn eliminate_columns(
    matrix: &SymmetricCsr,
    structure: &SymbolicStructure,
    children: &[Vec<usize>],
    order: &[usize],
    pending: &mut ContributionStore,
    out: &mut Vec<FactorColumn>,
    observer: &mut dyn FrontalObserver,
    arena: &mut FrontArena,
    kernel: FrontKernel,
    stop: Option<&dyn Fn() -> bool>,
) -> Result<(), FactorizationError> {
    for (step, &j) in order.iter().enumerate() {
        if step % STOP_CHECK_COLUMNS == 0 {
            if let Some(probe) = stop {
                if probe() {
                    return Err(FactorizationError::Cancelled);
                }
            }
        }
        let rows = &structure.columns[j];
        let front_dim = rows.len();
        let mut front = arena.take(front_dim);
        let front_entries = front.len();
        observer.front_allocated(front_entries);

        // Local position of every global row index of this front.
        let local: HashMap<usize, usize> = rows
            .iter()
            .enumerate()
            .map(|(local, &global)| (global, local))
            .collect();

        // Assemble the original matrix entries of column j.
        let (a_rows, a_values) = matrix.column(j);
        for (&i, &v) in a_rows.iter().zip(a_values) {
            let li = local[&i];
            front.add(li, 0, v);
        }

        // Extend-add the children contribution blocks, in child order (the
        // assembly order — and with it the floating-point result — depends
        // only on the tree, never on which task or worker produced a block).
        for &c in &children[j] {
            match pending.remove(c) {
                Some((cb_rows, cb)) => {
                    for (a, &ga) in cb_rows.iter().enumerate() {
                        let la = local[&ga];
                        for (b, &gb) in cb_rows.iter().enumerate().skip(a) {
                            let lb = local[&gb];
                            // Store in the lower triangle of the front.
                            let (hi, lo) = if lb >= la { (lb, la) } else { (la, lb) };
                            front.add(hi, lo, cb.get(b, a));
                        }
                    }
                    observer.contribution_consumed(cb.len());
                    arena.recycle(cb);
                }
                // A child with a multi-row column always produces a block;
                // not finding it means the schedule violated the tree order.
                None if structure.columns[c].len() > 1 => {
                    return Err(FactorizationError::InvalidTraversal);
                }
                None => {}
            }
        }

        // Eliminate the fully-summed variable (the first row/column).
        kernel
            .apply(&mut front, 1)
            .map_err(|_| FactorizationError::NotPositiveDefinite { column: j })?;

        // Extract the factor column.
        let values: Vec<f64> = (0..front_dim).map(|i| front.get(i, 0)).collect();

        // Extract the contribution block (trailing (dim-1) x (dim-1) block).
        let cb_dim = front_dim - 1;
        let cb_entries = cb_dim * cb_dim;
        if cb_dim > 0 && structure.etree.parent(j).is_some() {
            let mut cb = arena.take(cb_dim);
            for a in 0..cb_dim {
                for b in a..cb_dim {
                    cb.set(b, a, front.get(b + 1, a + 1));
                }
            }
            pending.insert(j, rows[1..].to_vec(), cb);
            observer.front_released(front_entries, cb_entries);
        } else {
            observer.front_released(front_entries, 0);
        }
        arena.recycle(front);
        out.push((j, rows.clone(), values));
    }
    Ok(())
}

/// Solve `A x = b` given the Cholesky factor of `A` (forward substitution
/// with `L`, then backward substitution with `Lᵀ`), writing the solution
/// into `x` without allocating — callers on the hot path recycle `x` across
/// solves.
pub fn solve_into(factor: &CholeskyFactor, b: &[f64], x: &mut [f64]) {
    let n = factor.n();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    x.copy_from_slice(b);
    factor.solve_batch(x);
}

/// Allocating convenience wrapper over [`solve_into`].
pub fn solve(factor: &CholeskyFactor, b: &[f64]) -> Vec<f64> {
    let mut x = vec![0.0; factor.n()];
    solve_into(factor, b, &mut x);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen::{grid2d_matrix, random_spd_pattern, spd_matrix_from_pattern};

    fn max_abs_difference(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
        let mut worst: f64 = 0.0;
        for (ra, rb) in a.iter().zip(b) {
            for (&va, &vb) in ra.iter().zip(rb) {
                worst = worst.max((va - vb).abs());
            }
        }
        worst
    }

    #[test]
    fn symbolic_structure_matches_column_counts() {
        let pattern = random_spd_pattern(120, 4.0, 11);
        let structure = SymbolicStructure::from_pattern(&pattern);
        let etree = elimination_tree(&pattern);
        let counts = symbolic::column_counts(&pattern, &etree);
        assert_eq!(structure.column_counts(), counts);
        assert_eq!(structure.factor_nnz(), counts.iter().sum::<usize>());
    }

    #[test]
    fn factorization_reconstructs_the_matrix() {
        let matrix = grid2d_matrix(5, 4, 7);
        let factor = multifrontal_cholesky(&matrix, None).unwrap();
        let reconstructed = factor.reconstruct_dense();
        let original = matrix.to_dense();
        assert!(max_abs_difference(&reconstructed, &original) < 1e-10);
    }

    #[test]
    fn solve_recovers_a_known_solution() {
        let matrix = grid2d_matrix(6, 6, 3);
        let n = matrix.n();
        let expected: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let rhs = matrix.multiply(&expected);
        let factor = multifrontal_cholesky(&matrix, None).unwrap();
        let solution = solve(&factor, &rhs);
        let worst = solution
            .iter()
            .zip(&expected)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-8, "solution error {worst}");
    }

    #[test]
    fn any_valid_traversal_gives_the_same_factor() {
        let matrix = spd_matrix_from_pattern(&random_spd_pattern(80, 3.5, 5), 5);
        let structure = SymbolicStructure::from_pattern(&matrix.pattern());
        let postorder = etree_postorder(&structure.etree);
        let natural: Vec<usize> = (0..matrix.n()).collect();
        let a = multifrontal_cholesky(&matrix, Some(&postorder)).unwrap();
        let b = multifrontal_cholesky(&matrix, Some(&natural)).unwrap();
        for j in 0..matrix.n() {
            assert_eq!(a.columns[j], b.columns[j]);
            for (va, vb) in a.values[j].iter().zip(&b.values[j]) {
                assert!((va - vb).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn reference_and_blocked_kernels_factor_bitwise_identically() {
        // The multifrontal path eliminates one pivot per front, where the
        // blocked kernel collapses to the reference operation order — the
        // whole factor must therefore match bit for bit.
        let matrix = spd_matrix_from_pattern(&random_spd_pattern(100, 3.5, 21), 21);
        let blocked = multifrontal_cholesky_with(&matrix, None, FrontKernel::default()).unwrap();
        let reference = multifrontal_cholesky_with(&matrix, None, FrontKernel::Reference).unwrap();
        for j in 0..matrix.n() {
            assert_eq!(blocked.columns[j], reference.columns[j]);
            assert_eq!(blocked.values[j], reference.values[j], "column {j}");
        }
    }

    #[test]
    fn solve_batch_is_bit_identical_to_repeated_single_solves() {
        let matrix = grid2d_matrix(7, 5, 9);
        let n = matrix.n();
        let factor = multifrontal_cholesky(&matrix, None).unwrap();
        let count = 4;
        let mut batch: Vec<f64> = (0..count * n)
            .map(|i| ((i * 31 + 7) % 23) as f64 - 11.0)
            .collect();
        let singles: Vec<Vec<f64>> = (0..count)
            .map(|c| solve(&factor, &batch[c * n..(c + 1) * n]))
            .collect();
        factor.solve_batch(&mut batch);
        for (c, single) in singles.iter().enumerate() {
            assert_eq!(&batch[c * n..(c + 1) * n], single.as_slice(), "rhs {c}");
        }
    }

    #[test]
    fn solve_into_reuses_the_output_buffer() {
        let matrix = grid2d_matrix(4, 4, 2);
        let n = matrix.n();
        let factor = multifrontal_cholesky(&matrix, None).unwrap();
        let expected: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let rhs = matrix.multiply(&expected);
        let mut x = vec![f64::NAN; n];
        solve_into(&factor, &rhs, &mut x);
        assert_eq!(x, solve(&factor, &rhs));
    }

    #[test]
    fn invalid_traversals_are_rejected() {
        let matrix = grid2d_matrix(3, 3, 1);
        let n = matrix.n();
        let too_short = vec![0usize; n - 1];
        assert_eq!(
            multifrontal_cholesky(&matrix, Some(&too_short)).unwrap_err(),
            FactorizationError::InvalidTraversal
        );
        // Root first is not a bottom-up order.
        let structure = SymbolicStructure::from_pattern(&matrix.pattern());
        let mut top_down = etree_postorder(&structure.etree);
        top_down.reverse();
        assert_eq!(
            multifrontal_cholesky(&matrix, Some(&top_down)).unwrap_err(),
            FactorizationError::InvalidTraversal
        );
    }

    #[test]
    fn contribution_store_round_trips_through_the_public_accessors() {
        let mut store = ContributionStore::new();
        let mut block = DenseMatrix::zeros(2);
        block.set(0, 0, 1.5);
        block.set(1, 0, -2.0);
        store.insert_block(7, vec![8, 9], block.clone());
        store.insert_block(3, vec![4, 5], DenseMatrix::zeros(2));
        let sorted = store.sorted_blocks();
        assert_eq!(sorted.len(), 2);
        // Deterministic column order, independent of HashMap iteration.
        assert_eq!(sorted[0].0, 3);
        assert_eq!(sorted[1].0, 7);
        assert_eq!(sorted[1].1, &[8, 9]);
        assert_eq!(sorted[1].2, &block);
        let mut rebuilt = ContributionStore::new();
        for (column, rows, payload) in sorted {
            rebuilt.insert_block(column, rows.to_vec(), payload.clone());
        }
        assert_eq!(rebuilt.len(), store.len());
        assert_eq!(rebuilt.total_entries(), store.total_entries());
    }

    #[test]
    fn indefinite_matrices_are_rejected() {
        // Diagonal matrix with a negative entry.
        let matrix = SymmetricCsr::from_lower_columns(2, vec![vec![(0, 1.0)], vec![(1, -2.0)]]);
        assert!(matches!(
            multifrontal_cholesky(&matrix, None),
            Err(FactorizationError::NotPositiveDefinite { .. })
        ));
    }
}
