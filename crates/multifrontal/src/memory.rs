//! Instrumented multifrontal execution: measure the real memory footprint of
//! a traversal and check it against the abstract tree model of the paper.
//!
//! During a multifrontal factorization the live temporary storage consists of
//! the current frontal matrix plus every contribution block that has been
//! produced but not yet assembled into its parent.  For a per-column
//! elimination tree this is *exactly* the quantity modelled by the paper with
//! `f(j) = (µ(j) − 1)²` (contribution block) and
//! `n(j) = µ(j)² − (µ(j) − 1)²` (frontal matrix minus contribution block),
//! so the measured peak of an execution must equal the model's prediction for
//! the same traversal — [`instrumented_factorization`] asserts nothing but
//! reports both so tests and experiments can compare them.

use sparsemat::SymmetricCsr;
use treemem::tree::Size;
use treemem::variants::bottom_up_peak;
use treemem::{Traversal, Tree};

use crate::numeric::{
    factorize_with_observer, CholeskyFactor, FactorizationError, FrontalObserver, SymbolicStructure,
};

/// Statistics of an instrumented factorization.
#[derive(Debug, Clone)]
pub struct FactorizationStats {
    /// Peak number of live temporary matrix entries (frontal matrices plus
    /// pending contribution blocks) observed during the execution.
    pub measured_peak_entries: usize,
    /// Peak predicted by the tree model of the paper for the same traversal
    /// (same unit: matrix entries).
    pub model_peak_entries: Size,
    /// Number of nonzero entries of the computed factor.
    pub factor_nnz: usize,
    /// Number of columns of the matrix.
    pub n: usize,
    /// The computed factor.
    pub factor: CholeskyFactor,
    /// The per-column model tree used for the prediction.
    pub model_tree: Tree,
}

/// Memory-tracking observer.
#[derive(Default)]
struct MemoryTracker {
    live: usize,
    peak: usize,
}

impl FrontalObserver for MemoryTracker {
    fn front_allocated(&mut self, entries: usize) {
        self.live += entries;
        self.peak = self.peak.max(self.live);
    }

    fn front_released(&mut self, entries: usize, cb_entries: usize) {
        // The contribution block is carved out of the front; the rest of the
        // front is freed.
        self.live -= entries;
        self.live += cb_entries;
        self.peak = self.peak.max(self.live);
    }

    fn contribution_consumed(&mut self, entries: usize) {
        self.live -= entries;
    }
}

/// Build the paper's per-column tree model of `structure`: node `j` has input
/// file `(µ(j) − 1)²` and execution file `µ(j)² − (µ(j) − 1)²`, where `µ(j)`
/// is the column count.  The tree is returned in the out-tree orientation
/// used by `treemem` (the factorization traverses it bottom-up).
pub fn per_column_model(structure: &SymbolicStructure) -> Tree {
    let n = structure.n();
    let counts = structure.column_counts();
    let parents: Vec<Option<usize>> = (0..n).map(|j| structure.etree.parent(j)).collect();
    // Reducible matrices give a forest; attach the extra roots to the last
    // root so the model stays a single tree (the attachment has no memory
    // effect because the extra edges carry the true contribution-block size
    // of the child roots, which is zero).
    let roots: Vec<usize> = (0..n).filter(|&j| parents[j].is_none()).collect();
    let main_root = *roots.last().expect("at least one root");
    let parents: Vec<Option<usize>> = parents
        .into_iter()
        .enumerate()
        .map(|(j, p)| {
            if p.is_none() && j != main_root {
                Some(main_root)
            } else {
                p
            }
        })
        .collect();
    let files: Vec<Size> = (0..n)
        .map(|j| {
            let mu = counts[j] as Size;
            if parents[j].is_none() {
                0
            } else {
                (mu - 1) * (mu - 1)
            }
        })
        .collect();
    let weights: Vec<Size> = (0..n)
        .map(|j| {
            let mu = counts[j] as Size;
            mu * mu - (mu - 1) * (mu - 1)
        })
        .collect();
    Tree::from_parents(&parents, &files, &weights).expect("per-column model is a valid tree")
}

/// Run the multifrontal factorization along `order` (a bottom-up traversal;
/// the elimination-tree postorder when `None`) while measuring the live
/// temporary memory, and report the measurement next to the prediction of
/// the paper's tree model for the same traversal.
pub fn instrumented_factorization(
    matrix: &SymmetricCsr,
    order: Option<&[usize]>,
) -> Result<FactorizationStats, FactorizationError> {
    let structure = SymbolicStructure::from_pattern(&matrix.pattern());
    instrumented_factorization_with_structure(matrix, &structure, order)
}

/// [`instrumented_factorization`] with a precomputed symbolic structure, for
/// callers (like the engine's plan cache) that already paid for it.
pub fn instrumented_factorization_with_structure(
    matrix: &SymmetricCsr,
    structure: &SymbolicStructure,
    order: Option<&[usize]>,
) -> Result<FactorizationStats, FactorizationError> {
    instrumented_factorization_with_stop(matrix, structure, order, None)
}

/// [`instrumented_factorization_with_structure`] with a cooperative stop
/// probe, forwarded into the per-column elimination loop; a fired probe
/// yields [`FactorizationError::Cancelled`].
pub fn instrumented_factorization_with_stop(
    matrix: &SymmetricCsr,
    structure: &SymbolicStructure,
    order: Option<&[usize]>,
    stop: Option<&dyn Fn() -> bool>,
) -> Result<FactorizationStats, FactorizationError> {
    let default_order;
    let order = match order {
        Some(order) => order,
        None => {
            default_order = symbolic::etree::etree_postorder(&structure.etree);
            &default_order
        }
    };
    let mut tracker = MemoryTracker::default();
    let factor = factorize_with_observer(
        matrix,
        structure,
        order,
        &mut tracker,
        crate::dense::FrontKernel::default(),
        stop,
    )?;
    let model_tree = per_column_model(structure);
    let traversal = Traversal::new(order.to_vec());
    let model_peak = bottom_up_peak(&model_tree, &traversal)
        .map_err(|_| FactorizationError::InvalidTraversal)?;
    Ok(FactorizationStats {
        measured_peak_entries: tracker.peak,
        model_peak_entries: model_peak,
        factor_nnz: factor.nnz(),
        n: matrix.n(),
        factor,
        model_tree,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen::{grid2d_matrix, random_spd_pattern, spd_matrix_from_pattern};
    use symbolic::etree::etree_postorder;
    use treemem::minmem::min_mem;
    use treemem::postorder::best_postorder;

    #[test]
    fn measured_peak_matches_the_model_on_the_postorder() {
        for (nx, ny, seed) in [(5usize, 4usize, 1u64), (7, 7, 2), (9, 6, 3)] {
            let matrix = grid2d_matrix(nx, ny, seed);
            let stats = instrumented_factorization(&matrix, None).unwrap();
            assert_eq!(
                stats.measured_peak_entries as Size, stats.model_peak_entries,
                "grid {nx}x{ny}: the model must predict the real footprint exactly"
            );
        }
    }

    #[test]
    fn measured_peak_matches_the_model_on_optimized_traversals() {
        let matrix = spd_matrix_from_pattern(&random_spd_pattern(90, 3.5, 4), 4);
        let structure = SymbolicStructure::from_pattern(&matrix.pattern());
        let model = per_column_model(&structure);
        // Use the MinMem and best-postorder traversals of the model tree
        // (top-down), reversed into bottom-up orders for the factorization.
        for traversal in [min_mem(&model).traversal, best_postorder(&model).traversal] {
            let bottom_up: Vec<usize> = traversal.reversed().into_order();
            let stats = instrumented_factorization(&matrix, Some(&bottom_up)).unwrap();
            assert_eq!(
                stats.measured_peak_entries as Size,
                stats.model_peak_entries
            );
        }
    }

    #[test]
    fn optimal_traversal_never_uses_more_memory_than_the_etree_postorder() {
        let matrix = grid2d_matrix(8, 8, 5);
        let structure = SymbolicStructure::from_pattern(&matrix.pattern());
        let model = per_column_model(&structure);
        let postorder_run =
            instrumented_factorization(&matrix, Some(&etree_postorder(&structure.etree))).unwrap();
        let optimal_bottom_up: Vec<usize> = min_mem(&model).traversal.reversed().into_order();
        let optimal_run = instrumented_factorization(&matrix, Some(&optimal_bottom_up)).unwrap();
        assert!(optimal_run.measured_peak_entries <= postorder_run.measured_peak_entries);
        // Both executions compute the same factor.
        assert_eq!(optimal_run.factor_nnz, postorder_run.factor_nnz);
    }

    #[test]
    fn stats_report_the_factor_size() {
        let matrix = grid2d_matrix(4, 4, 9);
        let stats = instrumented_factorization(&matrix, None).unwrap();
        let structure = SymbolicStructure::from_pattern(&matrix.pattern());
        assert_eq!(stats.factor_nnz, structure.factor_nnz());
        assert_eq!(stats.n, 16);
        assert!(stats.model_tree.len() == 16);
    }
}
