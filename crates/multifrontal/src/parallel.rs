//! Building blocks of the parallel (subtree-concurrent) multifrontal
//! factorization: the shared memory-budget ledger and the partial
//! factorization a worker runs over one subtree.
//!
//! The orchestration itself — cutting the tree into tasks, running them on a
//! worker pool, merging above the cut — lives in the `engine` crate; this
//! module provides the pieces that must live next to the numeric kernel:
//!
//! * [`BudgetLedger`] — the shared memory accountant.  It has two faces.
//!   The *reservation gate* admits a subtree task only when its statically
//!   modeled peak fits in the remaining budget (workers that would overshoot
//!   pick a smaller pending task instead, or block until a running task
//!   releases memory); when nothing is running and nothing fits, the ledger
//!   force-admits the smallest candidate, so a budget below the largest
//!   single frontal matrix degrades to sequential execution instead of
//!   deadlocking.  The *measurement face* is a pair of atomics fed by the
//!   kernel's observer hooks, recording the true high-water mark of live
//!   entries across all workers.
//! * [`factor_columns`] — the elimination of one column subset (a subtree
//!   task, or the merge phase above the cut) with per-worker [`FrontArena`]
//!   recycling, returning the computed factor columns plus the contribution
//!   blocks that outlive the subset.
//! * [`modeled_peak_entries`] — the static peak model of a column subset,
//!   which is exact for this kernel (the instrumented tests pin measured ==
//!   model), so reservations are tight rather than heuristic.
//! * [`assemble_factor`] — scatter the tasks' [`FactorColumn`]s back into a
//!   [`CholeskyFactor`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use sparsemat::SymmetricCsr;
use treemem::sync::{TrackedCondvar, TrackedMutex};

use crate::dense::{FrontArena, FrontKernel};
use crate::numeric::{
    eliminate_columns, CholeskyFactor, ContributionStore, FactorColumn, FactorizationError,
    FrontalObserver, SymbolicStructure,
};

/// Outcome of [`BudgetLedger::select_and_reserve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReserveSelection {
    /// The candidate at this index was admitted and its amount reserved.
    Selected(usize),
    /// Nothing fits while other tasks are running; wait for a release past
    /// the returned generation ([`BudgetLedger::wait_past`]) and retry.
    Blocked(u64),
}

struct Gate {
    /// Sum of admitted-but-unreleased reservations (running task peaks plus
    /// retained contribution blocks of finished tasks).
    reserved: u64,
    /// Tasks currently running (admitted, not yet finished).
    running: usize,
    /// Bumped on every release, so blocked workers can detect progress
    /// without missed wakeups.
    generation: u64,
    /// Set by [`BudgetLedger::cancel`]: blocked workers stop waiting and
    /// drain instead of retrying.
    cancelled: bool,
}

/// The shared memory accountant of a parallel factorization; see the module
/// docs.  All sizes are in matrix entries, the unit of the per-column model.
pub struct BudgetLedger {
    budget: Option<u64>,
    gate: TrackedMutex<Gate>,
    released: TrackedCondvar,
    live_entries: AtomicI64,
    peak_entries: AtomicI64,
    forced: AtomicU64,
}

impl BudgetLedger {
    /// A ledger enforcing `budget` entries (`None` = unbounded: the gate
    /// admits everything and only the measurement face is active).
    pub fn new(budget: Option<u64>) -> Self {
        BudgetLedger {
            budget,
            gate: TrackedMutex::new(
                Gate {
                    reserved: 0,
                    running: 0,
                    generation: 0,
                    cancelled: false,
                },
                "budget-ledger.gate",
            ),
            released: TrackedCondvar::new(),
            live_entries: AtomicI64::new(0),
            peak_entries: AtomicI64::new(0),
            forced: AtomicU64::new(0),
        }
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Admit one of `candidates` (reservation amounts, in the caller's
    /// preference order) and reserve its amount.  The first candidate that
    /// fits wins; when none fits and nothing is running, the *smallest*
    /// candidate is force-admitted (minimal overshoot — this is the
    /// degrade-to-sequential path); when none fits and tasks are running,
    /// the caller should [`wait_past`](BudgetLedger::wait_past) the returned
    /// generation and retry.
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn select_and_reserve(&self, candidates: &[u64]) -> ReserveSelection {
        assert!(!candidates.is_empty(), "no candidate to admit");
        let mut gate = self.gate.lock();
        let admitted = match self.budget {
            None => 0,
            Some(budget) => {
                match candidates
                    .iter()
                    .position(|&amount| gate.reserved.saturating_add(amount) <= budget)
                {
                    Some(index) => index,
                    None if gate.running == 0 => {
                        self.forced.fetch_add(1, Ordering::Relaxed);
                        let (index, _) = candidates
                            .iter()
                            .enumerate()
                            .min_by_key(|&(index, &amount)| (amount, index))
                            .expect("candidates is non-empty");
                        index
                    }
                    None => return ReserveSelection::Blocked(gate.generation),
                }
            }
        };
        gate.reserved = gate.reserved.saturating_add(candidates[admitted]);
        gate.running += 1;
        ReserveSelection::Selected(admitted)
    }

    /// Mark an admitted task finished: its reservation shrinks from
    /// `reserved` to `retained` (the contribution blocks it leaves behind
    /// for the merge phase) and blocked workers are woken.
    pub fn finish_task(&self, reserved: u64, retained: u64) {
        let mut gate = self.gate.lock();
        gate.reserved = gate
            .reserved
            .saturating_sub(reserved.saturating_sub(retained));
        gate.running = gate.running.saturating_sub(1);
        gate.generation += 1;
        drop(gate);
        self.released.notify_all();
    }

    /// Drop a retained reservation (after the merge phase consumed the
    /// blocks).
    pub fn release_retained(&self, retained: u64) {
        let mut gate = self.gate.lock();
        gate.reserved = gate.reserved.saturating_sub(retained);
        gate.generation += 1;
        drop(gate);
        self.released.notify_all();
    }

    /// Block until some release happened after `generation` was observed
    /// (returns immediately if one already did) **or** the ledger was
    /// cancelled.  Returns `false` on cancellation: the waiter must drain
    /// instead of retrying its reservation.
    #[must_use = "a false return means the ledger was cancelled"]
    pub fn wait_past(&self, generation: u64) -> bool {
        let mut gate = self.gate.lock();
        while gate.generation <= generation && !gate.cancelled {
            gate = self.released.wait(gate);
        }
        !gate.cancelled
    }

    /// Cancel the ledger: every current and future [`wait_past`] waiter
    /// wakes immediately and is told to drain.  Reservations are left
    /// untouched — running tasks still release them on their own way out,
    /// so the accounting stays consistent while the pool shuts down.
    ///
    /// [`wait_past`]: BudgetLedger::wait_past
    pub fn cancel(&self) {
        let mut gate = self.gate.lock();
        gate.cancelled = true;
        gate.generation += 1;
        drop(gate);
        self.released.notify_all();
    }

    /// Whether [`BudgetLedger::cancel`] was called.
    pub fn is_cancelled(&self) -> bool {
        self.gate.lock().cancelled
    }

    /// Currently reserved entries (tests and diagnostics).
    pub fn reserved(&self) -> u64 {
        self.gate.lock().reserved
    }

    /// How often the gate had to force-admit a task over budget because
    /// nothing was running (0 on a well-provisioned run).
    pub fn forced_admissions(&self) -> u64 {
        self.forced.load(Ordering::Relaxed)
    }

    /// Record `delta` live entries (called by the kernel observer).
    fn add_live(&self, delta: i64) {
        let now = self.live_entries.fetch_add(delta, Ordering::Relaxed) + delta;
        self.peak_entries.fetch_max(now, Ordering::Relaxed);
    }

    /// High-water mark of live entries across all workers so far.
    pub fn measured_peak_entries(&self) -> u64 {
        self.peak_entries.load(Ordering::Relaxed).max(0) as u64
    }
}

/// Observer feeding the ledger's measurement face.
struct LedgerObserver<'a> {
    ledger: &'a BudgetLedger,
}

impl FrontalObserver for LedgerObserver<'_> {
    fn front_allocated(&mut self, entries: usize) {
        self.ledger.add_live(entries as i64);
    }

    fn front_released(&mut self, entries: usize, cb_entries: usize) {
        self.ledger.add_live(cb_entries as i64 - entries as i64);
    }

    fn contribution_consumed(&mut self, entries: usize) {
        self.ledger.add_live(-(entries as i64));
    }
}

/// The result of factoring one column subset.
pub struct SubtreeOutcome {
    /// The computed factor columns, in elimination order.
    pub columns: Vec<FactorColumn>,
    /// Contribution blocks whose parent lies outside the subset (for a
    /// subtree task: the subtree root's block), to be absorbed by the merge
    /// phase.
    pub blocks: ContributionStore,
    /// Total entries of `blocks` (the reservation to retain).
    pub block_entries: u64,
}

/// Factor the columns of `order` (a bottom-up order within one subtree task
/// or the above-cut merge set), assembling external children blocks from
/// `blocks_in` and reporting live-memory movements to `ledger`.
///
/// `children` is `structure.etree.children()`, computed once by the caller
/// and shared by every task.
pub fn factor_columns(
    matrix: &SymmetricCsr,
    structure: &SymbolicStructure,
    children: &[Vec<usize>],
    order: &[usize],
    blocks_in: ContributionStore,
    ledger: &BudgetLedger,
    arena: &mut FrontArena,
) -> Result<SubtreeOutcome, FactorizationError> {
    factor_columns_with(
        matrix,
        structure,
        children,
        order,
        blocks_in,
        ledger,
        arena,
        FrontKernel::default(),
        None,
    )
}

/// [`factor_columns`] with an explicit dense elimination kernel and an
/// optional cooperative stop probe (checked every few dozen columns inside
/// the elimination loop; a fired probe yields
/// [`FactorizationError::Cancelled`]).  The kernel choice (and with it the
/// panel width) rides alongside the per-worker `arena`: both are plain
/// per-task state, so switching kernels changes neither the arena's
/// retention bound nor the assembly order the bit-reproducibility guarantee
/// rests on.
#[allow(clippy::too_many_arguments)]
pub fn factor_columns_with(
    matrix: &SymmetricCsr,
    structure: &SymbolicStructure,
    children: &[Vec<usize>],
    order: &[usize],
    blocks_in: ContributionStore,
    ledger: &BudgetLedger,
    arena: &mut FrontArena,
    kernel: FrontKernel,
    stop: Option<&dyn Fn() -> bool>,
) -> Result<SubtreeOutcome, FactorizationError> {
    let mut pending = blocks_in;
    let mut columns = Vec::with_capacity(order.len());
    let mut observer = LedgerObserver { ledger };
    eliminate_columns(
        matrix,
        structure,
        children,
        order,
        &mut pending,
        &mut columns,
        &mut observer,
        arena,
        kernel,
        stop,
    )?;
    let block_entries = pending.total_entries();
    Ok(SubtreeOutcome {
        columns,
        blocks: pending,
        block_entries,
    })
}

/// The static live-entries model of factoring `order` with this kernel,
/// starting from `initial_live` external entries (the blocks a merge phase
/// inherits).  Returns `(peak, final_live)`.
///
/// `counts` are the factor column counts (`µ(j)`,
/// [`SymbolicStructure::column_counts`]) and `parents` the elimination-tree
/// parents.  The model replays the kernel's exact event order — front
/// allocated, children blocks consumed, front released into a `(µ−1)²`
/// contribution block — so for a fixed column subset it matches the
/// measured footprint entry for entry, which is what makes ledger
/// reservations tight.
pub fn modeled_peak_entries(
    counts: &[usize],
    parents: &[Option<usize>],
    children: &[Vec<usize>],
    order: &[usize],
    initial_live: u64,
) -> (u64, u64) {
    let block_entries = |column: usize| -> u64 {
        let mu = counts[column] as u64;
        if mu > 1 && parents[column].is_some() {
            (mu - 1) * (mu - 1)
        } else {
            0
        }
    };
    let mut live = initial_live;
    let mut peak = live;
    for &j in order {
        let mu = counts[j] as u64;
        live += mu * mu;
        peak = peak.max(live);
        for &c in &children[j] {
            live = live.saturating_sub(block_entries(c));
        }
        live -= mu * mu;
        live += block_entries(j);
        peak = peak.max(live);
    }
    (peak, live)
}

/// Scatter per-task [`FactorColumn`]s into a full `n`-column factor.
/// Returns `InvalidTraversal` if the parts do not cover every column exactly
/// once.
pub fn assemble_factor(
    n: usize,
    parts: impl IntoIterator<Item = FactorColumn>,
) -> Result<CholeskyFactor, FactorizationError> {
    let mut columns: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut values: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut filled = 0usize;
    for (j, rows, column_values) in parts {
        if j >= n || !columns[j].is_empty() {
            return Err(FactorizationError::InvalidTraversal);
        }
        columns[j] = rows;
        values[j] = column_values;
        filled += 1;
    }
    if filled != n {
        return Err(FactorizationError::InvalidTraversal);
    }
    Ok(CholeskyFactor { columns, values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::multifrontal_cholesky;
    use sparsemat::gen::{grid2d_matrix, random_spd_pattern, spd_matrix_from_pattern};
    use symbolic::etree::etree_postorder;

    #[test]
    fn unbounded_ledger_admits_everything() {
        let ledger = BudgetLedger::new(None);
        assert_eq!(
            ledger.select_and_reserve(&[u64::MAX, 1]),
            ReserveSelection::Selected(0)
        );
        assert_eq!(ledger.forced_admissions(), 0);
    }

    #[test]
    fn gate_prefers_the_first_fitting_candidate() {
        let ledger = BudgetLedger::new(Some(100));
        assert_eq!(
            ledger.select_and_reserve(&[80, 50]),
            ReserveSelection::Selected(0)
        );
        // 80 reserved: the 90 no longer fits, the 15 does.
        assert_eq!(
            ledger.select_and_reserve(&[90, 15]),
            ReserveSelection::Selected(1)
        );
        assert_eq!(ledger.reserved(), 95);
        // Nothing fits while two tasks run: blocked.
        assert!(matches!(
            ledger.select_and_reserve(&[90, 15]),
            ReserveSelection::Blocked(_)
        ));
        assert_eq!(ledger.forced_admissions(), 0);
    }

    #[test]
    fn empty_gate_force_admits_the_smallest_oversized_task() {
        let ledger = BudgetLedger::new(Some(10));
        assert_eq!(
            ledger.select_and_reserve(&[50, 30, 40]),
            ReserveSelection::Selected(1)
        );
        assert_eq!(ledger.forced_admissions(), 1);
        assert_eq!(ledger.reserved(), 30);
        ledger.finish_task(30, 4);
        assert_eq!(ledger.reserved(), 4);
        ledger.release_retained(4);
        assert_eq!(ledger.reserved(), 0);
    }

    #[test]
    fn blocked_workers_wake_after_a_release() {
        let ledger = std::sync::Arc::new(BudgetLedger::new(Some(100)));
        assert_eq!(
            ledger.select_and_reserve(&[100]),
            ReserveSelection::Selected(0)
        );
        let ReserveSelection::Blocked(generation) = ledger.select_and_reserve(&[60]) else {
            panic!("expected Blocked");
        };
        let waiter = {
            let ledger = ledger.clone();
            std::thread::spawn(move || {
                assert!(ledger.wait_past(generation), "woken by a release");
                ledger.select_and_reserve(&[60])
            })
        };
        ledger.finish_task(100, 0);
        assert_eq!(
            waiter.join().expect("waiter survived"),
            ReserveSelection::Selected(0)
        );
    }

    #[test]
    fn cancellation_wakes_and_drains_blocked_waiters() {
        let ledger = std::sync::Arc::new(BudgetLedger::new(Some(100)));
        assert_eq!(
            ledger.select_and_reserve(&[100]),
            ReserveSelection::Selected(0)
        );
        let ReserveSelection::Blocked(generation) = ledger.select_and_reserve(&[60]) else {
            panic!("expected Blocked");
        };
        let waiter = {
            let ledger = ledger.clone();
            std::thread::spawn(move || ledger.wait_past(generation))
        };
        ledger.cancel();
        assert!(!waiter.join().expect("waiter survived"), "told to drain");
        assert!(ledger.is_cancelled());
        // A waiter arriving after the cancellation drains immediately too.
        assert!(!ledger.wait_past(u64::MAX));
        // Reservations still release cleanly on the way out.
        ledger.finish_task(100, 0);
        assert_eq!(ledger.reserved(), 0);
    }

    #[test]
    fn measurement_face_tracks_the_high_water_mark() {
        let ledger = BudgetLedger::new(None);
        let mut observer = LedgerObserver { ledger: &ledger };
        observer.front_allocated(100);
        observer.front_released(100, 81);
        observer.front_allocated(49);
        assert_eq!(ledger.measured_peak_entries(), 130);
        observer.contribution_consumed(81);
        observer.front_released(49, 0);
        assert_eq!(ledger.measured_peak_entries(), 130);
    }

    #[test]
    fn split_factorization_matches_the_sequential_factor_bitwise() {
        let matrix = spd_matrix_from_pattern(&random_spd_pattern(120, 3.5, 9), 9);
        let n = matrix.n();
        let structure = SymbolicStructure::from_pattern(&matrix.pattern());
        let children = structure.etree.children();
        let order = etree_postorder(&structure.etree);
        let reference = multifrontal_cholesky(&matrix, Some(&order)).unwrap();

        // Split the postorder at an arbitrary point: the prefix plays the
        // subtree tasks, the suffix the merge phase fed by the leftovers.
        let ledger = BudgetLedger::new(None);
        let mut arena = FrontArena::new();
        let (prefix, suffix) = order.split_at(2 * n / 3);
        let first = factor_columns(
            &matrix,
            &structure,
            &children,
            prefix,
            ContributionStore::new(),
            &ledger,
            &mut arena,
        )
        .unwrap();
        let second = factor_columns(
            &matrix,
            &structure,
            &children,
            suffix,
            first.blocks,
            &ledger,
            &mut arena,
        )
        .unwrap();
        assert!(second.blocks.is_empty());
        let assembled =
            assemble_factor(n, first.columns.into_iter().chain(second.columns)).unwrap();
        for j in 0..n {
            assert_eq!(assembled.columns[j], reference.columns[j]);
            assert_eq!(assembled.values[j], reference.values[j], "column {j}");
        }
    }

    #[test]
    fn missing_external_blocks_are_a_scheduling_error() {
        let matrix = grid2d_matrix(4, 4, 3);
        let structure = SymbolicStructure::from_pattern(&matrix.pattern());
        let children = structure.etree.children();
        let order = etree_postorder(&structure.etree);
        // Feed the merge suffix without the prefix's blocks.
        let suffix = &order[order.len() - 3..];
        let ledger = BudgetLedger::new(None);
        let outcome = factor_columns(
            &matrix,
            &structure,
            &children,
            suffix,
            ContributionStore::new(),
            &ledger,
            &mut FrontArena::new(),
        );
        assert!(matches!(outcome, Err(FactorizationError::InvalidTraversal)));
    }

    #[test]
    fn modeled_peak_matches_the_measured_peak() {
        let matrix = spd_matrix_from_pattern(&random_spd_pattern(90, 3.0, 4), 4);
        let structure = SymbolicStructure::from_pattern(&matrix.pattern());
        let children = structure.etree.children();
        let counts = structure.column_counts();
        let parents: Vec<Option<usize>> =
            (0..matrix.n()).map(|j| structure.etree.parent(j)).collect();
        let order = etree_postorder(&structure.etree);

        let ledger = BudgetLedger::new(None);
        factor_columns(
            &matrix,
            &structure,
            &children,
            &order,
            ContributionStore::new(),
            &ledger,
            &mut FrontArena::new(),
        )
        .unwrap();
        let (modeled, final_live) = modeled_peak_entries(&counts, &parents, &children, &order, 0);
        assert_eq!(modeled, ledger.measured_peak_entries());
        assert_eq!(final_live, 0);
    }

    #[test]
    fn assemble_factor_rejects_gaps_and_duplicates() {
        assert!(matches!(
            assemble_factor(2, vec![(0, vec![0], vec![1.0])]),
            Err(FactorizationError::InvalidTraversal)
        ));
        assert!(matches!(
            assemble_factor(1, vec![(0, vec![0], vec![1.0]), (0, vec![0], vec![1.0])]),
            Err(FactorizationError::InvalidTraversal)
        ));
    }
}
