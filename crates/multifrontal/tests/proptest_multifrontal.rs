//! Property-based tests for the numeric multifrontal factorization: on random
//! SPD matrices the factorization must reconstruct the matrix, solve linear
//! systems, give the same factor for every valid traversal, and use exactly
//! the memory predicted by the paper's tree model.

use proptest::prelude::*;

use multifrontal::memory::per_column_model;
use multifrontal::numeric::SymbolicStructure;
use multifrontal::{instrumented_factorization, multifrontal_cholesky, solve};
use sparsemat::gen::spd_matrix_from_pattern;
use sparsemat::SparsePattern;
use symbolic::etree::etree_postorder;
use treemem::minmem::min_mem;
use treemem::postorder::best_postorder;
use treemem::tree::Size;

fn arbitrary_spd(max_n: usize, max_edges: usize) -> impl Strategy<Value = sparsemat::SymmetricCsr> {
    (2..=max_n, 0u64..10_000)
        .prop_flat_map(move |(n, seed)| {
            (Just(n), Just(seed), proptest::collection::vec((0..n, 0..n), 0..=max_edges))
        })
        .prop_map(|(n, seed, edges)| {
            let pattern = SparsePattern::from_edges(n, &edges);
            spd_matrix_from_pattern(&pattern, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn factorization_reconstructs_and_solves(matrix in arbitrary_spd(25, 80)) {
        let factor = multifrontal_cholesky(&matrix, None).unwrap();
        // L L^T = A.
        let reconstructed = factor.reconstruct_dense();
        let original = matrix.to_dense();
        for i in 0..matrix.n() {
            for j in 0..matrix.n() {
                prop_assert!((reconstructed[i][j] - original[i][j]).abs() < 1e-8,
                    "entry ({}, {})", i, j);
            }
        }
        // Solving reproduces a known vector.
        let expected: Vec<f64> = (0..matrix.n()).map(|i| ((i % 5) as f64) - 2.0).collect();
        let rhs = matrix.multiply(&expected);
        let solution = solve(&factor, &rhs);
        for (a, b) in solution.iter().zip(&expected) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn every_valid_traversal_gives_the_same_factor(matrix in arbitrary_spd(20, 60)) {
        let structure = SymbolicStructure::from_pattern(&matrix.pattern());
        let model = per_column_model(&structure);
        let orders: Vec<Vec<usize>> = vec![
            etree_postorder(&structure.etree),
            (0..matrix.n()).collect(),
            min_mem(&model).traversal.reversed().into_order(),
            best_postorder(&model).traversal.reversed().into_order(),
        ];
        let reference = multifrontal_cholesky(&matrix, Some(&orders[0])).unwrap();
        for order in &orders[1..] {
            let factor = multifrontal_cholesky(&matrix, Some(order)).unwrap();
            for j in 0..matrix.n() {
                prop_assert_eq!(&factor.columns[j], &reference.columns[j]);
                for (a, b) in factor.values[j].iter().zip(&reference.values[j]) {
                    prop_assert!((a - b).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn measured_memory_always_matches_the_model(matrix in arbitrary_spd(20, 60)) {
        let structure = SymbolicStructure::from_pattern(&matrix.pattern());
        let model = per_column_model(&structure);
        for order in [
            etree_postorder(&structure.etree),
            min_mem(&model).traversal.reversed().into_order(),
        ] {
            let stats = instrumented_factorization(&matrix, Some(&order)).unwrap();
            prop_assert_eq!(stats.measured_peak_entries as Size, stats.model_peak_entries);
            prop_assert_eq!(stats.factor_nnz, structure.factor_nnz());
        }
    }
}
