//! Property-based tests for the numeric multifrontal factorization: on random
//! SPD matrices the factorization must reconstruct the matrix, solve linear
//! systems, give the same factor for every valid traversal, and use exactly
//! the memory predicted by the paper's tree model.
//!
//! The environment is offline, so instead of `proptest` these tests draw a
//! deterministic battery of random instances from the `prng` crate: every
//! case is reproducible from its seed, printed in assertion messages.

use prng::{Rng, StdRng};

use multifrontal::memory::per_column_model;
use multifrontal::numeric::SymbolicStructure;
use multifrontal::{instrumented_factorization, multifrontal_cholesky, solve};
use sparsemat::gen::spd_matrix_from_pattern;
use sparsemat::SparsePattern;
use symbolic::etree::etree_postorder;
use treemem::minmem::min_mem;
use treemem::postorder::best_postorder;
use treemem::tree::Size;

fn arbitrary_spd(seed: u64, max_n: usize, max_edges: usize) -> sparsemat::SymmetricCsr {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..=max_n);
    let count = rng.gen_range(0..=max_edges);
    let edges: Vec<(usize, usize)> = (0..count)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    let pattern = SparsePattern::from_edges(n, &edges);
    spd_matrix_from_pattern(&pattern, rng.gen::<u64>())
}

#[test]
fn factorization_reconstructs_and_solves() {
    for seed in 0..32 {
        let matrix = arbitrary_spd(seed, 25, 80);
        let factor = multifrontal_cholesky(&matrix, None).unwrap();
        // L L^T = A.
        let reconstructed = factor.reconstruct_dense();
        let original = matrix.to_dense();
        for i in 0..matrix.n() {
            for j in 0..matrix.n() {
                assert!(
                    (reconstructed[i][j] - original[i][j]).abs() < 1e-8,
                    "seed {seed}, entry ({i}, {j})"
                );
            }
        }
        // Solving reproduces a known vector.
        let expected: Vec<f64> = (0..matrix.n()).map(|i| ((i % 5) as f64) - 2.0).collect();
        let rhs = matrix.multiply(&expected);
        let solution = solve(&factor, &rhs);
        for (a, b) in solution.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-6, "seed {seed}");
        }
    }
}

#[test]
fn every_valid_traversal_gives_the_same_factor() {
    for seed in 100..132 {
        let matrix = arbitrary_spd(seed, 20, 60);
        let structure = SymbolicStructure::from_pattern(&matrix.pattern());
        let model = per_column_model(&structure);
        let orders: Vec<Vec<usize>> = vec![
            etree_postorder(&structure.etree),
            (0..matrix.n()).collect(),
            min_mem(&model).traversal.reversed().into_order(),
            best_postorder(&model).traversal.reversed().into_order(),
        ];
        let reference = multifrontal_cholesky(&matrix, Some(&orders[0])).unwrap();
        for order in &orders[1..] {
            let factor = multifrontal_cholesky(&matrix, Some(order)).unwrap();
            for j in 0..matrix.n() {
                assert_eq!(&factor.columns[j], &reference.columns[j], "seed {seed}");
                for (a, b) in factor.values[j].iter().zip(&reference.values[j]) {
                    assert!((a - b).abs() < 1e-9, "seed {seed}");
                }
            }
        }
    }
}

#[test]
fn measured_memory_always_matches_the_model() {
    for seed in 200..232 {
        let matrix = arbitrary_spd(seed, 20, 60);
        let structure = SymbolicStructure::from_pattern(&matrix.pattern());
        let model = per_column_model(&structure);
        for order in [
            etree_postorder(&structure.etree),
            min_mem(&model).traversal.reversed().into_order(),
        ] {
            let stats = instrumented_factorization(&matrix, Some(&order)).unwrap();
            assert_eq!(
                stats.measured_peak_entries as Size, stats.model_peak_entries,
                "seed {seed}"
            );
            assert_eq!(stats.factor_nnz, structure.factor_nnz(), "seed {seed}");
        }
    }
}
