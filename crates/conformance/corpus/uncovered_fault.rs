//! conformance-fixture: path=crates/engine/src/fake_stage.rs
//! Seeded violations for `cancel-poll-coverage`: a roster point with no
//! cancellation poll anywhere nearby, and a point name missing from the
//! roster entirely. This file must contain no poll tokens at all.

use treemem::faultinject::fire;

pub fn uncovered_stage() {
    fire("schedule:io"); //~ cancel-poll-coverage
}

pub fn unregistered_point() {
    fire("fake:unregistered"); //~ cancel-poll-coverage
}
