//! conformance-fixture: path=crates/multifrontal/src/fake_kernel.rs
//! Seeded violations for `unsafe-needs-safety`: an unannotated unsafe block
//! and an unannotated unsafe fn, next to a correctly annotated block that
//! must NOT be flagged.

pub fn dispatch(values: &mut [f64]) {
    unsafe { scale(values) } //~ unsafe-needs-safety
}

pub fn dispatch_annotated(values: &mut [f64]) {
    // SAFETY: the slice is exclusively borrowed and `scale` touches only its
    // own elements.
    unsafe { scale(values) }
}

unsafe fn scale(values: &mut [f64]) { //~ unsafe-needs-safety
    for v in values.iter_mut() {
        *v *= 2.0;
    }
}

// SAFETY: annotated through an attribute sandwich — the comment sits above
// the attributes, which the rule must skip over.
#[inline(never)]
#[cold]
unsafe fn scale_cold(values: &mut [f64]) {
    for v in values.iter_mut() {
        *v *= 0.5;
    }
}
