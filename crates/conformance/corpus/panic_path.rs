//! conformance-fixture: path=crates/server/src/fake_handler.rs
//! Seeded violations for `no-panic-in-request-path`: unwrap, expect, panic!,
//! and slice indexing in server code, next to the non-panicking forms that
//! must NOT be flagged.

pub fn handle(body: Option<&str>, bytes: &[u8]) -> String {
    let body = body.unwrap(); //~ no-panic-in-request-path
    let first = bytes[0]; //~ no-panic-in-request-path
    if first == b'{' {
        panic!("bad frame"); //~ no-panic-in-request-path
    }
    body.to_string()
}

pub fn parse(value: &str) -> usize {
    value.parse().expect("numeric field") //~ no-panic-in-request-path
}

pub fn route(index: usize) -> &'static str {
    match index {
        0 => "solve",
        _ => unreachable!("router enumerates all endpoints"), //~ no-panic-in-request-path
    }
}

pub fn fallback(value: Option<usize>, bytes: &[u8]) -> usize {
    // The non-panicking forms: unwrap_or_else and .get() are fine.
    value.unwrap_or_else(|| bytes.get(0).copied().unwrap_or_default().into())
}
