//! conformance-fixture: path=crates/engine/src/fake_stage_ok.rs
//! Negative fixture for `cancel-poll-coverage`: a roster fault point with a
//! cancellation poll in the same stage must produce zero findings.

use engine::cancel::{check, CancelToken, Cancelled};
use treemem::faultinject::fire;

pub fn covered_stage(cancel: Option<&CancelToken>) -> Result<(), Cancelled> {
    fire("execute:numeric");
    check(cancel, "numeric")?;
    Ok(())
}

pub fn polled_stage(token: &CancelToken) -> bool {
    fire("parexec:task");
    !token.is_cancelled()
}
