//! conformance-fixture: path=crates/distrib/src/fake_lease.rs
//! Seeded violations for `monotonic-time-only`: SystemTime anywhere, and
//! Instant::now() inside distrib lease code.

use std::time::{Duration, Instant, SystemTime}; //~ monotonic-time-only

pub struct FakeLease {
    pub deadline_ms: u64,
}

pub fn lease_start_wall() -> Duration {
    let now = SystemTime::now(); //~ monotonic-time-only
    now.duration_since(std::time::UNIX_EPOCH).unwrap_or_default()
}

pub fn lease_start_instant() -> Instant {
    Instant::now() //~ monotonic-time-only
}

pub fn lease_from_anchor(now_ms: u64, ttl_ms: u64) -> FakeLease {
    // The blessed pattern: callers pass a timestamp taken from the
    // monotonic_millis() anchor; no clock is consulted here.
    FakeLease {
        deadline_ms: now_ms.saturating_add(ttl_ms),
    }
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn test_code_may_measure_time() {
        // Instant::now() in a test region is allowed.
        let started = Instant::now();
        assert!(started.elapsed().as_secs() < 60);
    }
}
