//! conformance-fixture: path=crates/distrib/src/wire.rs
//! Seeded violations for `no-truncating-casts`: numeric `as` casts in wire
//! decoding, next to lossless conversions that must NOT be flagged.

pub fn decode_len(value: u64) -> usize {
    value as usize //~ no-truncating-casts
}

pub fn decode_row(value: u64) -> u32 {
    (value & 0xFFFF_FFFF) as u32 //~ no-truncating-casts
}

pub fn widen_checked(value: u32) -> u64 {
    // Lossless `From` widening is the blessed pattern.
    u64::from(value)
}

pub fn rename_is_not_a_cast() {
    // `as` in imports must not be flagged.
    use std::collections::BTreeMap as Map;
    let _ = Map::<u64, u64>::new();
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_cast() {
        let v: u64 = 9;
        assert_eq!(v as usize, 9);
    }
}
