//! conformance-fixture: path=crates/server/src/fake_quoted.rs
//! Lexer gauntlet: banned tokens inside string literals, raw strings, char
//! literals, nested block comments, and test regions must never fire. One
//! real violation at the bottom proves the file is scanned at all.

pub fn quoted() -> &'static str {
    // A comment mentioning SystemTime::now() and .unwrap() must not fire.
    /* Nested /* block comment */ with panic!("boom") and bytes[0] inside. */
    let raw = r#"frames embed "quotes" and .unwrap() and SystemTime"#;
    let fenced = r##"a raw string ending in "# keeps going: .expect("x")"##;
    let plain = "escaped \" quote then .expect(\"x\") and value as usize";
    let ch = '"';
    let escaped = '\'';
    let lifetime: &'static str = raw;
    let _ = (fenced, plain, ch, escaped, lifetime);
    "ok"
}

pub fn scanned(values: &[u64]) -> u64 {
    values[0] //~ no-panic-in-request-path
}

#[cfg(test)]
mod tests {
    use super::scanned;

    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u64> = Some(scanned(&[1]));
        assert_eq!(v.unwrap(), 1);
        let arr = [1u64, 2];
        assert_eq!(arr[1], 2);
    }
}
