//! Lexer battery: the conformance rules are only as good as the lexer's
//! classification of strings, comments, and test regions.

use conformance::lexer::{LexedFile, SpanKind};
use conformance::rules::{self, Violation};

fn check(path: &str, source: &str) -> Vec<Violation> {
    let lexed = LexedFile::lex(source);
    let mut out = Vec::new();
    rules::check_file(path, &lexed, &mut out);
    out
}

#[test]
fn raw_strings_are_masked() {
    let src = r####"
pub fn f() -> &'static str {
    let a = r"plain .unwrap() raw";
    let b = r#"one fence "quoted" .expect("x")"#;
    let c = r##"two fences ending "# then done"##;
    let _ = (a, b, c);
    "done"
}
"####;
    let lexed = LexedFile::lex(src);
    assert!(!lexed.masked.contains("unwrap"));
    assert!(!lexed.masked.contains("expect"));
    assert!(!lexed.masked.contains("quoted"));
    assert_eq!(
        lexed
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::RawStr)
            .count(),
        3
    );
    // The trailing "done" is an ordinary string.
    assert!(lexed.spans.iter().any(|s| s.kind == SpanKind::Str));
    assert!(check("crates/server/src/x.rs", src).is_empty());
}

#[test]
fn nested_block_comments_are_masked() {
    let src = "/* outer /* inner .unwrap() */ still comment panic!(\"x\") */\npub fn f() {}\n";
    let lexed = LexedFile::lex(src);
    assert!(!lexed.masked.contains("unwrap"));
    assert!(!lexed.masked.contains("panic"));
    assert!(lexed.masked.contains("pub fn f"));
    assert!(check("crates/server/src/x.rs", src).is_empty());
}

#[test]
fn escaped_quotes_do_not_end_strings() {
    let src = "pub fn f() -> String {\n    let s = \"escaped \\\" then .unwrap() inside\";\n    s.to_string()\n}\n";
    let lexed = LexedFile::lex(src);
    assert!(!lexed.masked.contains("unwrap"));
    assert!(check("crates/distrib/src/x.rs", src).is_empty());
}

#[test]
fn char_literals_vs_lifetimes() {
    let src = "pub fn f<'a>(s: &'a str) -> char {\n    let q = '\"';\n    let e = '\\'';\n    let n = '\\n';\n    if s.is_empty() { q } else if n == e { n } else { 'x' }\n}\n";
    let lexed = LexedFile::lex(src);
    let chars = lexed
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Char)
        .count();
    assert_eq!(chars, 4, "masked: {:?}", lexed.masked);
    // Lifetimes survive as code.
    assert!(lexed.masked.contains("'a>"));
}

#[test]
fn cfg_test_regions_are_marked() {
    let src = "pub fn prod(v: &[u64]) -> Option<&u64> {\n    v.get(0)\n}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let v = vec![1u64];\n        assert_eq!(*super::prod(&v).unwrap(), v[0]);\n    }\n}\n";
    let lexed = LexedFile::lex(src);
    assert!(!lexed.is_test_line(1));
    assert!(!lexed.is_test_line(2));
    let mod_line = src
        .lines()
        .position(|l| l.contains("mod tests"))
        .map(|i| i + 1)
        .expect("fixture has mod tests");
    assert!(lexed.is_test_line(mod_line));
    assert!(lexed.is_test_line(mod_line + 4));
    // The unwrap and index inside the test region must not fire.
    assert!(check("crates/server/src/x.rs", src).is_empty());
}

#[test]
fn test_attribute_without_mod_is_marked() {
    let src = "pub fn prod() {}\n\n#[test]\nfn standalone() {\n    let v: Option<u64> = Some(1);\n    v.unwrap();\n}\n";
    let violations = check("crates/server/src/x.rs", src);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn violations_outside_test_regions_fire() {
    let src =
        "pub fn prod(v: Option<u64>) -> u64 {\n    v.unwrap()\n}\n\n#[cfg(test)]\nmod tests {}\n";
    let violations = check("crates/server/src/x.rs", src);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].rule, "no-panic-in-request-path");
    assert_eq!(violations[0].line, 2);
}

#[test]
fn safety_comment_through_attributes() {
    let src = "// SAFETY: features checked by caller.\n#[inline]\nunsafe fn f() {}\n";
    assert!(check("crates/x/src/x.rs", src).is_empty());
    let bad = "#[inline]\nunsafe fn f() {}\n";
    let violations = check("crates/x/src/x.rs", bad);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].rule, "unsafe-needs-safety");
}

#[test]
fn fault_point_roster_and_window() {
    // Unknown point name.
    let src = "use treemem::faultinject::fire;\npub fn f() {\n    fire(\"bogus:point\");\n}\n";
    let violations = check("crates/engine/src/x.rs", src);
    assert_eq!(violations.len(), 1);
    assert!(violations[0].message.contains("unknown fault point"));

    // Known point, polled.
    let src_ok = "pub fn f(t: &CancelToken) {\n    fire(\"execute:numeric\");\n    if t.is_cancelled() { return; }\n}\n";
    assert!(check("crates/engine/src/x.rs", src_ok).is_empty());

    // Known point, no poll.
    let src_bad = "pub fn f() {\n    fire(\"execute:numeric\");\n}\n";
    let violations = check("crates/engine/src/x.rs", src_bad);
    assert_eq!(violations.len(), 1);
    assert!(violations[0].message.contains("no cancellation poll"));
}

#[test]
fn numeric_casts_only_in_scoped_files() {
    let src = "pub fn f(v: u64) -> usize {\n    v as usize\n}\n";
    // Outside the scoped files: no finding.
    assert!(check("crates/engine/src/run.rs", src).is_empty());
    // Inside: finding.
    let violations = check("crates/distrib/src/wire.rs", src);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].rule, "no-truncating-casts");
}

#[test]
fn line_numbers_are_one_indexed_and_stable() {
    let src = "line one\nline two\nline three";
    let lexed = LexedFile::lex(src);
    assert_eq!(lexed.line_count(), 3);
    assert_eq!(lexed.line_of(0), 1);
    assert_eq!(lexed.line_of(9), 2);
    assert_eq!(lexed.line_text(2), "line two");
}
