//! # conformance — workspace-invariant static analysis
//!
//! The repository's correctness story leans on invariants that `rustc` and
//! clippy cannot express: leases must use the monotonic clock, wire decoding
//! must not truncate, the serving path must not panic, every `unsafe` block
//! needs a written justification, and every fault-injection point needs a
//! cancellation poll in its stage. This crate is a small, dependency-free
//! static analyzer that machine-checks those invariants on every workspace
//! `.rs` file, with its own lexer (strings, nested comments, `#[cfg(test)]`
//! regions) so rules never fire inside literals, comments, or test code they
//! should ignore.
//!
//! Three entry points share the same engine:
//!
//! * the `exp_conformance` binary (CI `conformance` job, `--explain <rule>`,
//!   `--self-test`);
//! * the tier-1 `tests/conformance.rs` mirror at the workspace root;
//! * this library, for the crate's own unit and corpus tests.

pub mod corpus;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::fs;
use std::path::Path;

pub use corpus::{run_self_test, SelfTestReport};
pub use lexer::LexedFile;
pub use rules::{rule_by_name, Violation, ALLOWLIST, RULES};
pub use walk::find_workspace_root;

/// Scan every workspace `.rs` file under `root` and return the violations
/// that survive the allowlist (plus stale-allowlist findings).
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let paths = walk::workspace_rs_files(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(root.join(&path))?;
        files.push((path, LexedFile::lex(&text)));
    }
    let mut findings = Vec::new();
    for (path, lexed) in &files {
        rules::check_file(path, lexed, &mut findings);
    }
    let mut kept = rules::apply_allowlist(findings, &files);
    kept.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(kept)
}
