//! Workspace file discovery.

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names that are never scanned: build output, VCS metadata, and
/// the seeded violation corpus (whose files violate rules on purpose).
const SKIP_DIRS: &[&str] = &["target", ".git", "corpus"];

/// Collect every `.rs` file under `root`, returned as workspace-relative
/// paths with `/` separators, sorted for deterministic reports.
pub fn workspace_rs_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    collect(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect(root: &Path, dir: &Path, files: &mut Vec<String>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(root, &path, files)?;
        } else if name.ends_with(".rs") {
            files.push(relative_unix(root, &path));
        }
    }
    Ok(())
}

fn relative_unix(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Find the workspace root by walking up from `start` until a directory
/// containing a `Cargo.toml` with a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
