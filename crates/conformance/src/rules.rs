//! The conformance rules and their allowlist.
//!
//! Every rule is named, scoped, and explained (`exp_conformance --explain
//! <rule>`). Findings can be suppressed only through [`ALLOWLIST`] entries,
//! which match on a path suffix plus a content substring of the offending
//! line — robust to line drift — and carry a human-readable reason. Entries
//! that no longer match anything are themselves reported as violations so
//! the allowlist cannot rot.

use crate::lexer::{LexedFile, SpanKind};

/// One finding: a rule violated at a specific file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub message: String,
}

impl Violation {
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Metadata for one rule, used by `--explain` and the self-test.
pub struct Rule {
    pub name: &'static str,
    pub summary: &'static str,
    pub explain: &'static str,
}

pub const RULES: &[Rule] = &[
    Rule {
        name: "unsafe-needs-safety",
        summary: "every `unsafe` block or fn is immediately preceded by a `// SAFETY:` comment",
        explain: "Every `unsafe` token (block, fn, impl) must be justified by a `// SAFETY:`\n\
                  comment on the same line or immediately above it (doc comments and\n\
                  attributes may sit between the comment and the item). The comment must\n\
                  state the invariant that makes the unsafe code sound — e.g. which CPU\n\
                  features were detected before calling a `target_feature` function.\n\
                  Applies to all workspace code, tests included.",
    },
    Rule {
        name: "monotonic-time-only",
        summary: "no `SystemTime`; `Instant::now()` banned in distrib lease/deadline code",
        explain: "Leases, deadlines, and heartbeats must never consult the wall clock:\n\
                  `SystemTime` can jump backwards (NTP) and silently revive an expired\n\
                  lease. `SystemTime` is banned everywhere. `Instant::now()` is banned in\n\
                  non-test `crates/distrib` code — lease arithmetic must go through the\n\
                  single `engine::cancel::monotonic_millis()` anchor so every timestamp\n\
                  shares one process-wide monotonic origin and serialises as a plain u64.",
    },
    Rule {
        name: "no-truncating-casts",
        summary: "no numeric `as` casts in distrib::wire and engine::json — use try_from",
        explain: "Wire decoding and JSON parsing handle attacker-shaped input. A numeric\n\
                  `as` cast silently truncates (u64 -> usize wraps on 32-bit targets,\n\
                  f64 -> u32 saturates), turning a malformed frame into a wrong answer\n\
                  instead of an error. In `crates/distrib/src/wire.rs` and\n\
                  `crates/engine/src/json.rs`, all numeric narrowing must use\n\
                  `try_from(..)` and surface a typed error. Lossless `From` conversions\n\
                  (`u32::from(c)`) are the idiomatic escape hatch for widening.",
    },
    Rule {
        name: "no-panic-in-request-path",
        summary: "no unwrap/expect/panic!/slice-index in server/distrib non-test code",
        explain: "A panic inside the serving path converts one bad request into a poisoned\n\
                  mutex or a dead worker — PR 7's 'zero non-injected 5xx' invariant dies\n\
                  there. Non-test code in `crates/server` and `crates/distrib` must not\n\
                  call `.unwrap()` / `.expect(..)`, must not use `panic!` / `unreachable!`\n\
                  / `todo!` / `unimplemented!`, and must not index slices with `x[i]`\n\
                  (use `.get(i)`). Mutex acquisition goes through the poison-tolerant\n\
                  `treemem::sync::TrackedMutex::lock()` helper instead of\n\
                  `.lock().unwrap()`. Deliberate invariant panics need an ALLOWLIST entry\n\
                  with a reason.",
    },
    Rule {
        name: "cancel-poll-coverage",
        summary: "every faultinject point is paired with a CancelToken poll in its stage",
        explain: "Fault-injection points mark the stages where the chaos harness can\n\
                  delay or kill work; each such stage must also poll cooperative\n\
                  cancellation, otherwise a cancelled request keeps burning the stage the\n\
                  chaos test says is slow. For every `fire(\"point\")` /\n\
                  `fire_fault(\"point\")` call site, the point name must be in the known\n\
                  roster (kept in crates/conformance/src/rules.rs) and a cancellation\n\
                  poll (`is_cancelled` / `check(cancel, ..)`) must appear within 40 lines\n\
                  in the same file. Sites whose stage is fenced another way (lease expiry,\n\
                  unwind containment) need an ALLOWLIST entry explaining the fence.",
    },
];

pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// An allowlist entry: suppresses findings of `rule` in files whose path ends
/// with `path_suffix`, on lines containing `needle`.
pub struct AllowEntry {
    pub rule: &'static str,
    pub path_suffix: &'static str,
    pub needle: &'static str,
    pub reason: &'static str,
}

pub const ALLOWLIST: &[AllowEntry] = &[
    // --- no-panic-in-request-path -----------------------------------------
    AllowEntry {
        rule: "no-panic-in-request-path",
        path_suffix: "server/src/lib.rs",
        needle: "expect(\"spawning the accept thread failed\")",
        reason: "boot path, not request path: runs once before the listener accepts traffic",
    },
    AllowEntry {
        rule: "no-panic-in-request-path",
        path_suffix: "server/src/http.rs",
        needle: "byte[0]",
        reason: "fixed 1-byte buffer indexed at 0 immediately after a successful read",
    },
    AllowEntry {
        rule: "no-panic-in-request-path",
        path_suffix: "distrib/src/wire.rs",
        needle: "&bytes[..newline]",
        reason: "newline is an index returned by find() on the same slice",
    },
    AllowEntry {
        rule: "no-panic-in-request-path",
        path_suffix: "distrib/src/wire.rs",
        needle: "&bytes[newline + 1..]",
        reason: "newline is an index returned by find() on the same slice",
    },
    AllowEntry {
        rule: "no-panic-in-request-path",
        path_suffix: "distrib/src/wire.rs",
        needle: "u32::try_from(value).expect(\"row index exceeds the u32 wire range\")",
        reason: "encode side, documented panic: indices come from locally validated matrices",
    },
    AllowEntry {
        rule: "no-panic-in-request-path",
        path_suffix: "distrib/src/job.rs",
        needle: "expect(\"completed task without parts\")",
        reason: "invariant: a task reaches Completed only via contribute(), which stores parts",
    },
    AllowEntry {
        rule: "no-panic-in-request-path",
        path_suffix: "distrib/src/job.rs",
        needle: "state.tasks[index]",
        reason: "index bounds-checked against state.tasks.len() on the previous lines",
    },
    AllowEntry {
        rule: "no-panic-in-request-path",
        path_suffix: "distrib/src/job.rs",
        needle: "pending[slot]",
        reason: "slot is drawn modulo pending.len() just above",
    },
    AllowEntry {
        rule: "no-panic-in-request-path",
        path_suffix: "distrib/src/job.rs",
        needle: "state.tasks[chosen]",
        reason: "chosen comes from pending[], whose members were enumerated from tasks",
    },
    AllowEntry {
        rule: "no-panic-in-request-path",
        path_suffix: "server/src/stats.rs",
        needle: "inner.ring[slot]",
        reason: "slot is cursor % ring.len(); the ring is fixed-capacity",
    },
    AllowEntry {
        rule: "no-panic-in-request-path",
        path_suffix: "server/src/stats.rs",
        needle: "self.cancelled[index]",
        reason: "index is position() in CANCEL_STAGE_NAMES, same length as the array",
    },
    AllowEntry {
        rule: "no-panic-in-request-path",
        path_suffix: "server/src/stats.rs",
        needle: "self.endpoints[index]",
        reason: "index is position() in ENDPOINT_NAMES, same length as the array",
    },
    AllowEntry {
        rule: "no-panic-in-request-path",
        path_suffix: "server/src/stats.rs",
        needle: "self.stages[index]",
        reason: "index is position() in STAGE_NAMES, same length as the array",
    },
    // --- cancel-poll-coverage ---------------------------------------------
    AllowEntry {
        rule: "cancel-poll-coverage",
        path_suffix: "server/src/worker.rs",
        needle: "fire(\"parexec:task\")",
        reason: "worker claim loop is lease-fenced: a stalled task is re-issued by the \
                 coordinator after lease expiry, so cancellation is coordinator-side",
    },
    AllowEntry {
        rule: "cancel-poll-coverage",
        path_suffix: "multifrontal/src/dense.rs",
        needle: "fire(\"arena:alloc\")",
        reason: "arena allocation happens inside eliminate_columns' column loop, which \
                 polls the stop probe every few columns; the injected panic unwinds \
                 through catch_unwind",
    },
];

/// The known fault-injection point roster. `cancel-poll-coverage` flags any
/// `fire("..")` site whose point name is not listed here, forcing new
/// instrumentation points to be registered (and paired with a cancel poll).
pub const FAULT_POINT_ROSTER: &[&str] = &[
    "plan:ordering",
    "plan:symbolic",
    "schedule:solver",
    "schedule:io",
    "execute:numeric",
    "parexec:task",
    "arena:alloc",
];

/// Tokens that count as a cooperative-cancellation poll for
/// `cancel-poll-coverage`.
const POLL_TOKENS: &[&str] = &["is_cancelled", "check(cancel"];

/// How many lines around a fault point we search for a cancellation poll.
const POLL_WINDOW: usize = 40;

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// True for files that are test-only by location (integration tests, benches,
/// examples) rather than by `#[cfg(test)]` region.
pub fn is_test_path(path: &str) -> bool {
    let p = path.replace('\\', "/");
    p.starts_with("tests/")
        || p.starts_with("examples/")
        || p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
}

fn in_request_path_scope(path: &str) -> bool {
    let p = path.replace('\\', "/");
    (p.contains("crates/server/src/") || p.contains("crates/distrib/src/")) && !is_test_path(&p)
}

fn in_cast_scope(path: &str) -> bool {
    let p = path.replace('\\', "/");
    p.ends_with("distrib/src/wire.rs") || p.ends_with("engine/src/json.rs")
}

fn in_instant_scope(path: &str) -> bool {
    let p = path.replace('\\', "/");
    p.contains("crates/distrib/src/") && !is_test_path(&p)
}

/// Run every rule over one lexed file, appending findings to `out`.
/// `path` uses `/` separators and is relative to the workspace root.
pub fn check_file(path: &str, lexed: &LexedFile, out: &mut Vec<Violation>) {
    check_unsafe_needs_safety(path, lexed, out);
    check_monotonic_time_only(path, lexed, out);
    check_no_truncating_casts(path, lexed, out);
    check_no_panic_in_request_path(path, lexed, out);
    check_cancel_poll_coverage(path, lexed, out);
}

/// Apply the allowlist to raw findings. Returns the surviving violations plus
/// one synthetic violation per stale (never-matched) allowlist entry.
pub fn apply_allowlist(findings: Vec<Violation>, files: &[(String, LexedFile)]) -> Vec<Violation> {
    let mut used = vec![false; ALLOWLIST.len()];
    let mut kept = Vec::new();
    'finding: for v in findings {
        let line_text = files
            .iter()
            .find(|(p, _)| *p == v.path)
            .map(|(_, l)| l.line_text(v.line))
            .unwrap_or("");
        for (i, entry) in ALLOWLIST.iter().enumerate() {
            if entry.rule == v.rule
                && v.path.ends_with(entry.path_suffix)
                && line_text.contains(entry.needle)
            {
                used[i] = true;
                continue 'finding;
            }
        }
        kept.push(v);
    }
    // Stale entries: confirm the needle still exists somewhere in the file it
    // points at; an entry whose file or line vanished must be deleted.
    for (i, entry) in ALLOWLIST.iter().enumerate() {
        if used[i] {
            continue;
        }
        let still_matches = files
            .iter()
            .any(|(p, l)| p.ends_with(entry.path_suffix) && l.text.contains(entry.needle));
        if !still_matches {
            kept.push(Violation {
                rule: "stale-allowlist",
                path: format!("crates/conformance/src/rules.rs ({})", entry.path_suffix),
                line: 0,
                message: format!(
                    "allowlist entry for rule `{}` with needle `{}` no longer matches \
                     anything — delete it",
                    entry.rule, entry.needle
                ),
            });
        }
    }
    kept
}

// ---------------------------------------------------------------------------
// unsafe-needs-safety
// ---------------------------------------------------------------------------

fn check_unsafe_needs_safety(path: &str, lexed: &LexedFile, out: &mut Vec<Violation>) {
    for at in lexed.find_code_word("unsafe") {
        let line = lexed.line_of(at);
        if !has_safety_comment(lexed, line) {
            out.push(Violation {
                rule: "unsafe-needs-safety",
                path: path.to_string(),
                line,
                message: "`unsafe` without an immediately preceding `// SAFETY:` comment"
                    .to_string(),
            });
        }
    }
}

fn has_safety_comment(lexed: &LexedFile, line: usize) -> bool {
    if lexed.line_text(line).contains("SAFETY:") {
        return true;
    }
    let mut l = line.saturating_sub(1);
    // Attributes and doc comments may sit between the SAFETY comment and the
    // unsafe item itself.
    while l >= 1 {
        let t = lexed.line_text(l).trim();
        if t.starts_with("#[")
            || t.starts_with("#!")
            || t.starts_with("///")
            || t.starts_with("//!")
        {
            l -= 1;
            continue;
        }
        break;
    }
    // The first non-attribute line(s) above must be a comment block containing
    // `SAFETY:`.
    let mut found = false;
    while l >= 1 {
        let t = lexed.line_text(l).trim();
        let plain_line_comment =
            t.starts_with("//") && !t.starts_with("///") && !t.starts_with("//!");
        let block_comment_ish = t.starts_with("/*") || t.starts_with('*') || t.ends_with("*/");
        if !plain_line_comment && !block_comment_ish {
            break;
        }
        if t.contains("SAFETY:") {
            found = true;
        }
        l -= 1;
    }
    found
}

// ---------------------------------------------------------------------------
// monotonic-time-only
// ---------------------------------------------------------------------------

fn check_monotonic_time_only(path: &str, lexed: &LexedFile, out: &mut Vec<Violation>) {
    for at in lexed.find_code_word("SystemTime") {
        let line = lexed.line_of(at);
        out.push(Violation {
            rule: "monotonic-time-only",
            path: path.to_string(),
            line,
            message: "`SystemTime` is banned: wall clocks jump; use the monotonic anchor"
                .to_string(),
        });
    }
    if !in_instant_scope(path) {
        return;
    }
    for at in lexed.find_code_prefixed("Instant::now") {
        let line = lexed.line_of(at);
        if lexed.is_test_line(line) {
            continue;
        }
        out.push(Violation {
            rule: "monotonic-time-only",
            path: path.to_string(),
            line,
            message: "`Instant::now()` in lease/deadline code: route through \
                      `engine::cancel::monotonic_millis()`"
                .to_string(),
        });
    }
}

// ---------------------------------------------------------------------------
// no-truncating-casts
// ---------------------------------------------------------------------------

fn check_no_truncating_casts(path: &str, lexed: &LexedFile, out: &mut Vec<Violation>) {
    if !in_cast_scope(path) {
        return;
    }
    let masked = lexed.masked.as_bytes();
    for at in lexed.find_code_word("as") {
        let line = lexed.line_of(at);
        if lexed.is_test_line(line) {
            continue;
        }
        // Read the next identifier token after `as`.
        let mut i = at + 2;
        while i < masked.len() && (masked[i] == b' ' || masked[i] == b'\n') {
            i += 1;
        }
        let start = i;
        while i < masked.len() && (masked[i].is_ascii_alphanumeric() || masked[i] == b'_') {
            i += 1;
        }
        let word = &lexed.masked[start..i];
        if NUMERIC_TYPES.contains(&word) {
            out.push(Violation {
                rule: "no-truncating-casts",
                path: path.to_string(),
                line,
                message: format!(
                    "numeric `as {word}` cast in wire/json parsing: use `{word}::try_from(..)` \
                     and surface a typed error"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// no-panic-in-request-path
// ---------------------------------------------------------------------------

fn check_no_panic_in_request_path(path: &str, lexed: &LexedFile, out: &mut Vec<Violation>) {
    if !in_request_path_scope(path) {
        return;
    }
    let push = |line: usize, message: String, out: &mut Vec<Violation>| {
        out.push(Violation {
            rule: "no-panic-in-request-path",
            path: path.to_string(),
            line,
            message,
        });
    };
    for needle in [".unwrap()", ".expect("] {
        let mut from = 0;
        while let Some(pos) = lexed.masked[from..].find(needle) {
            let at = from + pos;
            from = at + needle.len();
            let line = lexed.line_of(at);
            if lexed.is_test_line(line) {
                continue;
            }
            push(
                line,
                format!(
                    "`{needle}..` in the request path: handle the error or go through the \
                         poison-tolerant `TrackedMutex::lock()`"
                ),
                out,
            );
        }
    }
    for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
        for at in lexed.find_code_prefixed(mac) {
            let line = lexed.line_of(at);
            if lexed.is_test_line(line) {
                continue;
            }
            push(
                line,
                format!("`{mac}(..)` in the request path: return a typed error instead"),
                out,
            );
        }
    }
    // Slice indexing: `ident[`, `)[`, `][` with no whitespace between. Array
    // literals (`[0; 8]`), slice patterns (`let [a, b] = ..`), attributes
    // (`#[..]`) and macros (`vec![`) all have a non-identifier byte before
    // the bracket and do not match.
    let bytes = lexed.masked.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        let indexes = prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']';
        if !indexes {
            continue;
        }
        let line = lexed.line_of(i);
        if lexed.is_test_line(line) {
            continue;
        }
        push(
            line,
            "slice index `x[..]` in the request path: use `.get(..)` and handle `None`".to_string(),
            out,
        );
    }
}

// ---------------------------------------------------------------------------
// cancel-poll-coverage
// ---------------------------------------------------------------------------

fn check_cancel_poll_coverage(path: &str, lexed: &LexedFile, out: &mut Vec<Violation>) {
    if is_test_path(path) {
        return;
    }
    for (idx, span) in lexed.spans.iter().enumerate() {
        if span.kind != SpanKind::Str || idx == 0 {
            continue;
        }
        let prev = lexed.spans[idx - 1];
        if prev.kind != SpanKind::Code {
            continue;
        }
        let head = lexed.text[prev.start..prev.end].trim_end();
        if !head.ends_with("fire(") && !head.ends_with("fire_fault(") {
            continue;
        }
        let line = lexed.line_of(span.start);
        if lexed.is_test_line(line) {
            continue;
        }
        let literal = &lexed.text[span.start..span.end];
        let point = literal.trim_matches('"');
        if !FAULT_POINT_ROSTER.contains(&point) {
            out.push(Violation {
                rule: "cancel-poll-coverage",
                path: path.to_string(),
                line,
                message: format!(
                    "unknown fault point `{point}`: add it to FAULT_POINT_ROSTER in \
                     crates/conformance/src/rules.rs and pair it with a cancellation poll"
                ),
            });
            continue;
        }
        let lo = line.saturating_sub(POLL_WINDOW).max(1);
        let hi = (line + POLL_WINDOW).min(lexed.line_count());
        let polled = (lo..=hi).any(|l| {
            let t = lexed.masked_line(l);
            POLL_TOKENS.iter().any(|tok| t.contains(tok))
        });
        if !polled {
            out.push(Violation {
                rule: "cancel-poll-coverage",
                path: path.to_string(),
                line,
                message: format!(
                    "fault point `{point}` has no cancellation poll within {POLL_WINDOW} \
                     lines: poll `is_cancelled` / `check(cancel, ..)` in the same stage"
                ),
            });
        }
    }
}
