//! The seeded violation corpus and the self-test that keeps every rule
//! honest.
//!
//! Each fixture under `crates/conformance/corpus/` is a standalone `.rs`
//! file (never compiled — the directory is not a module and the walker skips
//! it) whose first line declares the *pretend* workspace path the rules
//! should see:
//!
//! ```text
//! //! conformance-fixture: path=crates/server/src/fake_handler.rs
//! ```
//!
//! Every line that must be flagged carries a `//~ <rule-name>` marker in a
//! trailing line comment (one marker comment can list several space-separated
//! rule names). The self-test fails if any marked line is *not* flagged
//! (a rule went blind) or any unmarked line *is* flagged (a rule overfires).

use std::fs;
use std::path::Path;

use crate::lexer::{LexedFile, SpanKind};
use crate::rules::{check_file, RULES};

/// Outcome of running the rules over the seeded corpus.
pub struct SelfTestReport {
    /// Per-rule number of expected (seeded) violations.
    pub expected_per_rule: Vec<(&'static str, usize)>,
    /// Human-readable failures; empty means the self-test passed.
    pub failures: Vec<String>,
}

impl SelfTestReport {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run every rule over every corpus fixture and compare against the `//~`
/// markers. The workspace allowlist is deliberately *not* applied: the
/// corpus tests the raw rules.
pub fn run_self_test(workspace_root: &Path) -> SelfTestReport {
    let corpus_dir = workspace_root.join("crates/conformance/corpus");
    let mut failures = Vec::new();
    let mut expected_counts: Vec<(&'static str, usize)> =
        RULES.iter().map(|r| (r.name, 0usize)).collect();

    let mut entries: Vec<_> = match fs::read_dir(&corpus_dir) {
        Ok(rd) => rd.filter_map(Result::ok).map(|e| e.path()).collect(),
        Err(err) => {
            failures.push(format!(
                "cannot read corpus dir {}: {err}",
                corpus_dir.display()
            ));
            return SelfTestReport {
                expected_per_rule: expected_counts,
                failures,
            };
        }
    };
    entries.retain(|p| p.extension().is_some_and(|e| e == "rs"));
    entries.sort();
    if entries.is_empty() {
        failures.push(format!(
            "corpus dir {} holds no fixtures",
            corpus_dir.display()
        ));
    }

    for fixture in entries {
        let fname = fixture
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = match fs::read_to_string(&fixture) {
            Ok(t) => t,
            Err(err) => {
                failures.push(format!("{fname}: unreadable: {err}"));
                continue;
            }
        };
        let lexed = LexedFile::lex(&text);
        let Some(pretend_path) = fixture_path(&lexed) else {
            failures.push(format!(
                "{fname}: first line must be `//! conformance-fixture: path=<workspace path>`"
            ));
            continue;
        };

        let expected = expected_markers(&lexed, &fname, &mut failures);
        for (_, rule) in &expected {
            if let Some(slot) = expected_counts.iter_mut().find(|(r, _)| r == rule) {
                slot.1 += 1;
            }
        }

        let mut actual = Vec::new();
        check_file(&pretend_path, &lexed, &mut actual);
        let mut actual: Vec<(usize, String)> = actual
            .into_iter()
            .map(|v| (v.line, v.rule.to_string()))
            .collect();
        actual.sort();
        actual.dedup();

        for (line, rule) in &expected {
            if !actual.iter().any(|(l, r)| l == line && r == rule) {
                failures.push(format!(
                    "{fname}:{line}: rule `{rule}` went blind — seeded violation not flagged"
                ));
            }
        }
        for (line, rule) in &actual {
            if !expected.iter().any(|(l, r)| l == line && r == rule) {
                failures.push(format!(
                    "{fname}:{line}: rule `{rule}` overfires — finding on an unmarked line"
                ));
            }
        }
    }

    // Every rule must have at least one seeded violation, otherwise the
    // corpus itself has gone blind for that rule.
    for (rule, count) in &expected_counts {
        if *count == 0 {
            failures.push(format!(
                "corpus has no seeded violation for rule `{rule}` — the self-test cannot \
                 detect that rule going blind"
            ));
        }
    }

    SelfTestReport {
        expected_per_rule: expected_counts,
        failures,
    }
}

/// Extract the pretend workspace path from the fixture header comment.
fn fixture_path(lexed: &LexedFile) -> Option<String> {
    for span in &lexed.spans {
        if span.kind != SpanKind::LineComment {
            continue;
        }
        let text = &lexed.text[span.start..span.end];
        let trimmed = text.trim_start_matches('/').trim_start_matches('!').trim();
        if let Some(rest) = trimmed.strip_prefix("conformance-fixture:") {
            if let Some(path) = rest.trim().strip_prefix("path=") {
                return Some(path.trim().to_string());
            }
        }
    }
    None
}

/// Collect `(line, rule)` expectations from `//~` marker comments. Markers
/// are read through the lexer, so `//~` inside a string literal is not a
/// marker.
fn expected_markers(
    lexed: &LexedFile,
    fname: &str,
    failures: &mut Vec<String>,
) -> Vec<(usize, String)> {
    let mut expected = Vec::new();
    for span in &lexed.spans {
        if span.kind != SpanKind::LineComment {
            continue;
        }
        let text = &lexed.text[span.start..span.end];
        let Some(rest) = text.strip_prefix("//~") else {
            continue;
        };
        let line = lexed.line_of(span.start);
        for rule in rest.split_whitespace() {
            if crate::rules::rule_by_name(rule).is_none() {
                failures.push(format!(
                    "{fname}:{line}: marker names unknown rule `{rule}`"
                ));
                continue;
            }
            expected.push((line, rule.to_string()));
        }
    }
    expected.sort();
    expected.dedup();
    expected
}
