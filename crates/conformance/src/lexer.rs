//! A small single-pass lexer for Rust source files.
//!
//! The conformance rules do not need a parse tree — they need to know, for
//! every byte of a source file, whether it is *code*, a *comment*, or the
//! body of a *literal*, and for every line whether it lives inside a test
//! region (`#[cfg(test)]` items, `#[test]` functions, `mod tests { .. }`).
//! This module classifies exactly that, handling the lexical constructs that
//! trip up naive substring scans: escaped quotes, raw strings with arbitrary
//! `#` fences, byte strings, nested block comments, and the `'a` lifetime vs
//! `'a'` char-literal ambiguity.

/// Classification of a byte range of the source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Ordinary code (identifiers, punctuation, attributes, whitespace).
    Code,
    /// A `//`-style comment (including `///` and `//!` doc comments).
    LineComment,
    /// A `/* .. */` comment, possibly nested.
    BlockComment,
    /// A `"…"` or `b"…"` string literal.
    Str,
    /// A raw string literal `r"…"`, `r#"…"#`, `br##"…"##`, …
    RawStr,
    /// A char or byte literal (`'a'`, `b'\n'`, `'\u{1F600}'`).
    Char,
}

/// A half-open byte range `[start, end)` of the source with its kind.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    pub kind: SpanKind,
    pub start: usize,
    pub end: usize,
}

/// The result of lexing one source file.
pub struct LexedFile {
    /// The original source text.
    pub text: String,
    /// The source with every non-`Code` span blanked to spaces (newlines are
    /// preserved so byte offsets and line numbers stay aligned). Substring
    /// searches over `masked` cannot match inside comments or literals.
    pub masked: String,
    /// All spans, in order, covering the whole file.
    pub spans: Vec<Span>,
    /// `test_lines[i]` is true when 1-indexed line `i + 1` is inside a test
    /// region. Indexed by line number minus one.
    test_lines: Vec<bool>,
    /// Byte offset of the start of each 1-indexed line.
    line_starts: Vec<usize>,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl LexedFile {
    /// Lex `text` into classified spans plus the derived masked view and
    /// test-region line map.
    pub fn lex(text: &str) -> Self {
        let spans = scan_spans(text.as_bytes());
        let masked = build_masked(text, &spans);
        let line_starts = compute_line_starts(text);
        let test_lines = mark_test_regions(&masked, &line_starts);
        LexedFile {
            text: text.to_string(),
            masked,
            spans,
            test_lines,
            line_starts,
        }
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// 1-indexed line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether 1-indexed `line` lies inside a `#[cfg(test)]` / `#[test]` /
    /// `mod tests` region.
    pub fn is_test_line(&self, line: usize) -> bool {
        line >= 1 && self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// The original text of 1-indexed `line` (without its newline).
    pub fn line_text(&self, line: usize) -> &str {
        self.slice_line(&self.text, line)
    }

    /// The masked text of 1-indexed `line` (without its newline).
    pub fn masked_line(&self, line: usize) -> &str {
        self.slice_line(&self.masked, line)
    }

    fn slice_line<'a>(&self, source: &'a str, line: usize) -> &'a str {
        if line == 0 || line > self.line_starts.len() {
            return "";
        }
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|next| next - 1)
            .unwrap_or(source.len());
        &source[start..end.max(start)]
    }

    /// Byte offsets of every whole-word occurrence of `word` in the masked
    /// text (neighbouring bytes are not identifier characters).
    pub fn find_code_word(&self, word: &str) -> Vec<usize> {
        let bytes = self.masked.as_bytes();
        let mut hits = Vec::new();
        let mut from = 0;
        while let Some(pos) = self.masked[from..].find(word) {
            let at = from + pos;
            let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
            let after = at + word.len();
            let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
            if before_ok && after_ok {
                hits.push(at);
            }
            from = at + word.len().max(1);
        }
        hits
    }

    /// Byte offsets of every occurrence of `needle` in the masked text, with
    /// only the *leading* boundary required to be a non-identifier byte.
    pub fn find_code_prefixed(&self, needle: &str) -> Vec<usize> {
        let bytes = self.masked.as_bytes();
        let mut hits = Vec::new();
        let mut from = 0;
        while let Some(pos) = self.masked[from..].find(needle) {
            let at = from + pos;
            let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
            if before_ok {
                hits.push(at);
            }
            from = at + needle.len().max(1);
        }
        hits
    }
}

fn compute_line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' && i + 1 < text.len() {
            starts.push(i + 1);
        }
    }
    starts
}

fn build_masked(text: &str, spans: &[Span]) -> String {
    let mut bytes = text.as_bytes().to_vec();
    for span in spans {
        if span.kind == SpanKind::Code {
            continue;
        }
        for b in &mut bytes[span.start..span.end] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    }
    String::from_utf8(bytes).expect("masking replaces whole spans with ASCII spaces")
}

/// Scan the byte stream into alternating code / non-code spans.
fn scan_spans(bytes: &[u8]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut code_start = 0;
    let mut i = 0;
    let n = bytes.len();
    let flush_code = |spans: &mut Vec<Span>, code_start: usize, end: usize| {
        if end > code_start {
            spans.push(Span {
                kind: SpanKind::Code,
                start: code_start,
                end,
            });
        }
    };
    while i < n {
        let b = bytes[i];
        // Line comment.
        if b == b'/' && i + 1 < n && bytes[i + 1] == b'/' {
            flush_code(&mut spans, code_start, i);
            let start = i;
            while i < n && bytes[i] != b'\n' {
                i += 1;
            }
            spans.push(Span {
                kind: SpanKind::LineComment,
                start,
                end: i,
            });
            code_start = i;
            continue;
        }
        // Block comment (nested).
        if b == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
            flush_code(&mut spans, code_start, i);
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            spans.push(Span {
                kind: SpanKind::BlockComment,
                start,
                end: i,
            });
            code_start = i;
            continue;
        }
        // Raw string (r"…", r#"…"#) and byte raw string (br#"…"#).
        if b == b'r' || (b == b'b' && i + 1 < n && bytes[i + 1] == b'r') {
            let prefix = if b == b'b' { 2 } else { 1 };
            let prev_is_ident = i > 0 && is_ident_byte(bytes[i - 1]);
            if !prev_is_ident {
                let mut j = i + prefix;
                let mut hashes = 0usize;
                while j < n && bytes[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && bytes[j] == b'"' {
                    flush_code(&mut spans, code_start, i);
                    let start = i;
                    i = j + 1;
                    // Find `"` followed by `hashes` `#` bytes.
                    'raw: while i < n {
                        if bytes[i] == b'"' {
                            let mut k = 0;
                            while k < hashes && i + 1 + k < n && bytes[i + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                    spans.push(Span {
                        kind: SpanKind::RawStr,
                        start,
                        end: i,
                    });
                    code_start = i;
                    continue;
                }
            }
        }
        // String literal ("…", b"…").
        if b == b'"' || (b == b'b' && i + 1 < n && bytes[i + 1] == b'"') {
            let prev_is_ident = b == b'b' && i > 0 && is_ident_byte(bytes[i - 1]);
            if !prev_is_ident {
                flush_code(&mut spans, code_start, i);
                let start = i;
                i += if b == b'b' { 2 } else { 1 };
                while i < n {
                    if bytes[i] == b'\\' {
                        i += 2;
                    } else if bytes[i] == b'"' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
                spans.push(Span {
                    kind: SpanKind::Str,
                    start,
                    end: i.min(n),
                });
                code_start = i.min(n);
                continue;
            }
        }
        // Char literal vs lifetime.
        if b == b'\'' || (b == b'b' && i + 1 < n && bytes[i + 1] == b'\'') {
            let prev_is_ident = b == b'b' && i > 0 && is_ident_byte(bytes[i - 1]);
            if !prev_is_ident {
                let quote = if b == b'b' { i + 1 } else { i };
                if let Some(end) = char_literal_end(bytes, quote) {
                    flush_code(&mut spans, code_start, i);
                    spans.push(Span {
                        kind: SpanKind::Char,
                        start: i,
                        end,
                    });
                    i = end;
                    code_start = i;
                    continue;
                }
                // A lifetime: skip the quote so `'a'`-style lookahead does not
                // re-trigger on the identifier.
                i = quote + 1;
                continue;
            }
        }
        i += 1;
    }
    flush_code(&mut spans, code_start, n);
    spans
}

/// If the `'` at `quote` starts a char literal, return the byte offset one
/// past its closing quote. Returns `None` for lifetimes (`'a`, `'static`).
fn char_literal_end(bytes: &[u8], quote: usize) -> Option<usize> {
    let n = bytes.len();
    if quote + 1 >= n {
        return None;
    }
    let next = bytes[quote + 1];
    if next == b'\\' {
        // Escaped char: scan to the closing quote (handles '\n', '\'', '\u{…}').
        let mut i = quote + 2;
        if i < n {
            i += 1; // the escaped byte itself
        }
        while i < n && bytes[i] != b'\'' && bytes[i] != b'\n' {
            i += 1;
        }
        if i < n && bytes[i] == b'\'' {
            return Some(i + 1);
        }
        return None;
    }
    if is_ident_byte(next) && next.is_ascii() {
        // `'a'` is a char literal; `'a` followed by anything else is a
        // lifetime (or a loop label).
        if quote + 2 < n && bytes[quote + 2] == b'\'' {
            return Some(quote + 3);
        }
        return None;
    }
    if next == b'\'' || next == b'\n' {
        return None;
    }
    // Punctuation or a multi-byte UTF-8 char: scan to the closing quote.
    let mut i = quote + 1;
    while i < n && bytes[i] != b'\'' && bytes[i] != b'\n' {
        i += 1;
    }
    if i < n && bytes[i] == b'\'' && i > quote + 1 {
        return Some(i + 1);
    }
    None
}

/// Mark lines covered by `#[cfg(test)]` items, `#[test]` functions, and
/// `mod tests { .. }` blocks. Operates on the masked text so literals and
/// comments cannot fake a region boundary.
fn mark_test_regions(masked: &str, line_starts: &[usize]) -> Vec<bool> {
    let mut flags = vec![false; line_starts.len()];
    let bytes = masked.as_bytes();
    let line_of = |offset: usize| -> usize {
        match line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    };
    let mark = |from: usize, to: usize, flags: &mut Vec<bool>| {
        let (a, b) = (
            line_of(from),
            line_of(to.min(bytes.len().saturating_sub(1))),
        );
        for f in flags.iter_mut().take(b + 1).skip(a) {
            *f = true;
        }
    };
    for pattern in [
        "#[cfg(test)]",
        "#[test]",
        "#[cfg(all(test",
        "#[cfg(any(test",
    ] {
        let mut from = 0;
        while let Some(pos) = masked[from..].find(pattern) {
            let at = from + pos;
            if let Some(end) = item_extent(bytes, at) {
                mark(at, end, &mut flags);
            }
            from = at + pattern.len();
        }
    }
    // `mod tests { .. }` even without a cfg attribute.
    let mut from = 0;
    while let Some(pos) = masked[from..].find("mod tests") {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + "mod tests".len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            if let Some(end) = item_extent(bytes, at) {
                mark(at, end, &mut flags);
            }
        }
        from = at + "mod tests".len();
    }
    flags
}

/// From the start of an attribute or item at `at`, find the byte offset of
/// the end of the item: the matching `}` of its first body brace, or the
/// first top-level `;` for brace-less items.
fn item_extent(bytes: &[u8], at: usize) -> Option<usize> {
    let n = bytes.len();
    let mut i = at;
    // Step over the attribute's own brackets first so `#[cfg(test)]` does not
    // terminate the search at its own `]`.
    let mut depth = 0isize;
    let mut seen_brace = false;
    while i < n {
        match bytes[i] {
            b'{' => {
                depth += 1;
                seen_brace = true;
            }
            b'}' => {
                depth -= 1;
                if seen_brace && depth == 0 {
                    return Some(i);
                }
            }
            b';' if !seen_brace && depth == 0 && !in_attribute_head(bytes, at, i) => {
                return Some(i);
            }
            _ => {}
        }
        i += 1;
    }
    Some(n.saturating_sub(1))
}

/// True when offset `i` still lies within the `#[...]` attribute head that
/// starts at `at` (bracket depth has not returned to zero).
fn in_attribute_head(bytes: &[u8], at: usize, i: usize) -> bool {
    if bytes[at] != b'#' {
        return false;
    }
    let mut depth = 0isize;
    for &b in &bytes[at..=i] {
        match b {
            b'[' => depth += 1,
            b']' => depth -= 1,
            _ => {}
        }
    }
    depth > 0
}
