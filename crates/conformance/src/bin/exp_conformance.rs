//! Workspace conformance scanner.
//!
//! ```text
//! exp_conformance                 # self-test the rules, then scan the workspace
//! exp_conformance --scan-only     # skip the corpus self-test
//! exp_conformance --self-test     # corpus self-test only
//! exp_conformance --explain RULE  # print one rule's rationale
//! exp_conformance --list          # list all rules
//! exp_conformance --root DIR      # scan an explicit workspace root
//! ```
//!
//! Exit status is non-zero when any violation is found or any rule goes
//! blind on the seeded corpus.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut self_test = true;
    let mut scan = true;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--explain" => {
                let Some(name) = args.next() else {
                    eprintln!("--explain needs a rule name; try --list");
                    return ExitCode::from(2);
                };
                return explain(&name);
            }
            "--list" => {
                for rule in conformance::RULES {
                    println!("{:<28} {}", rule.name, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--self-test" => {
                scan = false;
            }
            "--scan-only" => {
                self_test = false;
            }
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(dir));
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: exp_conformance [--self-test|--scan-only] [--explain RULE] [--list] [--root DIR]");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| conformance::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!(
                "could not locate a workspace root (no Cargo.toml with [workspace]); use --root"
            );
            return ExitCode::from(2);
        }
    };

    let mut failed = false;

    if self_test {
        let report = conformance::run_self_test(&root);
        for (rule, count) in &report.expected_per_rule {
            println!("self-test: rule {rule:<28} seeded violations flagged: {count}");
        }
        if report.passed() {
            println!("self-test: PASS — no rule is blind, no rule overfires on the corpus");
        } else {
            for failure in &report.failures {
                eprintln!("self-test: FAIL {failure}");
            }
            failed = true;
        }
    }

    if scan {
        match conformance::scan_workspace(&root) {
            Ok(violations) if violations.is_empty() => {
                println!(
                    "scan: PASS — zero conformance violations in {}",
                    root.display()
                );
            }
            Ok(violations) => {
                for v in &violations {
                    eprintln!("{}", v.render());
                }
                eprintln!("scan: FAIL — {} violation(s)", violations.len());
                failed = true;
            }
            Err(err) => {
                eprintln!("scan: error walking {}: {err}", root.display());
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn explain(name: &str) -> ExitCode {
    match conformance::rule_by_name(name) {
        Some(rule) => {
            println!("{} — {}\n", rule.name, rule.summary);
            println!("{}", rule.explain);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown rule `{name}`; known rules:");
            for rule in conformance::RULES {
                eprintln!("  {}", rule.name);
            }
            ExitCode::from(2)
        }
    }
}
