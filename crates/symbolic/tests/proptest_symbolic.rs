//! Property-based tests for the symbolic factorization and the assembly-tree
//! construction.
//!
//! The environment is offline, so instead of `proptest` these tests draw a
//! deterministic battery of random instances from the `prng` crate: every
//! case is reproducible from its seed, printed in assertion messages.

use prng::{Rng, StdRng};

use ordering::mindeg::fill_in;
use ordering::{OrderingMethod, Permutation};
use sparsemat::SparsePattern;
use symbolic::{amalgamate, column_counts, elimination_tree, etree_postorder};
use treemem::tree::Size;

fn arbitrary_pattern(seed: u64, max_n: usize, max_edges: usize) -> SparsePattern {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..=max_n);
    let count = rng.gen_range(0..=max_edges);
    let edges: Vec<(usize, usize)> = (0..count)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    SparsePattern::from_edges(n, &edges)
}

#[test]
fn etree_parents_are_larger_and_counts_match_fill() {
    for seed in 0..48 {
        let pattern = arbitrary_pattern(seed, 35, 120);
        let etree = elimination_tree(&pattern);
        for j in 0..pattern.n() {
            if let Some(p) = etree.parent(j) {
                assert!(p > j, "seed {seed}");
            }
        }
        let counts = column_counts(&pattern, &etree);
        // Column counts are consistent with the independent fill computation
        // of the ordering crate (identity permutation).
        let identity = Permutation::identity(pattern.n());
        assert_eq!(
            counts.iter().sum::<usize>(),
            fill_in(&pattern, &identity),
            "seed {seed}"
        );
        // Each count is at least 1 and at most the number of remaining columns.
        for (j, &c) in counts.iter().enumerate() {
            assert!(c >= 1 && c <= pattern.n() - j, "seed {seed}");
        }
    }
}

#[test]
fn etree_postorder_is_a_valid_bottom_up_order() {
    for seed in 100..148 {
        let pattern = arbitrary_pattern(seed, 35, 120);
        let etree = elimination_tree(&pattern);
        let order = etree_postorder(&etree);
        assert_eq!(order.len(), pattern.n(), "seed {seed}");
        let mut position = vec![usize::MAX; pattern.n()];
        for (idx, &node) in order.iter().enumerate() {
            assert_eq!(position[node], usize::MAX, "seed {seed}");
            position[node] = idx;
        }
        for j in 0..pattern.n() {
            if let Some(p) = etree.parent(j) {
                assert!(position[j] < position[p], "seed {seed}");
            }
        }
    }
}

#[test]
fn amalgamation_always_yields_valid_weighted_trees() {
    for seed in 200..248 {
        let pattern = arbitrary_pattern(seed, 35, 120);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5);
        let allowance = rng.gen_range(1usize..20);
        let etree = elimination_tree(&pattern);
        let counts = column_counts(&pattern, &etree);
        let assembly = amalgamate(&etree, &counts, allowance);
        // Groups partition the columns.
        let grouped: usize = assembly.eta.iter().sum();
        assert_eq!(grouped, pattern.n(), "seed {seed}");
        // Weights follow the paper's formulas and are non-negative.
        for g in 0..assembly.len() {
            if assembly.groups[g].is_empty() {
                continue; // virtual root of a forest
            }
            let eta = assembly.eta[g] as Size;
            let mu = assembly.mu[g] as Size;
            assert!(mu >= 1, "seed {seed}");
            assert_eq!(
                assembly.tree.n(g),
                eta * eta + 2 * eta * (mu - 1),
                "seed {seed}"
            );
            assert!(assembly.tree.f(g) >= 0, "seed {seed}");
            if assembly.tree.parent(g).is_some() {
                assert_eq!(assembly.tree.f(g), (mu - 1) * (mu - 1), "seed {seed}");
            } else {
                assert_eq!(assembly.tree.f(g), 0, "seed {seed}");
            }
        }
        // The tree is well formed: exactly one root, every group reachable.
        let roots = assembly
            .tree
            .nodes()
            .filter(|&i| assembly.tree.parent(i).is_none())
            .count();
        assert_eq!(roots, 1, "seed {seed}");
        // The MinMemory algorithms accept the tree (no panics, exact bounds).
        let opt = treemem::minmem::min_mem(&assembly.tree);
        assert!(opt.peak >= assembly.tree.max_mem_req(), "seed {seed}");
    }
}

#[test]
fn larger_allowances_do_not_grow_the_tree() {
    for seed in 300..348 {
        let pattern = arbitrary_pattern(seed, 30, 100);
        let etree = elimination_tree(&pattern);
        let counts = column_counts(&pattern, &etree);
        let mut previous = usize::MAX;
        for allowance in [1usize, 2, 4, 8, 16] {
            let assembly = amalgamate(&etree, &counts, allowance);
            assert!(assembly.len() <= previous, "seed {seed}");
            previous = assembly.len();
        }
    }
}

#[test]
fn pipeline_works_for_every_ordering() {
    for seed in 400..448 {
        let pattern = arbitrary_pattern(seed, 25, 80);
        for method in OrderingMethod::ALL {
            let assembly = symbolic::assembly_tree_for(&pattern, method, 4);
            assert!(!assembly.is_empty(), "seed {seed}");
            assert!(assembly.len() <= pattern.n() + 1, "seed {seed}");
            let grouped: usize = assembly.eta.iter().sum();
            assert_eq!(grouped, pattern.n(), "seed {seed}, {}", method.name());
        }
    }
}
