//! Property-based tests for the symbolic factorization and the assembly-tree
//! construction.

use proptest::prelude::*;

use ordering::mindeg::fill_in;
use ordering::{OrderingMethod, Permutation};
use sparsemat::SparsePattern;
use symbolic::{amalgamate, column_counts, elimination_tree, etree_postorder};
use treemem::tree::Size;

fn arbitrary_pattern(max_n: usize, max_edges: usize) -> impl Strategy<Value = SparsePattern> {
    (2..=max_n)
        .prop_flat_map(move |n| {
            (Just(n), proptest::collection::vec((0..n, 0..n), 0..=max_edges))
        })
        .prop_map(|(n, edges)| SparsePattern::from_edges(n, &edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn etree_parents_are_larger_and_counts_match_fill(pattern in arbitrary_pattern(35, 120)) {
        let etree = elimination_tree(&pattern);
        for j in 0..pattern.n() {
            if let Some(p) = etree.parent(j) {
                prop_assert!(p > j);
            }
        }
        let counts = column_counts(&pattern, &etree);
        // Column counts are consistent with the independent fill computation
        // of the ordering crate (identity permutation).
        let identity = Permutation::identity(pattern.n());
        prop_assert_eq!(counts.iter().sum::<usize>(), fill_in(&pattern, &identity));
        // Each count is at least 1 and at most the number of remaining columns.
        for (j, &c) in counts.iter().enumerate() {
            prop_assert!(c >= 1 && c <= pattern.n() - j);
        }
    }

    #[test]
    fn etree_postorder_is_a_valid_bottom_up_order(pattern in arbitrary_pattern(35, 120)) {
        let etree = elimination_tree(&pattern);
        let order = etree_postorder(&etree);
        prop_assert_eq!(order.len(), pattern.n());
        let mut position = vec![usize::MAX; pattern.n()];
        for (idx, &node) in order.iter().enumerate() {
            prop_assert_eq!(position[node], usize::MAX);
            position[node] = idx;
        }
        for j in 0..pattern.n() {
            if let Some(p) = etree.parent(j) {
                prop_assert!(position[j] < position[p]);
            }
        }
    }

    #[test]
    fn amalgamation_always_yields_valid_weighted_trees(
        pattern in arbitrary_pattern(35, 120),
        allowance in 1usize..20,
    ) {
        let etree = elimination_tree(&pattern);
        let counts = column_counts(&pattern, &etree);
        let assembly = amalgamate(&etree, &counts, allowance);
        // Groups partition the columns.
        let grouped: usize = assembly.eta.iter().sum();
        prop_assert_eq!(grouped, pattern.n());
        // Weights follow the paper's formulas and are non-negative.
        for g in 0..assembly.len() {
            if assembly.groups[g].is_empty() {
                continue; // virtual root of a forest
            }
            let eta = assembly.eta[g] as Size;
            let mu = assembly.mu[g] as Size;
            prop_assert!(mu >= 1);
            prop_assert_eq!(assembly.tree.n(g), eta * eta + 2 * eta * (mu - 1));
            prop_assert!(assembly.tree.f(g) >= 0);
            if assembly.tree.parent(g).is_some() {
                prop_assert_eq!(assembly.tree.f(g), (mu - 1) * (mu - 1));
            } else {
                prop_assert_eq!(assembly.tree.f(g), 0);
            }
        }
        // The tree is well formed: exactly one root, every group reachable.
        let roots = assembly.tree.nodes().filter(|&i| assembly.tree.parent(i).is_none()).count();
        prop_assert_eq!(roots, 1);
        // The MinMemory algorithms accept the tree (no panics, exact bounds).
        let opt = treemem::minmem::min_mem(&assembly.tree);
        prop_assert!(opt.peak >= assembly.tree.max_mem_req());
    }

    #[test]
    fn larger_allowances_do_not_grow_the_tree(pattern in arbitrary_pattern(30, 100)) {
        let etree = elimination_tree(&pattern);
        let counts = column_counts(&pattern, &etree);
        let mut previous = usize::MAX;
        for allowance in [1usize, 2, 4, 8, 16] {
            let assembly = amalgamate(&etree, &counts, allowance);
            prop_assert!(assembly.len() <= previous);
            previous = assembly.len();
        }
    }

    #[test]
    fn pipeline_works_for_every_ordering(pattern in arbitrary_pattern(25, 80)) {
        for method in OrderingMethod::ALL {
            let assembly = symbolic::assembly_tree_for(&pattern, method, 4);
            prop_assert!(assembly.len() >= 1);
            prop_assert!(assembly.len() <= pattern.n() + 1);
            let grouped: usize = assembly.eta.iter().sum();
            prop_assert_eq!(grouped, pattern.n(), "{}", method.name());
        }
    }
}
