//! Node amalgamation and assembly-tree construction (Section VI-B of the
//! paper).
//!
//! The elimination tree has one node per column, which makes frontal
//! matrices too small for efficient dense kernels; real multifrontal codes
//! therefore *amalgamate* columns into supernode-like groups.  Following the
//! paper:
//!
//! * **perfect amalgamations** are always applied: a column that is the only
//!   child of its parent and whose column count exceeds the parent's by
//!   exactly one is merged into it (the two columns have the same structure
//!   below the diagonal);
//! * **relaxed amalgamations** are bounded by a parameter (1, 2, 4 or 16 in
//!   the paper): a node may absorb its *densest* child group as long as the
//!   resulting group does not exceed the allowance.
//!
//! Every assembly node carries the weights used in the paper's experiments:
//! the execution weight `η² + 2η(µ − 1)` (the frontal matrix minus the
//! contribution block) and the input-file weight `(µ − 1)²` (the contribution
//! block sent to the parent), where `η` is the number of amalgamated columns
//! and `µ` the column count of the highest column of the group.

use treemem::tree::Size;
use treemem::Tree;

use crate::etree::EliminationTree;

/// An assembly tree: the amalgamated elimination tree together with the
/// weighted [`treemem::Tree`] used by the traversal algorithms.
#[derive(Debug, Clone)]
pub struct AssemblyTree {
    /// The weighted tree (in the out-tree orientation used by `treemem`;
    /// the input file of a node is the contribution block it exchanges with
    /// its parent, and the root has an empty input file).
    pub tree: Tree,
    /// For every assembly node, the columns of the original (permuted) matrix
    /// amalgamated into it; the first column is the highest (the group
    /// representative, closest to the root of the elimination tree).
    pub groups: Vec<Vec<usize>>,
    /// `η` of every assembly node (number of amalgamated columns).
    pub eta: Vec<usize>,
    /// `µ` of every assembly node (column count of the highest column).
    pub mu: Vec<usize>,
}

impl AssemblyTree {
    /// Number of assembly nodes.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the assembly tree is empty.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Ratio of assembly nodes to original columns (1.0 means no
    /// amalgamation happened).
    pub fn compression(&self) -> f64 {
        let columns: usize = self.eta.iter().sum();
        self.len() as f64 / columns as f64
    }
}

/// Build the assembly tree of an elimination forest with the given column
/// counts and relaxed-amalgamation allowance (`max_amalgamation` is the
/// maximum number of columns per assembly node for *relaxed* merges; perfect
/// merges ignore the allowance, as in the paper).
///
/// When the elimination structure is a forest (reducible matrix), a virtual
/// root with empty files ties the trees together so the result is a single
/// tree, which is what the traversal algorithms expect.
///
/// # Panics
/// Panics if `counts` does not have one entry per column or if
/// `max_amalgamation` is zero.
pub fn amalgamate(
    etree: &EliminationTree,
    counts: &[usize],
    max_amalgamation: usize,
) -> AssemblyTree {
    let n = etree.len();
    assert_eq!(counts.len(), n, "one column count per column expected");
    assert!(
        max_amalgamation >= 1,
        "the amalgamation allowance must be at least 1"
    );

    // Union-find: every column points to the representative (highest column)
    // of its group.
    let mut representative: Vec<usize> = (0..n).collect();
    let mut group_size: Vec<usize> = vec![1; n];
    let children = etree.children();

    fn find(representative: &mut [usize], mut x: usize) -> usize {
        while representative[x] != x {
            representative[x] = representative[representative[x]];
            x = representative[x];
        }
        x
    }

    // Process columns bottom-up (children have smaller indices than their
    // parent in an elimination tree).
    for p in 0..n {
        if children[p].is_empty() {
            continue;
        }
        // Perfect amalgamation: single child with identical structure below
        // the diagonal.
        if children[p].len() == 1 {
            let c = children[p][0];
            if counts[c] == counts[p] + 1 {
                let child_group = find(&mut representative, c);
                representative[child_group] = p;
                group_size[p] += group_size[child_group];
                continue;
            }
        }
        // Relaxed amalgamation: absorb the densest child group while the
        // allowance permits.
        loop {
            let p_group = find(&mut representative, p);
            if group_size[p_group] >= max_amalgamation {
                break;
            }
            // Child groups not yet merged into p, pick the densest (largest
            // column count of its representative column).
            let mut child_groups: Vec<usize> = children[p]
                .iter()
                .map(|&c| find(&mut representative, c))
                .filter(|&g| g != p_group)
                .collect();
            child_groups.sort_unstable();
            child_groups.dedup();
            let candidate = child_groups.into_iter().max_by_key(|&g| (counts[g], g));
            let Some(candidate) = candidate else { break };
            if group_size[p_group] + group_size[candidate] > max_amalgamation {
                break;
            }
            representative[candidate] = p_group;
            group_size[p_group] += group_size[candidate];
        }
    }

    // Collect the groups: the representative of a group is its highest
    // column.
    let mut group_of_column = vec![usize::MAX; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_index_of_rep = vec![usize::MAX; n];
    for column in (0..n).rev() {
        let rep = find(&mut representative, column);
        if group_index_of_rep[rep] == usize::MAX {
            group_index_of_rep[rep] = groups.len();
            groups.push(Vec::new());
        }
        let g = group_index_of_rep[rep];
        groups[g].push(column);
        group_of_column[column] = g;
    }

    // Assembly-tree parents: the group of the elimination-tree parent of the
    // group's representative.
    let num_groups = groups.len();
    let mut parents: Vec<Option<usize>> = vec![None; num_groups];
    for (g, columns) in groups.iter().enumerate() {
        let representative_column = columns[0];
        let mut up = etree.parent(representative_column);
        // Skip ancestors that landed in the same group (cannot happen for the
        // representative, which is the highest column of its group, but stay
        // defensive).
        while let Some(candidate) = up {
            if group_of_column[candidate] != g {
                break;
            }
            up = etree.parent(candidate);
        }
        parents[g] = up.map(|column| group_of_column[column]);
    }

    // Weights.
    let eta: Vec<usize> = groups.iter().map(Vec::len).collect();
    let mu: Vec<usize> = groups.iter().map(|columns| counts[columns[0]]).collect();
    let node_weight = |g: usize| -> Size {
        let eta = eta[g] as Size;
        let mu = mu[g] as Size;
        eta * eta + 2 * eta * (mu - 1)
    };
    let edge_weight = |g: usize| -> Size {
        let mu = mu[g] as Size;
        (mu - 1) * (mu - 1)
    };

    // Tie a forest together under a virtual root with empty files.
    let num_roots = parents.iter().filter(|p| p.is_none()).count();
    let (tree_parents, mut files, mut weights, groups, eta, mu) = if num_roots > 1 {
        let virtual_root = num_groups;
        let mut tree_parents: Vec<Option<usize>> = parents
            .iter()
            .map(|&p| Some(p.unwrap_or(virtual_root)))
            .collect();
        tree_parents.push(None);
        let mut files: Vec<Size> = (0..num_groups).map(edge_weight).collect();
        files.push(0);
        let mut weights: Vec<Size> = (0..num_groups).map(node_weight).collect();
        weights.push(0);
        let mut groups = groups;
        groups.push(Vec::new());
        let mut eta = eta;
        eta.push(0);
        let mut mu = mu;
        mu.push(1);
        (tree_parents, files, weights, groups, eta, mu)
    } else {
        let tree_parents = parents.clone();
        let files: Vec<Size> = (0..num_groups).map(edge_weight).collect();
        let weights: Vec<Size> = (0..num_groups).map(node_weight).collect();
        (tree_parents, files, weights, groups, eta, mu)
    };

    // The root exchanges no contribution block with a parent.
    for (g, parent) in tree_parents.iter().enumerate() {
        if parent.is_none() {
            files[g] = 0;
        }
    }
    // Guard against degenerate zero-weight nodes produced by empty matrices.
    for w in weights.iter_mut() {
        if *w < 0 {
            *w = 0;
        }
    }

    let tree = Tree::from_parents(&tree_parents, &files, &weights)
        .expect("amalgamation always produces a valid tree");
    AssemblyTree {
        tree,
        groups,
        eta,
        mu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colcount::column_counts;
    use crate::etree::elimination_tree;
    use ordering::minimum_degree;
    use sparsemat::gen::{banded, grid2d_5pt};
    use sparsemat::SparsePattern;

    fn assembly_for(pattern: &SparsePattern, allowance: usize) -> AssemblyTree {
        let etree = elimination_tree(pattern);
        let counts = column_counts(pattern, &etree);
        amalgamate(&etree, &counts, allowance)
    }

    #[test]
    fn tridiagonal_collapses_under_perfect_amalgamation() {
        // Tridiagonal: every column has count 2 except the last (1); no
        // perfect merge is possible (counts[c] must equal counts[p] + 1),
        // except for the last pair (2 = 1 + 1).
        let tree = assembly_for(&banded(6, 1), 1);
        assert_eq!(tree.len(), 5);
        assert!(tree.eta.contains(&2));
        // Every node weight follows the formula.
        for g in 0..tree.len() {
            let eta = tree.eta[g] as Size;
            let mu = tree.mu[g] as Size;
            assert_eq!(tree.tree.n(g), eta * eta + 2 * eta * (mu - 1));
        }
    }

    #[test]
    fn dense_matrix_collapses_to_one_node() {
        // A dense matrix's elimination tree is a chain with counts n, n-1, ...;
        // every merge is perfect, so everything amalgamates into one node.
        let mut edges = Vec::new();
        for i in 0..6 {
            for j in 0..i {
                edges.push((i, j));
            }
        }
        let tree = assembly_for(&SparsePattern::from_edges(6, &edges), 1);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.eta[0], 6);
        // µ is the column count of the *highest* column of the group (the
        // root column has only its diagonal), so the contribution block is
        // empty and the execution weight is the full 6 × 6 frontal matrix.
        assert_eq!(tree.mu[0], 1);
        assert_eq!(tree.tree.n(0), 36);
        assert_eq!(tree.tree.f(0), 0, "the root has no contribution block");
    }

    #[test]
    fn larger_allowance_gives_smaller_trees() {
        let pattern = grid2d_5pt(9, 9);
        let perm = minimum_degree(&pattern);
        let permuted = perm.apply(&pattern);
        let sizes: Vec<usize> = [1usize, 2, 4, 16]
            .iter()
            .map(|&allowance| {
                let etree = elimination_tree(&permuted);
                let counts = column_counts(&permuted, &etree);
                amalgamate(&etree, &counts, allowance).len()
            })
            .collect();
        for pair in sizes.windows(2) {
            assert!(
                pair[1] <= pair[0],
                "a larger allowance cannot give a larger tree: {sizes:?}"
            );
        }
        assert!(
            sizes[3] < sizes[0],
            "allowance 16 must amalgamate something: {sizes:?}"
        );
    }

    #[test]
    fn groups_partition_the_columns() {
        let pattern = grid2d_5pt(8, 6);
        let assembly = assembly_for(&pattern, 4);
        let mut seen = vec![false; pattern.n()];
        for group in &assembly.groups {
            for &column in group {
                assert!(!seen[column], "column {column} in two groups");
                seen[column] = true;
            }
        }
        assert!(
            seen.into_iter().all(|s| s),
            "every column must appear in a group"
        );
        // Representative is the highest column of its group.
        for group in &assembly.groups {
            assert!(group.iter().all(|&c| c <= group[0]));
        }
        assert!(assembly.compression() <= 1.0);
    }

    #[test]
    fn weights_match_the_paper_formulas() {
        let pattern = grid2d_5pt(7, 7);
        let assembly = assembly_for(&pattern, 2);
        let tree = &assembly.tree;
        for g in 0..assembly.len() {
            let eta = assembly.eta[g] as Size;
            let mu = assembly.mu[g] as Size;
            if assembly.groups[g].is_empty() {
                continue; // virtual root
            }
            assert_eq!(tree.n(g), eta * eta + 2 * eta * (mu - 1));
            if tree.parent(g).is_some() {
                assert_eq!(tree.f(g), (mu - 1) * (mu - 1));
            } else {
                assert_eq!(tree.f(g), 0);
            }
        }
    }

    #[test]
    fn forest_inputs_get_a_virtual_root() {
        let pattern = SparsePattern::from_edges(7, &[(0, 1), (3, 4), (5, 6)]);
        let assembly = assembly_for(&pattern, 1);
        // Still a single tree for the traversal algorithms.
        assert!(assembly.tree.len() >= 3);
        assert_eq!(
            assembly
                .tree
                .nodes()
                .filter(|&i| assembly.tree.parent(i).is_none())
                .count(),
            1
        );
    }
}
