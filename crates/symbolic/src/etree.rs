//! Elimination trees (Liu's algorithm).

use sparsemat::SparsePattern;

/// The elimination tree of a (permuted) symmetric pattern: `parent[j]` is the
/// parent column of column `j` in the Cholesky factor, or `None` for roots
/// (column with an empty structure below the diagonal).  The structure is a
/// forest when the matrix is reducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminationTree {
    parent: Vec<Option<usize>>,
}

impl EliminationTree {
    /// Number of columns.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Parent of column `j`, or `None` if `j` is a root.
    pub fn parent(&self, j: usize) -> Option<usize> {
        self.parent[j]
    }

    /// The parent array.
    pub fn parents(&self) -> &[Option<usize>] {
        &self.parent
    }

    /// The roots of the forest (usually a single one for irreducible
    /// matrices).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&j| self.parent[j].is_none())
            .collect()
    }

    /// Children lists (children of every column, increasing).
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut children = vec![Vec::new(); self.len()];
        for j in 0..self.len() {
            if let Some(p) = self.parent[j] {
                children[p].push(j);
            }
        }
        children
    }

    /// Depth of every node (roots have depth 0).
    pub fn depths(&self) -> Vec<usize> {
        let mut depth = vec![usize::MAX; self.len()];
        for j in 0..self.len() {
            if depth[j] != usize::MAX {
                continue;
            }
            // Walk up until a known depth or a root, then unwind.
            let mut path = vec![j];
            let mut cur = j;
            while let Some(p) = self.parent[cur] {
                if depth[p] != usize::MAX {
                    break;
                }
                path.push(p);
                cur = p;
            }
            let base = match self.parent[cur] {
                Some(p) => depth[p] + 1,
                None => 0,
            };
            for (offset, &v) in path.iter().rev().enumerate() {
                depth[v] = base + offset;
            }
        }
        depth
    }

    /// Height of the forest (largest depth plus one; 0 for an empty forest).
    pub fn height(&self) -> usize {
        self.depths().into_iter().max().map(|d| d + 1).unwrap_or(0)
    }
}

/// Compute the elimination tree of a permuted symmetric pattern with Liu's
/// almost-linear algorithm (path compression on virtual ancestors).
///
/// The pattern must already be permuted into elimination order: column `j` is
/// eliminated at step `j`.
pub fn elimination_tree(pattern: &SparsePattern) -> EliminationTree {
    let n = pattern.n();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut ancestor: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        // Row i of the lower triangle: entries (i, j) with j < i.
        for &j in pattern.neighbors(i) {
            if j >= i {
                continue;
            }
            // Walk from j up to the current root of its subtree, compressing
            // the ancestor pointers towards i.
            let mut current = j;
            while let Some(anc) = ancestor[current] {
                if anc == i {
                    break;
                }
                ancestor[current] = Some(i);
                current = anc;
            }
            if ancestor[current].is_none() {
                ancestor[current] = Some(i);
                parent[current] = Some(i);
            }
        }
    }
    EliminationTree { parent }
}

/// A postorder of the elimination forest (children before parents), with the
/// children of every node visited in increasing index order.
pub fn etree_postorder(etree: &EliminationTree) -> Vec<usize> {
    let children = etree.children();
    let mut order = Vec::with_capacity(etree.len());
    let mut stack: Vec<(usize, bool)> = Vec::new();
    for root in etree.roots().into_iter().rev() {
        stack.push((root, false));
    }
    while let Some((node, expanded)) = stack.pop() {
        if expanded {
            order.push(node);
        } else {
            stack.push((node, true));
            for &c in children[node].iter().rev() {
                stack.push((c, false));
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use ordering::{minimum_degree, Permutation};
    use sparsemat::gen::{banded, grid2d_5pt};
    use sparsemat::SparsePattern;

    #[test]
    fn chain_matrix_gives_a_chain_tree() {
        // Tridiagonal matrix: etree is a path 0 -> 1 -> ... -> n-1.
        let pattern = banded(6, 1);
        let etree = elimination_tree(&pattern);
        for j in 0..5 {
            assert_eq!(etree.parent(j), Some(j + 1));
        }
        assert_eq!(etree.parent(5), None);
        assert_eq!(etree.roots(), vec![5]);
        assert_eq!(etree.height(), 6);
    }

    #[test]
    fn textbook_example() {
        // Classic example (Liu 1990, Fig. 2.1-like): arrow + extra couplings.
        // Lower triangle nonzeros: (3,0), (5,1), (4,2), (5,2), (4,3), (5,4).
        let pattern =
            SparsePattern::from_edges(6, &[(3, 0), (5, 1), (4, 2), (5, 2), (4, 3), (5, 4)]);
        let etree = elimination_tree(&pattern);
        assert_eq!(etree.parent(0), Some(3));
        assert_eq!(etree.parent(1), Some(5));
        assert_eq!(etree.parent(2), Some(4));
        assert_eq!(etree.parent(3), Some(4));
        assert_eq!(etree.parent(4), Some(5));
        assert_eq!(etree.parent(5), None);
    }

    #[test]
    fn parents_are_always_larger() {
        let pattern = grid2d_5pt(8, 7);
        let perm = minimum_degree(&pattern);
        let permuted = perm.apply(&pattern);
        let etree = elimination_tree(&permuted);
        for j in 0..etree.len() {
            if let Some(p) = etree.parent(j) {
                assert!(p > j, "parent {p} of {j} must be larger");
            }
        }
    }

    #[test]
    fn postorder_visits_children_first() {
        let pattern = grid2d_5pt(6, 6);
        let etree = elimination_tree(&pattern);
        let order = etree_postorder(&etree);
        assert_eq!(order.len(), 36);
        let mut position = vec![0; 36];
        for (idx, &node) in order.iter().enumerate() {
            position[node] = idx;
        }
        for j in 0..36 {
            if let Some(p) = etree.parent(j) {
                assert!(position[j] < position[p]);
            }
        }
    }

    #[test]
    fn disconnected_matrices_give_forests() {
        let pattern = SparsePattern::from_edges(6, &[(0, 1), (3, 4)]);
        let etree = elimination_tree(&pattern);
        assert!(etree.roots().len() >= 3); // {0,1}, {3,4}, {2}, {5}
        assert_eq!(etree_postorder(&etree).len(), 6);
    }

    #[test]
    fn permutation_changes_the_tree_height() {
        // RCM-like band ordering gives a chain; a dissection-like ordering
        // gives a shallower tree on a grid.
        let pattern = grid2d_5pt(10, 10);
        let chain_height =
            elimination_tree(&pattern.permute(Permutation::identity(100).as_new_to_old())).height();
        let md = minimum_degree(&pattern);
        let md_height = elimination_tree(&md.apply(&pattern)).height();
        assert!(md_height <= chain_height);
    }
}
