//! Column counts of the Cholesky factor.
//!
//! `count[j]` is the number of structural nonzeros of column `j` of `L`,
//! including the diagonal — the `µ` quantity used by the assembly-tree
//! weights of the paper.  The computation uses the row-subtree
//! characterisation: column `j` of `L` has a nonzero in row `i > j` iff `j`
//! belongs to the *row subtree* of `i`, i.e. iff `j` is an ancestor (in the
//! elimination tree) of some column `k` with `a_{ik} ≠ 0`, `k < i`, and
//! `j < i`.  Walking each row's nonzeros up the tree with per-row marks
//! visits every nonzero of `L` exactly once, so the cost is `O(nnz(L))`.

use sparsemat::SparsePattern;

use crate::etree::EliminationTree;

/// Compute the column counts of the Cholesky factor of a permuted pattern,
/// given its elimination tree.
///
/// # Panics
/// Panics if the elimination tree does not match the pattern size.
pub fn column_counts(pattern: &SparsePattern, etree: &EliminationTree) -> Vec<usize> {
    let n = pattern.n();
    assert_eq!(etree.len(), n, "elimination tree size mismatch");
    let mut count = vec![1usize; n]; // diagonal entries
    let mut mark = vec![usize::MAX; n];
    for i in 0..n {
        mark[i] = i;
        for &k in pattern.neighbors(i) {
            if k >= i {
                continue;
            }
            // Walk from k towards the root, stopping at the first column
            // already marked for row i (or at i itself).
            let mut j = k;
            while mark[j] != i {
                mark[j] = i;
                count[j] += 1;
                match etree.parent(j) {
                    Some(p) if p < i => j = p,
                    _ => break,
                }
            }
        }
    }
    count
}

/// Total number of nonzeros of `L` (including the diagonal): the sum of the
/// column counts.
pub fn factor_nnz(counts: &[usize]) -> usize {
    counts.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::elimination_tree;
    use ordering::mindeg::fill_in;
    use ordering::{minimum_degree, nested_dissection, rcm, Permutation};
    use sparsemat::gen::{banded, grid2d_5pt, random_spd_pattern};
    use sparsemat::SparsePattern;

    #[test]
    fn tridiagonal_counts_are_two() {
        let pattern = banded(6, 1);
        let etree = elimination_tree(&pattern);
        let counts = column_counts(&pattern, &etree);
        assert_eq!(counts, vec![2, 2, 2, 2, 2, 1]);
    }

    #[test]
    fn dense_matrix_counts_decrease() {
        // Fully dense 5x5 matrix: column j of L has 5 - j nonzeros.
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in 0..i {
                edges.push((i, j));
            }
        }
        let pattern = SparsePattern::from_edges(5, &edges);
        let etree = elimination_tree(&pattern);
        let counts = column_counts(&pattern, &etree);
        assert_eq!(counts, vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn textbook_example_counts() {
        // Same matrix as in etree.rs; fill entry (5,3) is created.
        let pattern =
            SparsePattern::from_edges(6, &[(3, 0), (5, 1), (4, 2), (5, 2), (4, 3), (5, 4)]);
        let etree = elimination_tree(&pattern);
        let counts = column_counts(&pattern, &etree);
        // L columns: 0: {0,3}; 1: {1,5}; 2: {2,4,5}; 3: {3,4}; 4: {4,5}; 5: {5}.
        assert_eq!(counts, vec![2, 2, 3, 2, 2, 1]);
    }

    #[test]
    fn counts_sum_matches_independent_fill_computation() {
        for (pattern, seed) in [(grid2d_5pt(9, 8), 0), (random_spd_pattern(150, 4.0, 5), 1)] {
            let _ = seed;
            for perm in [
                Permutation::identity(pattern.n()),
                minimum_degree(&pattern),
                nested_dissection(&pattern),
                rcm(&pattern),
            ] {
                let permuted = perm.apply(&pattern);
                let etree = elimination_tree(&permuted);
                let counts = column_counts(&permuted, &etree);
                assert_eq!(
                    factor_nnz(&counts),
                    fill_in(&pattern, &perm),
                    "column counts disagree with the reference fill computation"
                );
            }
        }
    }

    #[test]
    fn counts_are_at_least_one_and_bounded_by_remaining_columns() {
        let pattern = grid2d_5pt(7, 7);
        let perm = minimum_degree(&pattern);
        let permuted = perm.apply(&pattern);
        let etree = elimination_tree(&permuted);
        let counts = column_counts(&permuted, &etree);
        for (j, &c) in counts.iter().enumerate() {
            assert!(c >= 1);
            assert!(c <= pattern.n() - j);
        }
    }
}
