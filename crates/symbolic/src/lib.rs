//! # symbolic — symbolic Cholesky factorization and assembly trees
//!
//! This crate turns an ordered sparse symmetric pattern into the
//! **assembly trees** on which the paper's algorithms operate
//! (Section II-A and VI-B of the paper):
//!
//! 1. [`elimination_tree`] — Liu's algorithm for the elimination tree of the
//!    Cholesky factor;
//! 2. [`column_counts`] — the number of nonzeros of every column of `L`
//!    (computed from the row subtrees of the elimination tree);
//! 3. [`amalgamate`] — perfect and relaxed node amalgamation, producing an
//!    [`AssemblyTree`] whose nodes carry the paper's weights:
//!    the execution weight `η² + 2η(µ − 1)` and the contribution-block
//!    (edge) weight `(µ − 1)²`, where `η` is the number of amalgamated
//!    columns and `µ` the number of nonzeros of the column of `L` associated
//!    with the highest node of the group;
//! 4. [`pipeline`] — convenience drivers that run the whole chain
//!    (pattern → ordering → elimination tree → assembly trees) and are used
//!    by the experiment harness and the examples.
//!
//! The resulting [`AssemblyTree::tree`] is a [`treemem::Tree`] and can be fed
//! directly to the MinMemory algorithms and MinIO heuristics.

pub mod amalgamation;
pub mod colcount;
pub mod etree;
pub mod pipeline;

pub use amalgamation::{amalgamate, AssemblyTree};
pub use colcount::column_counts;
pub use etree::{elimination_tree, etree_postorder, EliminationTree};
pub use pipeline::{assembly_instances, assembly_tree_for, AssemblyInstance, PipelineConfig};
