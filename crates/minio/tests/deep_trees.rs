//! Deep/large-tree regression tests for the out-of-core simulator: the
//! incremental candidate set must handle 10⁵-node runs on a plain (2 MiB)
//! test thread, stay bit-identical to the retained naive scan, and validate
//! through the independent Algorithm 2 checker.

use minio::policy::paper::Lsnf;
use minio::{check_out_of_core, schedule_io_naive, schedule_io_with};
use treemem::minmem::min_mem;
use treemem::postorder::{best_postorder, natural_postorder};
use treemem::random::{comb, random_attachment_tree, random_chain};

#[test]
fn simulator_handles_a_100k_node_chain() {
    let tree = random_chain(100_000, 100, 0xdeec);
    let po = best_postorder(&tree);
    // A chain's unique traversal peaks at max MemReq, so the tightest
    // feasible budget needs no I/O at all.
    let run = schedule_io_with(&tree, &po.traversal, tree.max_mem_req(), &Lsnf).unwrap();
    assert_eq!(run.io_volume, 0);
    assert_eq!(run.files_written, 0);
    assert_eq!(run.peak_memory, po.peak);
}

#[test]
fn simulator_handles_a_50k_node_random_tree_below_its_peak() {
    let tree = random_attachment_tree(50_000, 1000, 20, 0xdeec);
    // The natural postorder of a random attachment tree peaks far above the
    // optimal traversal, so a budget halfway between the optimum and the
    // natural peak forces genuine evictions.
    let po = natural_postorder(&tree);
    let opt = min_mem(&tree);
    assert!(opt.peak < po.peak);
    let memory = opt.peak + (po.peak - opt.peak) / 2;
    let run = schedule_io_with(&tree, &po.traversal, memory, &Lsnf).unwrap();
    assert!(run.io_volume > 0, "the budget must force evictions");
    assert!(run.peak_memory <= memory);
    // Independent re-validation through the Algorithm 2 checker.
    let check = check_out_of_core(&tree, &po.traversal, &run.schedule, memory).unwrap();
    assert_eq!(check.io_volume, run.io_volume);
}

#[test]
fn incremental_and_naive_agree_on_a_deep_comb() {
    // The comb's natural traversal runs one deficit per spine step at the
    // tightest budget: the worst case for candidate-set maintenance.
    let tree = comb(10_000, 50, 3);
    let po = natural_postorder(&tree);
    let memory = tree.max_mem_req();
    let incremental = schedule_io_with(&tree, &po.traversal, memory, &Lsnf).unwrap();
    let naive = schedule_io_naive(&tree, &po.traversal, memory, &Lsnf).unwrap();
    assert!(incremental.io_volume > 0);
    assert_eq!(incremental.io_volume, naive.io_volume);
    assert_eq!(incremental.schedule, naive.schedule);
    assert_eq!(incremental.peak_memory, naive.peak_memory);
}
