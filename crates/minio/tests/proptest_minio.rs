//! Property-based tests for the out-of-core scheduler and the MinIO
//! heuristics.
//!
//! For random trees, random traversals produced by the MinMemory algorithms
//! and memory sizes swept between the trivial lower bound and the traversal
//! peak, every heuristic must produce a schedule that
//!
//! * validates under the independent Algorithm-2 checker with the same I/O
//!   volume,
//! * never exceeds the memory budget,
//! * performs no I/O when the memory is at least the traversal peak, and
//! * never beats the divisible lower bound.

use proptest::prelude::*;

use minio::{check_out_of_core, divisible_lower_bound, schedule_io, ALL_POLICIES};
use treemem::minmem::min_mem;
use treemem::postorder::best_postorder;
use treemem::tree::{Size, Tree};

fn arbitrary_tree(max_nodes: usize, max_file: Size, max_exec: Size) -> impl Strategy<Value = Tree> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            (
                proptest::collection::vec(0..1_000_000usize, n - 1),
                proptest::collection::vec(0..=max_file, n),
                proptest::collection::vec(0..=max_exec, n),
            )
        })
        .prop_map(|(parent_picks, files, execs)| {
            let n = files.len();
            let mut parents: Vec<Option<usize>> = vec![None; n];
            for i in 1..n {
                parents[i] = Some(parent_picks[i - 1] % i);
            }
            Tree::from_parents(&parents, &files, &execs).expect("construction is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedules_validate_and_respect_memory(
        tree in arbitrary_tree(40, 100, 10),
        fraction in 0.0f64..=1.0,
    ) {
        let po = best_postorder(&tree);
        let lower = tree.max_mem_req();
        let upper = po.peak;
        let memory = lower + ((upper - lower) as f64 * fraction) as Size;
        for policy in ALL_POLICIES {
            let run = schedule_io(&tree, &po.traversal, memory, policy).unwrap();
            prop_assert!(run.peak_memory <= memory, "{policy}");
            let check = check_out_of_core(&tree, &po.traversal, &run.schedule, memory).unwrap();
            prop_assert_eq!(check.io_volume, run.io_volume, "{}", policy);
            prop_assert!(check.peak_memory <= memory);
            let bound = divisible_lower_bound(&tree, &po.traversal, memory).unwrap();
            prop_assert!(bound <= run.io_volume, "{}: bound {} > io {}", policy, bound, run.io_volume);
        }
    }

    #[test]
    fn no_io_at_or_above_the_peak(tree in arbitrary_tree(40, 100, 10)) {
        for result in [best_postorder(&tree).traversal, min_mem(&tree).traversal] {
            let peak = result.peak_memory(&tree).unwrap();
            for policy in ALL_POLICIES {
                let run = schedule_io(&tree, &result, peak, policy).unwrap();
                prop_assert_eq!(run.io_volume, 0, "{}", policy);
                prop_assert_eq!(run.peak_memory, peak);
            }
            prop_assert_eq!(divisible_lower_bound(&tree, &result, peak).unwrap(), 0);
        }
    }

    #[test]
    fn io_decreases_with_more_memory(tree in arbitrary_tree(40, 100, 10)) {
        // The divisible lower bound is monotone in the memory size; the
        // heuristics are not guaranteed to be, but the bound must be.
        let po = best_postorder(&tree);
        let lower = tree.max_mem_req();
        let upper = po.peak;
        let mut previous = Size::MAX;
        for step in 0..=4 {
            let memory = lower + (upper - lower) * step / 4;
            let bound = divisible_lower_bound(&tree, &po.traversal, memory).unwrap();
            prop_assert!(bound <= previous, "divisible bound must not increase with memory");
            previous = bound;
        }
    }

    #[test]
    fn min_mem_traversals_also_schedule(tree in arbitrary_tree(30, 50, 5)) {
        let opt = min_mem(&tree);
        let lower = tree.max_mem_req();
        let memory = (lower + opt.peak) / 2;
        for policy in ALL_POLICIES {
            let run = schedule_io(&tree, &opt.traversal, memory, policy).unwrap();
            let check = check_out_of_core(&tree, &opt.traversal, &run.schedule, memory).unwrap();
            prop_assert_eq!(check.io_volume, run.io_volume, "{}", policy);
        }
    }
}
