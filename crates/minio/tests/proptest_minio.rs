//! Property-based tests for the out-of-core scheduler and the eviction
//! policies.
//!
//! The environment is offline, so instead of `proptest` these tests draw a
//! deterministic battery of random instances from the `prng` crate: every
//! case is reproducible from its seed, printed in assertion messages.
//!
//! For random trees, random traversals produced by the MinMemory algorithms
//! and memory sizes swept between the trivial lower bound and the traversal
//! peak, **every registered policy** — the six paper heuristics and the
//! cache-inspired ones alike — must produce a schedule that
//!
//! * validates under the independent Algorithm-2 checker with the same I/O
//!   volume,
//! * never exceeds the memory budget,
//! * performs no I/O when the memory is at least the traversal peak, and
//! * never beats the divisible lower bound.

use prng::{Rng, StdRng};

use minio::{
    check_out_of_core, divisible_lower_bound, schedule_io, schedule_io_with, PolicyRegistry,
    ALL_POLICIES,
};
use treemem::minmem::min_mem;
use treemem::postorder::best_postorder;
use treemem::tree::{Size, Tree};

/// A random tree with random parent links and weights, reproducible from the
/// seed (mirrors the proptest strategy this file used to define).
fn arbitrary_tree(seed: u64, max_nodes: usize, max_file: Size, max_exec: Size) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..=max_nodes);
    let mut parents: Vec<Option<usize>> = vec![None; n];
    for (i, parent) in parents.iter_mut().enumerate().skip(1) {
        *parent = Some(rng.gen_range(0..i));
    }
    let files: Vec<Size> = (0..n).map(|_| rng.gen_range(0..=max_file)).collect();
    let execs: Vec<Size> = (0..n).map(|_| rng.gen_range(0..=max_exec)).collect();
    Tree::from_parents(&parents, &files, &execs).expect("construction is valid")
}

#[test]
fn schedules_validate_and_respect_memory_for_every_registered_policy() {
    let registry = PolicyRegistry::with_builtin();
    assert!(registry.len() >= 9);
    for seed in 0..64 {
        let tree = arbitrary_tree(seed, 40, 100, 10);
        let po = best_postorder(&tree);
        let lower = tree.max_mem_req();
        let upper = po.peak;
        let fraction = (seed % 5) as f64 / 4.0;
        let memory = lower + ((upper - lower) as f64 * fraction) as Size;
        let bound = divisible_lower_bound(&tree, &po.traversal, memory).unwrap();
        for policy in registry.iter() {
            let name = policy.name();
            let run = schedule_io_with(&tree, &po.traversal, memory, policy).unwrap();
            assert!(run.peak_memory <= memory, "seed {seed}, {name}");
            let check = check_out_of_core(&tree, &po.traversal, &run.schedule, memory).unwrap();
            assert_eq!(check.io_volume, run.io_volume, "seed {seed}, {name}");
            assert!(check.peak_memory <= memory, "seed {seed}, {name}");
            assert!(
                bound <= run.io_volume,
                "seed {seed}, {name}: bound {bound} > io {}",
                run.io_volume
            );
            assert_eq!(run.read_volume, run.io_volume, "seed {seed}, {name}");
        }
    }
}

#[test]
fn no_io_at_or_above_the_peak_for_every_registered_policy() {
    let registry = PolicyRegistry::with_builtin();
    for seed in 100..164 {
        let tree = arbitrary_tree(seed, 40, 100, 10);
        for result in [best_postorder(&tree).traversal, min_mem(&tree).traversal] {
            let peak = result.peak_memory(&tree).unwrap();
            for policy in registry.iter() {
                let run = schedule_io_with(&tree, &result, peak, policy).unwrap();
                assert_eq!(run.io_volume, 0, "seed {seed}, {}", policy.name());
                assert_eq!(run.files_written, 0, "seed {seed}, {}", policy.name());
                assert_eq!(run.peak_memory, peak, "seed {seed}, {}", policy.name());
            }
            assert_eq!(
                divisible_lower_bound(&tree, &result, peak).unwrap(),
                0,
                "seed {seed}"
            );
        }
    }
}

#[test]
fn io_decreases_with_more_memory() {
    for seed in 200..264 {
        let tree = arbitrary_tree(seed, 40, 100, 10);
        // The divisible lower bound is monotone in the memory size; the
        // policies are not guaranteed to be, but the bound must be.
        let po = best_postorder(&tree);
        let lower = tree.max_mem_req();
        let upper = po.peak;
        let mut previous = Size::MAX;
        for step in 0..=4 {
            let memory = lower + (upper - lower) * step / 4;
            let bound = divisible_lower_bound(&tree, &po.traversal, memory).unwrap();
            assert!(
                bound <= previous,
                "seed {seed}: divisible bound must not increase"
            );
            previous = bound;
        }
    }
}

#[test]
fn min_mem_traversals_also_schedule() {
    let registry = PolicyRegistry::with_builtin();
    for seed in 300..364 {
        let tree = arbitrary_tree(seed, 30, 50, 5);
        let opt = min_mem(&tree);
        let lower = tree.max_mem_req();
        let memory = (lower + opt.peak) / 2;
        for policy in registry.iter() {
            let run = schedule_io_with(&tree, &opt.traversal, memory, policy).unwrap();
            let check = check_out_of_core(&tree, &opt.traversal, &run.schedule, memory).unwrap();
            assert_eq!(
                check.io_volume,
                run.io_volume,
                "seed {seed}, {}",
                policy.name()
            );
        }
    }
}

#[test]
fn enum_shim_matches_trait_dispatch_on_random_trees() {
    for seed in 400..432 {
        let tree = arbitrary_tree(seed, 30, 50, 5);
        let po = best_postorder(&tree);
        let lower = tree.max_mem_req();
        let memory = (lower + po.peak) / 2;
        for policy in ALL_POLICIES {
            let via_enum = schedule_io(&tree, &po.traversal, memory, policy).unwrap();
            let via_trait =
                schedule_io_with(&tree, &po.traversal, memory, policy.to_policy().as_ref())
                    .unwrap();
            assert_eq!(
                via_enum.io_volume, via_trait.io_volume,
                "seed {seed}, {policy}"
            );
            assert_eq!(
                via_enum.schedule, via_trait.schedule,
                "seed {seed}, {policy}"
            );
        }
    }
}
