//! Golden parity test: the six paper heuristics must produce **identical**
//! I/O volumes (and eviction schedules) through the new `Policy` trait
//! dispatch as through the original `EvictionPolicy` enum dispatch.
//!
//! The `legacy` module below is a frozen, self-contained copy of the
//! pre-refactor implementation — the `match`-based `select_evictions` and the
//! simulation loop exactly as they shipped before the trait was introduced.
//! It is the golden reference: if a port of a heuristic drifts by even one
//! eviction, the volumes diverge and this test pinpoints the policy, tree
//! and memory budget.

use minio::{schedule_io, schedule_io_naive, EvictionPolicy, ALL_POLICIES};
use prng::{Rng, StdRng};
use treemem::gadgets::{harpoon, harpoon_tower, two_partition_gadget};
use treemem::minmem::min_mem;
use treemem::postorder::best_postorder;
use treemem::traversal::Traversal;
use treemem::tree::{NodeId, Size, Tree};

/// Frozen pre-refactor implementation (enum dispatch).  Do not modernise:
/// byte-for-byte behaviour is the point.
mod legacy {
    use super::*;

    #[derive(Debug, Clone, Copy)]
    struct Candidate {
        node: NodeId,
        size: Size,
    }

    fn select_evictions(
        candidates: &[Candidate],
        deficit: Size,
        policy: EvictionPolicy,
    ) -> Vec<usize> {
        debug_assert!(deficit > 0);
        match policy {
            EvictionPolicy::LastScheduledNodeFirst => lsnf(candidates, deficit, &[]),
            EvictionPolicy::FirstFit => match candidates.iter().position(|c| c.size >= deficit) {
                Some(idx) => vec![idx],
                None => lsnf(candidates, deficit, &[]),
            },
            EvictionPolicy::BestFit => {
                let mut selected = Vec::new();
                let mut remaining = deficit;
                while remaining > 0 {
                    let next = candidates
                        .iter()
                        .enumerate()
                        .filter(|(idx, _)| !selected.contains(idx))
                        .min_by_key(|(idx, c)| ((c.size - remaining).abs(), *idx));
                    match next {
                        Some((idx, c)) => {
                            selected.push(idx);
                            remaining -= c.size;
                        }
                        None => break,
                    }
                }
                selected
            }
            EvictionPolicy::FirstFill => {
                let mut selected = Vec::new();
                let mut remaining = deficit;
                loop {
                    let next = candidates
                        .iter()
                        .enumerate()
                        .find(|(idx, c)| !selected.contains(idx) && c.size < remaining);
                    match next {
                        Some((idx, c)) => {
                            selected.push(idx);
                            remaining -= c.size;
                            if remaining <= 0 {
                                break;
                            }
                        }
                        None => {
                            if remaining > 0 {
                                let rest = lsnf(candidates, remaining, &selected);
                                selected.extend(rest);
                            }
                            break;
                        }
                    }
                }
                selected
            }
            EvictionPolicy::BestFill => {
                let mut selected = Vec::new();
                let mut remaining = deficit;
                loop {
                    let next = candidates
                        .iter()
                        .enumerate()
                        .filter(|(idx, c)| !selected.contains(idx) && c.size < remaining)
                        .min_by_key(|(idx, c)| (remaining - c.size, *idx));
                    match next {
                        Some((idx, c)) => {
                            selected.push(idx);
                            remaining -= c.size;
                            if remaining <= 0 {
                                break;
                            }
                        }
                        None => {
                            if remaining > 0 {
                                let rest = lsnf(candidates, remaining, &selected);
                                selected.extend(rest);
                            }
                            break;
                        }
                    }
                }
                selected
            }
            EvictionPolicy::BestKCombination { k } => {
                let k = k.max(1);
                let mut selected: Vec<usize> = Vec::new();
                let mut remaining = deficit;
                while remaining > 0 {
                    let window: Vec<usize> = (0..candidates.len())
                        .filter(|idx| !selected.contains(idx))
                        .take(k)
                        .collect();
                    if window.is_empty() {
                        break;
                    }
                    let mut best: Option<(Size, Vec<usize>)> = None;
                    for mask in 1u32..(1u32 << window.len()) {
                        let subset: Vec<usize> = window
                            .iter()
                            .enumerate()
                            .filter(|(bit, _)| mask & (1 << bit) != 0)
                            .map(|(_, &idx)| idx)
                            .collect();
                        let total: Size = subset.iter().map(|&idx| candidates[idx].size).sum();
                        let better = match &best {
                            None => true,
                            Some((best_total, _)) => {
                                let dist = (total - remaining).abs();
                                let best_dist = (*best_total - remaining).abs();
                                dist < best_dist || (dist == best_dist && total > *best_total)
                            }
                        };
                        if better {
                            best = Some((total, subset));
                        }
                    }
                    let (total, subset) = best.expect("window is non-empty");
                    selected.extend(subset);
                    remaining -= total;
                }
                selected
            }
        }
    }

    fn lsnf(candidates: &[Candidate], deficit: Size, skip: &[usize]) -> Vec<usize> {
        let mut selected = Vec::new();
        let mut remaining = deficit;
        for (idx, candidate) in candidates.iter().enumerate() {
            if remaining <= 0 {
                break;
            }
            if skip.contains(&idx) {
                continue;
            }
            selected.push(idx);
            remaining -= candidate.size;
        }
        selected
    }

    /// The pre-refactor simulation loop; returns the I/O volume and the
    /// eviction steps `(node, step)` in eviction order.
    pub fn schedule_io(
        tree: &Tree,
        traversal: &Traversal,
        memory: Size,
        policy: EvictionPolicy,
    ) -> (Size, Vec<(NodeId, usize)>) {
        traversal.check_precedence(tree).expect("valid traversal");
        let positions = traversal.positions(tree.len()).expect("valid permutation");

        let root = tree.root();
        let mut resident = vec![false; tree.len()];
        resident[root] = true;
        let mut evicted = vec![false; tree.len()];
        let mut resident_total = tree.f(root);
        let mut io_volume: Size = 0;
        let mut evictions = Vec::new();

        for (step, &node) in traversal.order().iter().enumerate() {
            if evicted[node] && !resident[node] {
                resident[node] = true;
                resident_total += tree.f(node);
            }
            assert!(
                tree.mem_req(node) <= memory,
                "legacy runner assumes feasible budgets"
            );
            let during = resident_total + tree.n(node) + tree.children_file_sum(node);
            if during > memory {
                let deficit = during - memory;
                let mut candidates: Vec<Candidate> = tree
                    .nodes()
                    .filter(|&i| i != node && resident[i])
                    .map(|i| Candidate {
                        node: i,
                        size: tree.f(i),
                    })
                    .collect();
                candidates.sort_by(|a, b| positions[b.node].cmp(&positions[a.node]));
                let chosen = select_evictions(&candidates, deficit, policy);
                for &idx in &chosen {
                    let candidate = candidates[idx];
                    resident[candidate.node] = false;
                    evicted[candidate.node] = true;
                    resident_total -= candidate.size;
                    io_volume += candidate.size;
                    evictions.push((candidate.node, step));
                }
            }
            resident[node] = false;
            resident_total -= tree.f(node);
            for &child in tree.children(node) {
                resident[child] = true;
                resident_total += tree.f(child);
            }
        }
        (io_volume, evictions)
    }
}

/// A random tree with random parent links and weights, reproducible from the
/// seed.
fn arbitrary_tree(seed: u64, max_nodes: usize, max_file: Size, max_exec: Size) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..=max_nodes);
    let mut parents: Vec<Option<usize>> = vec![None; n];
    for (i, parent) in parents.iter_mut().enumerate().skip(1) {
        *parent = Some(rng.gen_range(0..i));
    }
    let files: Vec<Size> = (0..n).map(|_| rng.gen_range(0..=max_file)).collect();
    let execs: Vec<Size> = (0..n).map(|_| rng.gen_range(0..=max_exec)).collect();
    Tree::from_parents(&parents, &files, &execs).expect("construction is valid")
}

/// All six paper heuristics, including a non-default Best-K parameter.
fn policies_under_test() -> Vec<EvictionPolicy> {
    let mut policies = ALL_POLICIES.to_vec();
    policies.push(EvictionPolicy::BestKCombination { k: 3 });
    policies
}

fn assert_parity(tree: &Tree, traversal: &Traversal, memory: Size, context: &str) {
    for policy in policies_under_test() {
        let (legacy_io, legacy_evictions) = legacy::schedule_io(tree, traversal, memory, policy);
        let run = schedule_io(tree, traversal, memory, policy).unwrap();
        assert_eq!(
            run.io_volume, legacy_io,
            "{context}, {policy}: trait dispatch diverged from the legacy enum dispatch"
        );
        let mut evictions: Vec<(NodeId, usize)> = run.schedule.evictions().collect();
        let mut legacy_sorted = legacy_evictions;
        evictions.sort_unstable();
        legacy_sorted.sort_unstable();
        assert_eq!(
            evictions, legacy_sorted,
            "{context}, {policy}: eviction schedules differ"
        );
        // The incremental simulator must match the retained naive path (full
        // candidate rescan per deficit step) bit for bit.
        let naive = schedule_io_naive(tree, traversal, memory, policy.to_policy().as_ref())
            .expect("naive simulation succeeds whenever the incremental one does");
        assert_eq!(
            run.io_volume, naive.io_volume,
            "{context}, {policy}: incremental simulator diverged from the naive scan"
        );
        assert_eq!(
            run.schedule, naive.schedule,
            "{context}, {policy}: incremental eviction schedule differs from the naive scan"
        );
        assert_eq!(run.peak_memory, naive.peak_memory, "{context}, {policy}");
        assert_eq!(
            run.files_written, naive.files_written,
            "{context}, {policy}"
        );
    }
}

#[test]
fn parity_on_the_gadget_trees() {
    for (label, tree) in [
        ("harpoon(4,400,1)", harpoon(4, 400, 1)),
        ("harpoon(6,120,3)", harpoon(6, 120, 3)),
        ("harpoon_tower(3,300,2,2)", harpoon_tower(3, 300, 2, 2)),
        (
            "two_partition",
            two_partition_gadget(&[3, 5, 2, 4, 6, 4]).tree,
        ),
    ] {
        let po = best_postorder(&tree);
        let lower = tree.max_mem_req();
        for memory in [lower, (lower + po.peak) / 2, po.peak] {
            assert_parity(&tree, &po.traversal, memory, &format!("{label} @ {memory}"));
        }
    }
}

#[test]
fn parity_on_random_trees_and_traversals() {
    for seed in 0..48 {
        let tree = arbitrary_tree(seed, 36, 100, 10);
        let po = best_postorder(&tree);
        let opt = min_mem(&tree);
        let lower = tree.max_mem_req();
        for (traversal, peak, label) in [
            (&po.traversal, po.peak, "postorder"),
            (&opt.traversal, opt.peak, "minmem"),
        ] {
            for fraction in [0, 1, 2, 3] {
                let memory = lower + (peak - lower) * fraction / 4;
                assert_parity(
                    &tree,
                    traversal,
                    memory,
                    &format!("seed {seed}, {label} @ {memory}"),
                );
            }
        }
    }
}
