//! Pluggable eviction policies for the out-of-core simulator.
//!
//! The paper evaluates six fixed greedy heuristics; the cache-eviction
//! literature (LRU and its descendants, GreedyDual-Size-Frequency, S3-FIFO)
//! shows that eviction policy choice is workload-dependent and best explored
//! through a common interface plus systematic sweeps.  This module provides
//! that interface:
//!
//! * [`Policy`] — a named, registrable eviction policy.  A policy is a
//!   stateless factory; each simulated run asks it for an
//!   [`EvictionSession`], which may carry per-run state (queues, clocks,
//!   frequency counters).
//! * [`EvictionSession`] — the per-run half of a policy: it observes every
//!   executed step and, when the next node does not fit, selects which
//!   resident files to evict from an [`EvictionContext`].
//! * [`PolicyRegistry`] — a name-indexed catalogue.  The six paper
//!   heuristics live in [`paper`], three cache-inspired policies in
//!   [`cache`]; [`PolicyRegistry::with_builtin`] registers all nine.
//!
//! A selection never needs to cover the deficit exactly: the simulator
//! completes any shortfall with the latest-scheduled-node-first rule (see
//! [`lsnf_fill`]), so custom policies are always safe to run.  The six paper
//! heuristics implement their historical fallbacks internally and never rely
//! on the engine-side completion, which keeps their I/O volumes bit-identical
//! to the original fixed dispatch (see the golden parity test).

use treemem::traversal::Traversal;
use treemem::tree::{NodeId, Size, Tree};

/// One resident, already-produced file that may be evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The node whose input file this is.
    pub node: NodeId,
    /// Size of the file (`f(node)`).
    pub size: Size,
    /// Step at which the file appeared in memory (0 for the root input file,
    /// `σ(parent) + 1` otherwise).  This is the file's last "use" until its
    /// owner executes, so it is what an LRU-style policy ages by.
    pub produced_at: usize,
}

/// Everything a policy may inspect when an eviction decision is needed.
#[derive(Debug)]
pub struct EvictionContext<'a> {
    /// The tree being traversed.
    pub tree: &'a Tree,
    /// Position of every node in the traversal (`positions[i] = σ(i) − 1`).
    pub positions: &'a [usize],
    /// The step about to execute (0-based index into the traversal).
    pub step: usize,
    /// The node about to execute.
    pub node: NodeId,
    /// Memory that must be freed before `node` can execute.
    pub deficit: Size,
    /// The evictable files, ordered **latest use first**: the candidate whose
    /// owner is scheduled last in the traversal comes first.
    pub candidates: &'a [Candidate],
}

impl EvictionContext<'_> {
    /// Steps until candidate `idx`'s file is consumed by its owner.
    pub fn distance_to_use(&self, idx: usize) -> usize {
        self.positions[self.candidates[idx].node] - self.step
    }
}

/// Per-run state of a policy: observes the execution and selects evictions.
pub trait EvictionSession {
    /// Select the candidates to evict (indices into `ctx.candidates`) so that
    /// at least `ctx.deficit` units are freed.  Shortfalls are completed by
    /// the engine with [`lsnf_fill`]; duplicate or out-of-range indices are
    /// ignored.
    fn select(&mut self, ctx: &EvictionContext<'_>) -> Vec<usize>;

    /// Called after every node execution (stateful policies track residency
    /// changes here; the executed node's file is consumed, its children's
    /// files are produced).
    fn observe_execution(&mut self, _step: usize, _node: NodeId, _tree: &Tree) {}
}

/// An eviction policy: a named factory of per-run [`EvictionSession`]s.
pub trait Policy: Send + Sync {
    /// Short stable identifier (used in registries, reports and JSON output).
    ///
    /// Returns an owned `String` — unlike `MinMemSolver::name` — because a
    /// policy may be parameterised (a custom `BestKCombination { k }` wrapper
    /// can legitimately call itself `"BestKComb(7)"`); resolve names once
    /// outside hot loops rather than calling this per decision.
    fn name(&self) -> String;

    /// One-line human description for reports.
    fn description(&self) -> &'static str;

    /// Start a session for one simulated run of `traversal` on `tree`.
    fn session(&self, tree: &Tree, traversal: &Traversal) -> Box<dyn EvictionSession>;
}

/// Latest-scheduled-node-first selection over the candidates not already in
/// `skip`, freeing at least `deficit`.  This is both the paper's LSNF
/// heuristic and the universal fallback: candidates are ordered latest use
/// first, so walking them in order evicts the files needed furthest in the
/// future (optimal for the divisible relaxation by an exchange argument).
pub fn lsnf_fill(candidates: &[Candidate], deficit: Size, skip: &[usize]) -> Vec<usize> {
    // Mark the skipped indices once instead of a linear `skip.contains` scan
    // per candidate, which made a fill over k candidates O(k²).
    let mut skipped = vec![false; candidates.len()];
    for &idx in skip {
        if idx < candidates.len() {
            skipped[idx] = true;
        }
    }
    let mut selected = Vec::new();
    let mut remaining = deficit;
    for (idx, candidate) in candidates.iter().enumerate() {
        if remaining <= 0 {
            break;
        }
        if skipped[idx] {
            continue;
        }
        selected.push(idx);
        remaining -= candidate.size;
    }
    selected
}

/// A session with no per-run state, driven by a plain selection function.
struct StatelessSession<F: FnMut(&EvictionContext<'_>) -> Vec<usize>> {
    select: F,
}

impl<F: FnMut(&EvictionContext<'_>) -> Vec<usize>> EvictionSession for StatelessSession<F> {
    fn select(&mut self, ctx: &EvictionContext<'_>) -> Vec<usize> {
        (self.select)(ctx)
    }
}

/// The six greedy heuristics of the paper (Section V-B), ported onto the
/// [`Policy`] trait.  Their selection logic is byte-for-byte the historical
/// one, so the I/O volumes they produce are identical to the original
/// `EvictionPolicy` enum dispatch.
pub mod paper {
    use super::*;

    /// Evict the files used latest in the traversal until the deficit is
    /// covered.  Optimal for the divisible relaxation of MinIO.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Lsnf;

    impl Policy for Lsnf {
        fn name(&self) -> String {
            "LSNF".to_string()
        }
        fn description(&self) -> &'static str {
            "last scheduled node first (divisible-optimal)"
        }
        fn session(&self, _tree: &Tree, _traversal: &Traversal) -> Box<dyn EvictionSession> {
            Box::new(StatelessSession {
                select: |ctx: &EvictionContext<'_>| lsnf_fill(ctx.candidates, ctx.deficit, &[]),
            })
        }
    }

    /// Evict the first (latest-used) file at least as large as the deficit;
    /// fall back to LSNF when no single file is large enough.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct FirstFit;

    impl Policy for FirstFit {
        fn name(&self) -> String {
            "FirstFit".to_string()
        }
        fn description(&self) -> &'static str {
            "first latest-used file covering the whole deficit"
        }
        fn session(&self, _tree: &Tree, _traversal: &Traversal) -> Box<dyn EvictionSession> {
            Box::new(StatelessSession {
                select: |ctx: &EvictionContext<'_>| match ctx
                    .candidates
                    .iter()
                    .position(|c| c.size >= ctx.deficit)
                {
                    Some(idx) => vec![idx],
                    None => lsnf_fill(ctx.candidates, ctx.deficit, &[]),
                },
            })
        }
    }

    /// Repeatedly evict the file whose size is closest to the remaining
    /// deficit (in absolute value).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct BestFit;

    impl Policy for BestFit {
        fn name(&self) -> String {
            "BestFit".to_string()
        }
        fn description(&self) -> &'static str {
            "file size closest to the remaining deficit, repeatedly"
        }
        fn session(&self, _tree: &Tree, _traversal: &Traversal) -> Box<dyn EvictionSession> {
            Box::new(StatelessSession {
                select: |ctx: &EvictionContext<'_>| {
                    let mut selected = Vec::new();
                    let mut remaining = ctx.deficit;
                    while remaining > 0 {
                        let next = ctx
                            .candidates
                            .iter()
                            .enumerate()
                            .filter(|(idx, _)| !selected.contains(idx))
                            .min_by_key(|(idx, c)| ((c.size - remaining).abs(), *idx));
                        match next {
                            Some((idx, c)) => {
                                selected.push(idx);
                                remaining -= c.size;
                            }
                            None => break,
                        }
                    }
                    selected
                },
            })
        }
    }

    /// Repeatedly evict the first (latest-used) file strictly smaller than
    /// the remaining deficit; fall back to LSNF when no such file exists.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct FirstFill;

    impl Policy for FirstFill {
        fn name(&self) -> String {
            "FirstFill".to_string()
        }
        fn description(&self) -> &'static str {
            "first file strictly below the remaining deficit, repeatedly"
        }
        fn session(&self, _tree: &Tree, _traversal: &Traversal) -> Box<dyn EvictionSession> {
            Box::new(StatelessSession {
                select: |ctx: &EvictionContext<'_>| {
                    let mut selected = Vec::new();
                    let mut remaining = ctx.deficit;
                    loop {
                        let next = ctx
                            .candidates
                            .iter()
                            .enumerate()
                            .find(|(idx, c)| !selected.contains(idx) && c.size < remaining);
                        match next {
                            Some((idx, c)) => {
                                selected.push(idx);
                                remaining -= c.size;
                                if remaining <= 0 {
                                    break;
                                }
                            }
                            None => {
                                if remaining > 0 {
                                    let rest = lsnf_fill(ctx.candidates, remaining, &selected);
                                    selected.extend(rest);
                                }
                                break;
                            }
                        }
                    }
                    selected
                },
            })
        }
    }

    /// Repeatedly evict the file closest to the remaining deficit among those
    /// strictly smaller than it; fall back to LSNF when no such file exists.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct BestFill;

    impl Policy for BestFill {
        fn name(&self) -> String {
            "BestFill".to_string()
        }
        fn description(&self) -> &'static str {
            "closest file strictly below the remaining deficit, repeatedly"
        }
        fn session(&self, _tree: &Tree, _traversal: &Traversal) -> Box<dyn EvictionSession> {
            Box::new(StatelessSession {
                select: |ctx: &EvictionContext<'_>| {
                    let mut selected = Vec::new();
                    let mut remaining = ctx.deficit;
                    loop {
                        let next = ctx
                            .candidates
                            .iter()
                            .enumerate()
                            .filter(|(idx, c)| !selected.contains(idx) && c.size < remaining)
                            .min_by_key(|(idx, c)| (remaining - c.size, *idx));
                        match next {
                            Some((idx, c)) => {
                                selected.push(idx);
                                remaining -= c.size;
                                if remaining <= 0 {
                                    break;
                                }
                            }
                            None => {
                                if remaining > 0 {
                                    let rest = lsnf_fill(ctx.candidates, remaining, &selected);
                                    selected.extend(rest);
                                }
                                break;
                            }
                        }
                    }
                    selected
                },
            })
        }
    }

    /// Consider the `k` latest-used candidates and evict the subset whose
    /// total size is closest to the deficit; repeat until the deficit is
    /// covered.  The paper uses `k = 5`.
    #[derive(Debug, Clone, Copy)]
    pub struct BestKCombination {
        /// Number of candidate files examined at each round.
        pub k: usize,
    }

    impl Default for BestKCombination {
        fn default() -> Self {
            BestKCombination { k: 5 }
        }
    }

    impl Policy for BestKCombination {
        fn name(&self) -> String {
            "BestKComb".to_string()
        }
        fn description(&self) -> &'static str {
            "best subset of the first K latest-used files"
        }
        fn session(&self, _tree: &Tree, _traversal: &Traversal) -> Box<dyn EvictionSession> {
            // The subset enumeration below uses a u32 bitmask, so the window
            // must stay below 32 candidates (2^31 subsets is far past any
            // practical budget anyway).
            let k = self.k.clamp(1, 31);
            Box::new(StatelessSession {
                select: move |ctx: &EvictionContext<'_>| {
                    let candidates = ctx.candidates;
                    let mut selected: Vec<usize> = Vec::new();
                    let mut remaining = ctx.deficit;
                    while remaining > 0 {
                        // The first k not-yet-selected candidates (latest use
                        // first).
                        let window: Vec<usize> = (0..candidates.len())
                            .filter(|idx| !selected.contains(idx))
                            .take(k)
                            .collect();
                        if window.is_empty() {
                            break;
                        }
                        // Enumerate all non-empty subsets of the window and
                        // keep the one whose total size is closest (in
                        // absolute distance) to the remaining deficit; ties
                        // prefer the larger total, so covering subsets win
                        // over equally-distant under-covering ones.
                        let mut best: Option<(Size, Vec<usize>)> = None;
                        for mask in 1u32..(1u32 << window.len()) {
                            let subset: Vec<usize> = window
                                .iter()
                                .enumerate()
                                .filter(|(bit, _)| mask & (1 << bit) != 0)
                                .map(|(_, &idx)| idx)
                                .collect();
                            let total: Size = subset.iter().map(|&idx| candidates[idx].size).sum();
                            let better = match &best {
                                None => true,
                                Some((best_total, _)) => {
                                    let dist = (total - remaining).abs();
                                    let best_dist = (*best_total - remaining).abs();
                                    dist < best_dist || (dist == best_dist && total > *best_total)
                                }
                            };
                            if better {
                                best = Some((total, subset));
                            }
                        }
                        let (total, subset) = best.expect("window is non-empty");
                        selected.extend(subset);
                        remaining -= total;
                    }
                    selected
                },
            })
        }
    }
}

/// Cache-inspired eviction policies, adapted from the web- and block-cache
/// literature to the file-residency workload of the out-of-core simulator.
/// Unlike a cache, every file here is reused exactly once (when its owner
/// executes) and that instant is known in advance, so "recency of access"
/// becomes *production time* and "frequency" becomes *proximity of the
/// scheduled use*.
pub mod cache {
    use super::*;
    use std::collections::VecDeque;

    /// LRU by traversal distance: evict the files that have been resident
    /// longest (earliest `produced_at`), i.e. classical least-recently-used
    /// ageing, where a file's only "use" before consumption is its
    /// production.  On postorder-like traversals old files are exactly the
    /// ones needed furthest in the future, so this tracks LSNF; on
    /// interleaved traversals the two diverge.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct LruDistance;

    impl Policy for LruDistance {
        fn name(&self) -> String {
            "LruDist".to_string()
        }
        fn description(&self) -> &'static str {
            "least recently produced file first (LRU ageing)"
        }
        fn session(&self, _tree: &Tree, _traversal: &Traversal) -> Box<dyn EvictionSession> {
            Box::new(StatelessSession {
                select: |ctx: &EvictionContext<'_>| {
                    let mut order: Vec<usize> = (0..ctx.candidates.len()).collect();
                    // Oldest resident file first; ties broken latest use
                    // first (the candidate order) for determinism.
                    order.sort_by_key(|&idx| (ctx.candidates[idx].produced_at, idx));
                    let mut selected = Vec::new();
                    let mut remaining = ctx.deficit;
                    for idx in order {
                        if remaining <= 0 {
                            break;
                        }
                        selected.push(idx);
                        remaining -= ctx.candidates[idx].size;
                    }
                    selected
                },
            })
        }
    }

    /// GreedyDual-Size-Frequency adapted to file residency.  GDSF evicts the
    /// object with the lowest `frequency × cost / size`; here the cost of an
    /// eviction is the write+read volume (proportional to size) and the
    /// benefit of keeping a file decays with how far away its single use is,
    /// so the value density of candidate `i` is `1 / (size(i) ×
    /// distance(i))`.  Evicting the lowest-density files first removes the
    /// large, long-idle files a size-aware cache would drop.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct SizeAwareGdsf;

    impl Policy for SizeAwareGdsf {
        fn name(&self) -> String {
            "GDSF".to_string()
        }
        fn description(&self) -> &'static str {
            "size-aware greedy-dual: evict max size x distance-to-use first"
        }
        fn session(&self, _tree: &Tree, _traversal: &Traversal) -> Box<dyn EvictionSession> {
            Box::new(StatelessSession {
                select: |ctx: &EvictionContext<'_>| {
                    let mut order: Vec<usize> = (0..ctx.candidates.len()).collect();
                    // Highest size × distance first; ties latest use first.
                    order.sort_by_key(|&idx| {
                        let distance = ctx.distance_to_use(idx) as Size;
                        (
                            -(ctx.candidates[idx].size.saturating_mul(distance.max(1))),
                            idx,
                        )
                    });
                    let mut selected = Vec::new();
                    let mut remaining = ctx.deficit;
                    for idx in order {
                        if remaining <= 0 {
                            break;
                        }
                        selected.push(idx);
                        remaining -= ctx.candidates[idx].size;
                    }
                    selected
                },
            })
        }
    }

    /// S3-FIFO (SOSP'23) adapted to file residency.  The cache version keeps
    /// a small probationary FIFO, a main FIFO and a ghost queue: one-hit
    /// wonders die young in the small queue, reaccessed objects are promoted
    /// to main, and main evicts with a second chance.  Files here have no
    /// reaccess, so *imminence of the scheduled use* plays the role of a
    /// second hit: freshly produced files enter the small queue; on memory
    /// pressure the small queue is drained FIFO-first, promoting files whose
    /// use is nearer than the median candidate to the main queue, and the
    /// main queue evicts FIFO with one second chance for near-use files.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct S3FifoResidency;

    struct S3FifoSession {
        /// Probationary queue (front = oldest), freshly produced files.
        small: VecDeque<NodeId>,
        /// Protected queue (front = oldest), files promoted from `small`.
        main: VecDeque<NodeId>,
        /// Second-chance bit for entries of `main`.
        second_chance: Vec<bool>,
    }

    impl S3FifoSession {
        fn new(tree: &Tree) -> Self {
            let mut small = VecDeque::new();
            // The root input file is resident from the start.
            small.push_back(tree.root());
            S3FifoSession {
                small,
                main: VecDeque::new(),
                second_chance: vec![false; tree.len()],
            }
        }
    }

    impl EvictionSession for S3FifoSession {
        fn observe_execution(&mut self, _step: usize, node: NodeId, tree: &Tree) {
            for &child in tree.children(node) {
                self.small.push_back(child);
            }
        }

        fn select(&mut self, ctx: &EvictionContext<'_>) -> Vec<usize> {
            // Index of each candidate node; queue entries not present here
            // are stale (consumed or already evicted) and get dropped.
            let mut index_of = vec![usize::MAX; ctx.tree.len()];
            for (idx, candidate) in ctx.candidates.iter().enumerate() {
                index_of[candidate.node] = idx;
            }
            // "Near" = use-distance strictly below the median candidate's;
            // this stands in for the second access that promotes an object
            // in the cache setting.
            let mut distances: Vec<usize> = (0..ctx.candidates.len())
                .map(|idx| ctx.distance_to_use(idx))
                .collect();
            distances.sort_unstable();
            let near = distances[distances.len() / 2];

            let mut selected = Vec::new();
            let mut remaining = ctx.deficit;
            // Drain the probationary queue first.
            while remaining > 0 {
                let Some(node) = self.small.pop_front() else {
                    break;
                };
                let idx = index_of[node];
                if idx == usize::MAX {
                    continue; // stale entry
                }
                if ctx.distance_to_use(idx) < near {
                    self.main.push_back(node); // promote: needed soon
                } else {
                    selected.push(idx);
                    remaining -= ctx.candidates[idx].size;
                }
            }
            // Then the main queue, FIFO with one second chance.
            let mut rotations = self.main.len();
            while remaining > 0 {
                let Some(node) = self.main.pop_front() else {
                    break;
                };
                let idx = index_of[node];
                if idx == usize::MAX {
                    continue; // stale entry
                }
                if rotations > 0 && ctx.distance_to_use(idx) < near && !self.second_chance[node] {
                    self.second_chance[node] = true;
                    self.main.push_back(node);
                    rotations -= 1;
                    continue;
                }
                selected.push(idx);
                remaining -= ctx.candidates[idx].size;
            }
            // Anything still missing (both queues dry) is completed by the
            // engine's LSNF fallback.
            selected
        }
    }

    impl Policy for S3FifoResidency {
        fn name(&self) -> String {
            "S3FIFO".to_string()
        }
        fn description(&self) -> &'static str {
            "segmented probationary/protected FIFO with second chance"
        }
        fn session(&self, tree: &Tree, _traversal: &Traversal) -> Box<dyn EvictionSession> {
            Box::new(S3FifoSession::new(tree))
        }
    }
}

/// Name-indexed catalogue of eviction policies.
pub struct PolicyRegistry {
    policies: Vec<Box<dyn Policy>>,
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        PolicyRegistry {
            policies: Vec::new(),
        }
    }

    /// The registry of all built-in policies: the six paper heuristics in
    /// their Section V-B order, then the three cache-inspired policies.
    pub fn with_builtin() -> Self {
        let mut registry = PolicyRegistry::empty();
        registry.register(Box::new(paper::Lsnf));
        registry.register(Box::new(paper::FirstFit));
        registry.register(Box::new(paper::BestFit));
        registry.register(Box::new(paper::FirstFill));
        registry.register(Box::new(paper::BestFill));
        registry.register(Box::new(paper::BestKCombination::default()));
        registry.register(Box::new(cache::LruDistance));
        registry.register(Box::new(cache::SizeAwareGdsf));
        registry.register(Box::new(cache::S3FifoResidency));
        registry
    }

    /// Add a policy.  A policy with the same name replaces the old entry, so
    /// downstream crates can override built-ins.
    pub fn register(&mut self, policy: Box<dyn Policy>) {
        let name = policy.name();
        if let Some(existing) = self.policies.iter_mut().find(|p| p.name() == name) {
            *existing = policy;
        } else {
            self.policies.push(policy);
        }
    }

    /// Look a policy up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Policy> {
        self.policies
            .iter()
            .find(|p| p.name() == name)
            .map(|p| p.as_ref())
    }

    /// Look a policy up by name, with a typed
    /// [`UnknownName`](treemem::registry::UnknownName) error listing the
    /// registered names on a miss — the same shape as
    /// `treemem::SolverRegistry::get_or_err`.
    pub fn get_or_err(&self, name: &str) -> Result<&dyn Policy, treemem::registry::UnknownName> {
        treemem::registry::get_or_unknown("policy", name, self.get(name), || self.names())
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.policies.iter().map(|p| p.name()).collect()
    }

    /// Iterate over the policies in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Policy> {
        self.policies.iter().map(|p| p.as_ref())
    }

    /// Number of registered policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }
}

impl Default for PolicyRegistry {
    fn default() -> Self {
        PolicyRegistry::with_builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::schedule_io_with;
    use crate::schedule::check_out_of_core;
    use treemem::gadgets::harpoon;
    use treemem::postorder::best_postorder;

    #[test]
    fn builtin_registry_has_nine_policies() {
        let registry = PolicyRegistry::with_builtin();
        assert_eq!(
            registry.names(),
            vec![
                "LSNF",
                "FirstFit",
                "BestFit",
                "FirstFill",
                "BestFill",
                "BestKComb",
                "LruDist",
                "GDSF",
                "S3FIFO"
            ]
        );
        assert_eq!(registry.len(), 9);
        assert!(registry.get("GDSF").is_some());
        assert!(registry.get("ARC").is_none());
        assert!(registry.get_or_err("GDSF").is_ok());
        let err = registry.get_or_err("ARC").map(|_| ()).unwrap_err();
        assert_eq!(err.kind, "policy");
        assert_eq!(err.known, registry.names());
    }

    #[test]
    fn registration_replaces_by_name() {
        let mut registry = PolicyRegistry::empty();
        registry.register(Box::new(paper::Lsnf));
        registry.register(Box::new(paper::Lsnf));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn every_builtin_policy_produces_valid_schedules() {
        let tree = harpoon(4, 400, 1);
        let po = best_postorder(&tree);
        let memory = tree.max_mem_req();
        for policy in PolicyRegistry::with_builtin().iter() {
            let run = schedule_io_with(&tree, &po.traversal, memory, policy).unwrap();
            let check = check_out_of_core(&tree, &po.traversal, &run.schedule, memory).unwrap();
            assert_eq!(check.io_volume, run.io_volume, "{}", policy.name());
            assert!(run.peak_memory <= memory, "{}", policy.name());
        }
    }

    #[test]
    fn lsnf_fill_respects_skips() {
        let candidates = vec![
            Candidate {
                node: 0,
                size: 5,
                produced_at: 0,
            },
            Candidate {
                node: 1,
                size: 5,
                produced_at: 1,
            },
            Candidate {
                node: 2,
                size: 5,
                produced_at: 2,
            },
        ];
        assert_eq!(lsnf_fill(&candidates, 8, &[]), vec![0, 1]);
        assert_eq!(lsnf_fill(&candidates, 8, &[0]), vec![1, 2]);
    }

    #[test]
    fn engine_fallback_completes_short_selections() {
        /// A deliberately broken policy that never selects anything.
        struct Lazy;
        impl Policy for Lazy {
            fn name(&self) -> String {
                "Lazy".to_string()
            }
            fn description(&self) -> &'static str {
                "never evicts on its own"
            }
            fn session(&self, _: &Tree, _: &Traversal) -> Box<dyn EvictionSession> {
                struct Session;
                impl EvictionSession for Session {
                    fn select(&mut self, _: &EvictionContext<'_>) -> Vec<usize> {
                        Vec::new()
                    }
                }
                Box::new(Session)
            }
        }
        let tree = harpoon(4, 400, 1);
        let po = best_postorder(&tree);
        let memory = tree.max_mem_req();
        let run = schedule_io_with(&tree, &po.traversal, memory, &Lazy).unwrap();
        // The fallback is LSNF, so the lazy policy degenerates to it.
        let lsnf = schedule_io_with(&tree, &po.traversal, memory, &paper::Lsnf).unwrap();
        assert_eq!(run.io_volume, lsnf.io_volume);
    }
}
