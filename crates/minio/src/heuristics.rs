//! The out-of-core execution simulator and the paper's heuristic catalogue
//! (Section V-B of the paper).
//!
//! The simulator executes a traversal step by step; when the next node `j`
//! does not fit in the remaining main memory, a deficit `IOReq(j)` must be
//! freed by writing already-produced files to secondary memory.  *Which*
//! files to write is decided by a pluggable [`Policy`]
//! (see [`crate::policy`]): the simulator hands it the candidate files
//! ordered latest use first and completes any shortfall with the LSNF rule.
//!
//! [`schedule_io_with`] is the trait-based entry point; [`schedule_io`] keeps
//! the historical signature taking the [`EvictionPolicy`] enum, which now
//! merely names the six paper heuristics and forwards to their trait
//! implementations (the golden parity test pins the equivalence).

use std::collections::BTreeSet;

use treemem::error::TraversalError;
use treemem::traversal::Traversal;
use treemem::tree::{NodeId, Size, Tree};

use crate::policy::{lsnf_fill, paper, Candidate, EvictionContext, Policy};
#[cfg(debug_assertions)]
use crate::schedule::check_out_of_core_with_positions;
use crate::schedule::IoSchedule;

/// The eviction heuristics of the paper, as a plain enum.
///
/// This type predates the [`Policy`] trait and is kept as a compatibility
/// shim: each variant maps to the equivalent policy object in
/// [`crate::policy::paper`] via [`EvictionPolicy::to_policy`], and
/// [`schedule_io`] accepts it directly.  New code (and new policies) should
/// use the trait and [`crate::policy::PolicyRegistry`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the files used latest in the traversal until the deficit is
    /// covered.  Optimal for the divisible relaxation of MinIO.
    LastScheduledNodeFirst,
    /// Evict the first (latest-used) file at least as large as the deficit;
    /// fall back to LSNF when no single file is large enough.
    FirstFit,
    /// Repeatedly evict the file whose size is closest to the remaining
    /// deficit (in absolute value).
    BestFit,
    /// Repeatedly evict the first (latest-used) file strictly smaller than
    /// the remaining deficit; fall back to LSNF when no such file exists.
    FirstFill,
    /// Repeatedly evict the file closest to the remaining deficit among those
    /// strictly smaller than it; fall back to LSNF when no such file exists.
    BestFill,
    /// Consider the `k` latest-used candidates and evict the subset whose
    /// total size is closest to the deficit; repeat until the deficit is
    /// covered.  The paper uses `k = 5`.
    BestKCombination {
        /// Number of candidate files examined at each round.
        k: usize,
    },
}

impl EvictionPolicy {
    /// Short human-readable name (used by the experiment reports).
    pub fn name(&self) -> &'static str {
        match self {
            EvictionPolicy::LastScheduledNodeFirst => "LSNF",
            EvictionPolicy::FirstFit => "FirstFit",
            EvictionPolicy::BestFit => "BestFit",
            EvictionPolicy::FirstFill => "FirstFill",
            EvictionPolicy::BestFill => "BestFill",
            EvictionPolicy::BestKCombination { .. } => "BestKComb",
        }
    }

    /// The equivalent trait-based policy.
    pub fn to_policy(&self) -> Box<dyn Policy> {
        match *self {
            EvictionPolicy::LastScheduledNodeFirst => Box::new(paper::Lsnf),
            EvictionPolicy::FirstFit => Box::new(paper::FirstFit),
            EvictionPolicy::BestFit => Box::new(paper::BestFit),
            EvictionPolicy::FirstFill => Box::new(paper::FirstFill),
            EvictionPolicy::BestFill => Box::new(paper::BestFill),
            EvictionPolicy::BestKCombination { k } => Box::new(paper::BestKCombination { k }),
        }
    }
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt.write_str(self.name())
    }
}

/// Errors raised while simulating an out-of-core execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinIoError {
    /// The traversal itself is invalid (wrong permutation, precedence
    /// violation, ...).
    InvalidTraversal(TraversalError),
    /// A node cannot be executed even after evicting every other resident
    /// file: its own memory requirement exceeds the main memory.
    InsufficientMemory {
        node: NodeId,
        required: Size,
        memory: Size,
    },
    /// The instance is too large for the exponential exact solver
    /// ([`crate::exact::exact_min_io`]).
    InstanceTooLarge { candidates: usize, limit: usize },
}

impl std::fmt::Display for MinIoError {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinIoError::InvalidTraversal(err) => write!(fmt, "invalid traversal: {err}"),
            MinIoError::InsufficientMemory { node, required, memory } => write!(
                fmt,
                "node {node} requires {required} units of memory but only {memory} are available"
            ),
            MinIoError::InstanceTooLarge { candidates, limit } => write!(
                fmt,
                "instance too large for the exact solver: {candidates} evictable files at one step (limit {limit})"
            ),
        }
    }
}

impl std::error::Error for MinIoError {}

impl From<TraversalError> for MinIoError {
    fn from(err: TraversalError) -> Self {
        MinIoError::InvalidTraversal(err)
    }
}

/// Result of an out-of-core simulation.
#[derive(Debug, Clone)]
pub struct OutOfCoreRun {
    /// Volume written to secondary memory (the paper's `IO` objective).
    pub io_volume: Size,
    /// Volume read back from secondary memory (equal to the volume written,
    /// since every evicted file is read exactly once before its owner runs).
    pub read_volume: Size,
    /// Number of files written out.
    pub files_written: usize,
    /// Peak main-memory usage of the execution (always `≤ memory`).
    pub peak_memory: Size,
    /// The eviction schedule (the `τ` map of Definition 3).
    pub schedule: IoSchedule,
}

/// Simulate an out-of-core execution of `traversal` on `tree` with main
/// memory `memory`, using `policy` to choose which files to evict.
///
/// Returns the I/O volume, the eviction schedule (which can be re-validated
/// with [`crate::check_out_of_core`]) and the peak memory actually used.
///
/// Fails with [`MinIoError::InsufficientMemory`] if some node's own memory
/// requirement exceeds `memory` (no eviction can help in that case) and with
/// [`MinIoError::InvalidTraversal`] if the traversal is not a valid ordering
/// of the tree.
///
/// The policy's selection is sanitised: duplicate and out-of-range indices
/// are dropped, and if the selected files do not cover the deficit the
/// remainder is completed with [`lsnf_fill`], so any [`Policy`] — including
/// user-written ones — yields a feasible schedule.
///
/// The simulator is *incremental*: the resident candidate files are kept in
/// an ordered set keyed by traversal position, which changes by
/// O(#children) per executed step, so a deficit step costs
/// O(resident log p) instead of the full O(p log p) scan-and-sort the
/// original implementation (retained as [`schedule_io_naive`]) performed.
pub fn schedule_io_with(
    tree: &Tree,
    traversal: &Traversal,
    memory: Size,
    policy: &dyn Policy,
) -> Result<OutOfCoreRun, MinIoError> {
    schedule_io_with_stop(tree, traversal, memory, policy, None)
        .map(|run| run.expect("no stop probe, cannot be cancelled"))
}

/// How many simulated steps run between two stop-probe checks in
/// [`schedule_io_with_stop`]; bounds the cancellation latency to a fraction
/// of a millisecond at the simulator's step rate.
const STOP_CHECK_INTERVAL: usize = 1024;

/// [`schedule_io_with`] with a cooperative stop probe, checked every 1024
/// simulated steps.  `Ok(None)` means the probe
/// fired and the partial simulation was discarded.
pub fn schedule_io_with_stop(
    tree: &Tree,
    traversal: &Traversal,
    memory: Size,
    policy: &dyn Policy,
    stop: Option<&dyn Fn() -> bool>,
) -> Result<Option<OutOfCoreRun>, MinIoError> {
    traversal.check_precedence(tree)?;
    let positions = traversal.positions(tree.len())?;
    let order = traversal.order();
    let mut session = policy.session(tree, traversal);

    let root = tree.root();
    let mut resident = vec![false; tree.len()];
    resident[root] = true;
    let mut evicted = vec![false; tree.len()];
    // Step at which each file appeared in memory (root: before step 0).
    let mut produced_at = vec![0usize; tree.len()];
    // Traversal positions of the resident files.  Every resident file other
    // than the node currently executing is unprocessed, so its position is
    // strictly greater than the current step: iterating the range above the
    // step in reverse enumerates exactly the eviction candidates, latest use
    // first, without scanning the other p − resident nodes.
    let mut resident_pos: BTreeSet<usize> = BTreeSet::new();
    resident_pos.insert(positions[root]);
    let mut resident_total = tree.f(root);
    let mut schedule = IoSchedule::empty(tree.len());
    let mut io_volume: Size = 0;
    let mut files_written = 0usize;
    let mut peak: Size = tree.f(root);
    // Scratch buffers reused across deficit steps.
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut taken: Vec<bool> = Vec::new();

    for (step, &node) in order.iter().enumerate() {
        if step % STOP_CHECK_INTERVAL == 0 {
            if let Some(probe) = stop {
                if probe() {
                    return Ok(None);
                }
            }
        }
        // Read the node's input file back first if it was evicted earlier.
        if evicted[node] && !resident[node] {
            resident[node] = true;
            resident_pos.insert(positions[node]);
            resident_total += tree.f(node);
        }

        let requirement = tree.mem_req(node);
        if requirement > memory {
            return Err(MinIoError::InsufficientMemory {
                node,
                required: requirement,
                memory,
            });
        }

        // Memory needed while the node executes, given what is resident.
        let during = resident_total + tree.n(node) + tree.children_file_sum(node);
        if during > memory {
            let deficit = during - memory;
            // Candidate files: resident, already produced, not the one being
            // executed; ordered by latest use first.  `resident_pos` already
            // holds them sorted by position; the executing node (position ==
            // step) falls below the range.
            candidates.clear();
            candidates.extend(resident_pos.range(step + 1..).rev().map(|&pos| {
                let i = order[pos];
                Candidate {
                    node: i,
                    size: tree.f(i),
                    produced_at: produced_at[i],
                }
            }));

            let ctx = EvictionContext {
                tree,
                positions: &positions,
                step,
                node,
                deficit,
                candidates: &candidates,
            };
            let raw = session.select(&ctx);
            // Sanitise: keep the first occurrence of each in-range index,
            // then complete any shortfall with the LSNF fallback.
            let mut chosen: Vec<usize> = Vec::with_capacity(raw.len());
            taken.clear();
            taken.resize(candidates.len(), false);
            let mut freed: Size = 0;
            for idx in raw {
                if idx < candidates.len() && !taken[idx] {
                    taken[idx] = true;
                    chosen.push(idx);
                    freed += candidates[idx].size;
                }
            }
            if freed < deficit {
                let rest = lsnf_fill(&candidates, deficit - freed, &chosen);
                chosen.extend(rest);
            }
            for &idx in &chosen {
                let candidate = candidates[idx];
                resident[candidate.node] = false;
                evicted[candidate.node] = true;
                resident_pos.remove(&positions[candidate.node]);
                resident_total -= candidate.size;
                io_volume += candidate.size;
                files_written += 1;
                schedule.set_eviction(candidate.node, step);
            }
        }

        let during = resident_total + tree.n(node) + tree.children_file_sum(node);
        debug_assert!(during <= memory, "selection must cover the deficit");
        peak = peak.max(during);

        // Execute the node.
        resident[node] = false;
        resident_pos.remove(&step);
        resident_total -= tree.f(node);
        for &child in tree.children(node) {
            resident[child] = true;
            resident_pos.insert(positions[child]);
            produced_at[child] = step + 1;
            resident_total += tree.f(child);
        }
        session.observe_execution(step, node, tree);
    }

    // Full re-validation through the independent Algorithm 2 checker, debug
    // builds only (it re-simulates the whole run); the positions computed
    // above are passed through instead of being recomputed.
    #[cfg(debug_assertions)]
    {
        let check =
            check_out_of_core_with_positions(tree, traversal, &positions, &schedule, memory)
                .expect("simulated schedule must validate");
        debug_assert_eq!(check.io_volume, io_volume);
        debug_assert_eq!(check.peak_memory, peak);
    }

    Ok(Some(OutOfCoreRun {
        io_volume,
        read_volume: io_volume,
        files_written,
        peak_memory: peak,
        schedule,
    }))
}

/// The original (seed) implementation of [`schedule_io_with`]: at every
/// deficit step it rebuilds the candidate list by scanning **all** `p` nodes
/// and re-sorting by traversal position, making a simulated run
/// O(p² log p) on traversals with many deficit steps.
///
/// Retained verbatim for two purposes only: the golden parity test pins the
/// incremental simulator to it cell by cell, and the scaling benchmark
/// (`exp_scaling`) measures the speedup of the incremental path against it.
/// New code should always call [`schedule_io_with`].
pub fn schedule_io_naive(
    tree: &Tree,
    traversal: &Traversal,
    memory: Size,
    policy: &dyn Policy,
) -> Result<OutOfCoreRun, MinIoError> {
    traversal.check_precedence(tree)?;
    let positions = traversal.positions(tree.len())?;
    let mut session = policy.session(tree, traversal);

    let root = tree.root();
    let mut resident = vec![false; tree.len()];
    resident[root] = true;
    let mut evicted = vec![false; tree.len()];
    // Step at which each file appeared in memory (root: before step 0).
    let mut produced_at = vec![0usize; tree.len()];
    let mut resident_total = tree.f(root);
    let mut schedule = IoSchedule::empty(tree.len());
    let mut io_volume: Size = 0;
    let mut files_written = 0usize;
    let mut peak: Size = tree.f(root);

    for (step, &node) in traversal.order().iter().enumerate() {
        // Read the node's input file back first if it was evicted earlier.
        if evicted[node] && !resident[node] {
            resident[node] = true;
            resident_total += tree.f(node);
        }

        let requirement = tree.mem_req(node);
        if requirement > memory {
            return Err(MinIoError::InsufficientMemory {
                node,
                required: requirement,
                memory,
            });
        }

        // Memory needed while the node executes, given what is resident.
        let during = resident_total + tree.n(node) + tree.children_file_sum(node);
        if during > memory {
            let deficit = during - memory;
            // Candidate files: resident, already produced, not the one being
            // executed; ordered by latest use first.
            let mut candidates: Vec<Candidate> = tree
                .nodes()
                .filter(|&i| i != node && resident[i])
                .map(|i| Candidate {
                    node: i,
                    size: tree.f(i),
                    produced_at: produced_at[i],
                })
                .collect();
            candidates.sort_by(|a, b| positions[b.node].cmp(&positions[a.node]));

            let ctx = EvictionContext {
                tree,
                positions: &positions,
                step,
                node,
                deficit,
                candidates: &candidates,
            };
            let raw = session.select(&ctx);
            // Sanitise: keep the first occurrence of each in-range index,
            // then complete any shortfall with the LSNF fallback.
            let mut chosen: Vec<usize> = Vec::with_capacity(raw.len());
            let mut taken = vec![false; candidates.len()];
            let mut freed: Size = 0;
            for idx in raw {
                if idx < candidates.len() && !taken[idx] {
                    taken[idx] = true;
                    chosen.push(idx);
                    freed += candidates[idx].size;
                }
            }
            if freed < deficit {
                let rest = lsnf_fill(&candidates, deficit - freed, &chosen);
                chosen.extend(rest);
            }
            for &idx in &chosen {
                let candidate = candidates[idx];
                resident[candidate.node] = false;
                evicted[candidate.node] = true;
                resident_total -= candidate.size;
                io_volume += candidate.size;
                files_written += 1;
                schedule.set_eviction(candidate.node, step);
            }
        }

        let during = resident_total + tree.n(node) + tree.children_file_sum(node);
        debug_assert!(during <= memory, "selection must cover the deficit");
        peak = peak.max(during);

        // Execute the node.
        resident[node] = false;
        resident_total -= tree.f(node);
        for &child in tree.children(node) {
            resident[child] = true;
            produced_at[child] = step + 1;
            resident_total += tree.f(child);
        }
        session.observe_execution(step, node, tree);
    }

    Ok(OutOfCoreRun {
        io_volume,
        read_volume: io_volume,
        files_written,
        peak_memory: peak,
        schedule,
    })
}

/// Simulate an out-of-core execution with one of the paper's six heuristics.
///
/// Compatibility wrapper around [`schedule_io_with`]; see there for the
/// semantics and failure modes.
pub fn schedule_io(
    tree: &Tree,
    traversal: &Traversal,
    memory: Size,
    policy: EvictionPolicy,
) -> Result<OutOfCoreRun, MinIoError> {
    schedule_io_with(tree, traversal, memory, policy.to_policy().as_ref())
}

/// Exact minimum I/O volume of `traversal` under the *divisible* relaxation
/// of MinIO, where arbitrary fractions of files may be written out.
///
/// In the divisible model the LSNF policy is optimal (the file fraction used
/// furthest in the future is always the best thing to evict, by a standard
/// exchange argument), so this value is a lower bound on the I/O volume any
/// policy can reach **for this traversal**, and is used by the experiments
/// to gauge the absolute quality of the heuristics.
pub fn divisible_lower_bound(
    tree: &Tree,
    traversal: &Traversal,
    memory: Size,
) -> Result<Size, MinIoError> {
    traversal.check_precedence(tree)?;
    let positions = traversal.positions(tree.len())?;

    let root = tree.root();
    // in_core[i]: fraction (in size units) of file i still resident; only
    // produced files ever have a positive value.
    let mut in_core: Vec<Size> = vec![0; tree.len()];
    in_core[root] = tree.f(root);
    let mut resident_total = tree.f(root);
    let mut io_volume: Size = 0;

    for &node in traversal.order() {
        let requirement = tree.mem_req(node);
        if requirement > memory {
            return Err(MinIoError::InsufficientMemory {
                node,
                required: requirement,
                memory,
            });
        }
        // Read back the missing part of the input file.
        resident_total += tree.f(node) - in_core[node];
        in_core[node] = tree.f(node);

        let during = resident_total + tree.n(node) + tree.children_file_sum(node);
        if during > memory {
            let mut deficit = during - memory;
            // Evict fractions of the latest-used files first.
            let mut candidates: Vec<NodeId> = tree
                .nodes()
                .filter(|&i| i != node && in_core[i] > 0)
                .collect();
            candidates.sort_by(|&a, &b| positions[b].cmp(&positions[a]));
            for i in candidates {
                if deficit <= 0 {
                    break;
                }
                let take = in_core[i].min(deficit);
                in_core[i] -= take;
                resident_total -= take;
                io_volume += take;
                deficit -= take;
            }
            debug_assert!(
                deficit <= 0,
                "divisible eviction can always cover the deficit"
            );
        }

        // Execute the node.
        resident_total -= in_core[node];
        in_core[node] = 0;
        for &child in tree.children(node) {
            in_core[child] = tree.f(child);
            resident_total += tree.f(child);
        }
    }
    Ok(io_volume)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::check_out_of_core;
    use crate::ALL_POLICIES;
    use treemem::gadgets::{harpoon, two_partition_gadget};
    use treemem::minmem::min_mem;
    use treemem::postorder::best_postorder;
    use treemem::tree::TreeBuilder;

    #[test]
    fn no_io_when_memory_is_sufficient() {
        let tree = harpoon(3, 300, 1);
        let po = best_postorder(&tree);
        for policy in ALL_POLICIES {
            let run = schedule_io(&tree, &po.traversal, po.peak, policy).unwrap();
            assert_eq!(run.io_volume, 0, "{policy}");
            assert_eq!(run.files_written, 0);
            assert_eq!(run.peak_memory, po.peak);
        }
    }

    #[test]
    fn io_appears_below_the_peak_and_respects_memory() {
        let tree = harpoon(4, 400, 1);
        let po = best_postorder(&tree);
        let opt = min_mem(&tree);
        for memory in [tree.max_mem_req(), opt.peak, (opt.peak + po.peak) / 2] {
            for policy in ALL_POLICIES {
                let run = schedule_io(&tree, &po.traversal, memory, policy).unwrap();
                assert!(run.peak_memory <= memory, "{policy} with memory {memory}");
                // Re-validate with the independent Algorithm 2 checker.
                let check = check_out_of_core(&tree, &po.traversal, &run.schedule, memory).unwrap();
                assert_eq!(check.io_volume, run.io_volume);
                // The divisible bound is a lower bound.
                let bound = divisible_lower_bound(&tree, &po.traversal, memory).unwrap();
                assert!(
                    bound <= run.io_volume,
                    "{policy}: bound {bound} > {}",
                    run.io_volume
                );
            }
        }
    }

    #[test]
    fn lsnf_matches_divisible_bound_when_files_align() {
        // All files the same size: LSNF evicts exactly the deficit rounded up
        // to a multiple of the file size, and the divisible bound differs by
        // less than one file.
        let mut b = TreeBuilder::new();
        let r = b.add_root(0, 0);
        for _ in 0..6 {
            let c = b.add_child(r, 10, 0);
            b.add_child(c, 10, 0);
        }
        let tree = b.build().unwrap();
        let po = best_postorder(&tree);
        // Stay above max MemReq (60) but below the postorder peak (70).
        let memory = po.peak - 8;
        let run = schedule_io(
            &tree,
            &po.traversal,
            memory,
            EvictionPolicy::LastScheduledNodeFirst,
        )
        .unwrap();
        let bound = divisible_lower_bound(&tree, &po.traversal, memory).unwrap();
        assert!(run.io_volume >= bound);
        assert!(run.io_volume - bound < 10);
    }

    #[test]
    fn insufficient_memory_is_reported() {
        let tree = harpoon(3, 300, 1);
        let po = best_postorder(&tree);
        let too_small = tree.max_mem_req() - 1;
        for policy in ALL_POLICIES {
            let err = schedule_io(&tree, &po.traversal, too_small, policy).unwrap_err();
            assert!(
                matches!(err, MinIoError::InsufficientMemory { .. }),
                "{policy}"
            );
        }
    }

    #[test]
    fn first_fit_prefers_a_single_large_file() {
        // Root produces one big file (90) and three small ones (10 each);
        // executing the child that needs 85 free requires evicting either the
        // big file (First Fit: one write of 90) or several small ones.
        let mut b = TreeBuilder::new();
        let r = b.add_root(0, 0);
        let big = b.add_child(r, 90, 0);
        b.add_child(big, 1, 0);
        let mut needy = 0;
        for _ in 0..3 {
            needy = b.add_child(r, 10, 0);
            b.add_child(needy, 95, 0);
        }
        let tree = b.build().unwrap();
        // Traversal: root, then the last small branch (which needs 95 extra).
        let order = vec![r, needy, needy + 1, 3, 4, 5, 6, big, big + 1];
        let traversal = treemem::Traversal::new(order);
        let memory = 125;
        let first_fit = schedule_io(&tree, &traversal, memory, EvictionPolicy::FirstFit).unwrap();
        let lsnf = schedule_io(
            &tree,
            &traversal,
            memory,
            EvictionPolicy::LastScheduledNodeFirst,
        )
        .unwrap();
        // First Fit writes a single file, LSNF may write several smaller ones.
        assert_eq!(first_fit.files_written, 1);
        assert!(first_fit.io_volume >= 90);
        assert!(lsnf.files_written >= 1);
    }

    #[test]
    fn two_partition_gadget_behaviour() {
        // With a solvable 2-Partition instance, an I/O volume of exactly S/2
        // is reachable; the heuristics are not guaranteed to find it (the
        // problem is NP-complete) but must stay within the trivial bounds and
        // produce feasible schedules.
        let gadget = two_partition_gadget(&[3, 5, 2, 4, 6, 4]);
        let tree = &gadget.tree;
        // Order: root, T_big, its leaf, then every item branch.
        let mut order = vec![
            tree.root(),
            gadget.big_node,
            tree.children(gadget.big_node)[0],
        ];
        for &item in &gadget.item_nodes {
            order.push(item);
            order.push(tree.children(item)[0]);
        }
        let traversal = treemem::Traversal::new(order);
        let bound = divisible_lower_bound(tree, &traversal, gadget.memory).unwrap();
        assert_eq!(
            bound, gadget.io_bound,
            "divisible bound equals S/2 for the gadget"
        );
        for policy in ALL_POLICIES {
            let run = schedule_io(tree, &traversal, gadget.memory, policy).unwrap();
            assert!(run.io_volume >= gadget.io_bound, "{policy}");
            assert!(run.peak_memory <= gadget.memory, "{policy}");
        }
        // Best-K combination explores subsets and finds the exact split for
        // this small instance.
        let best_k = schedule_io(
            tree,
            &traversal,
            gadget.memory,
            EvictionPolicy::BestKCombination { k: 6 },
        )
        .unwrap();
        assert_eq!(best_k.io_volume, gadget.io_bound);
    }

    #[test]
    fn policies_report_their_names() {
        let names: Vec<&str> = ALL_POLICIES.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "LSNF",
                "FirstFit",
                "BestFit",
                "FirstFill",
                "BestFill",
                "BestKComb"
            ]
        );
    }

    #[test]
    fn enum_shim_and_trait_objects_agree() {
        let tree = harpoon(4, 400, 1);
        let po = best_postorder(&tree);
        let memory = tree.max_mem_req();
        for policy in ALL_POLICIES {
            let via_enum = schedule_io(&tree, &po.traversal, memory, policy).unwrap();
            let via_trait =
                schedule_io_with(&tree, &po.traversal, memory, policy.to_policy().as_ref())
                    .unwrap();
            assert_eq!(via_enum.io_volume, via_trait.io_volume, "{policy}");
            assert_eq!(via_enum.schedule, via_trait.schedule, "{policy}");
        }
    }
}
