//! # minio — out-of-core tree traversals and the MinIO problem
//!
//! When the main memory `M` is smaller than the MinMemory value of a tree,
//! some files must temporarily be written to secondary memory (Section V of
//! the paper).  The *MinIO* problem asks for the traversal and the eviction
//! schedule that minimise the total volume of data written out.  The paper
//! proves MinIO NP-complete — even when the traversal is fixed and even when
//! it is restricted to postorders (Theorem 2, reduction from 2-Partition) —
//! and proposes six greedy eviction heuristics, all implemented here:
//!
//! * **LSNF** (Last Scheduled Node First) — evict the files that will be used
//!   latest; optimal for the *divisible* relaxation where fractions of files
//!   can be written out;
//! * **First Fit** — the first (latest-used) file large enough to cover the
//!   deficit, falling back to LSNF;
//! * **Best Fit** — the file whose size is closest to the deficit;
//! * **First Fill** — the first file smaller than the deficit, repeatedly,
//!   falling back to LSNF;
//! * **Best Fill** — the file closest to the deficit among those smaller than
//!   it, repeatedly, falling back to LSNF;
//! * **Best-K Combination** — the best subset of the first `K` (default 5)
//!   latest-used files.
//!
//! Beyond the paper's catalogue, eviction is **pluggable**: the [`Policy`]
//! trait (see [`policy`]) describes an eviction policy abstractly, the six
//! heuristics above are implementations of it ([`policy::paper`]), three
//! cache-inspired policies adapted from the caching literature live in
//! [`policy::cache`] (LRU ageing, a GDSF-style size-aware rule, an
//! S3-FIFO-style segmented queue), and [`PolicyRegistry`] catalogues them by
//! name for sweeps.
//!
//! The main entry point is [`schedule_io_with`], which simulates an
//! out-of-core execution of a given traversal with a given amount of memory
//! under any [`Policy`] and returns the resulting I/O volume and eviction
//! schedule ([`schedule_io`] is the historical wrapper taking the
//! [`EvictionPolicy`] enum).  [`check_out_of_core`] implements Algorithm 2 of
//! the paper and validates such a schedule independently.
//! [`divisible_lower_bound`] gives a per-traversal lower bound on the I/O
//! volume by solving the divisible relaxation exactly.
//!
//! ```
//! use treemem::gadgets::harpoon;
//! use treemem::postorder::best_postorder;
//! use minio::{schedule_io, EvictionPolicy};
//!
//! let tree = harpoon(4, 400, 1);
//! let traversal = best_postorder(&tree).traversal;
//! // Run with less memory than the postorder needs (701): I/O is required.
//! let run = schedule_io(&tree, &traversal, 500, EvictionPolicy::FirstFit).unwrap();
//! assert!(run.io_volume > 0);
//! ```

pub mod exact;
pub mod heuristics;
pub mod policy;
pub mod schedule;
pub mod serving;

pub use exact::{exact_min_io, ExactMinIo};
pub use heuristics::{
    divisible_lower_bound, schedule_io, schedule_io_naive, schedule_io_with, schedule_io_with_stop,
    EvictionPolicy, MinIoError, OutOfCoreRun,
};
pub use policy::{Candidate, EvictionContext, EvictionSession, Policy, PolicyRegistry};
pub use schedule::{
    check_out_of_core, check_out_of_core_with_positions, IoSchedule, OutOfCoreCheck,
};
pub use serving::{select_victims, ResidentFile};

/// All six heuristics of the paper, in the order they are presented in
/// Section V-B. Convenient for sweeps in experiments and tests.
pub const ALL_POLICIES: [EvictionPolicy; 6] = [
    EvictionPolicy::LastScheduledNodeFirst,
    EvictionPolicy::FirstFit,
    EvictionPolicy::BestFit,
    EvictionPolicy::FirstFill,
    EvictionPolicy::BestFill,
    EvictionPolicy::BestKCombination { k: 5 },
];
