//! Exact MinIO for a *fixed* traversal, by branch and bound over the
//! eviction choices.
//!
//! Theorem 2(i) of the paper shows that even with the traversal fixed,
//! choosing which files to evict so as to minimise the I/O volume is
//! NP-complete (it embeds 2-Partition).  The heuristics of
//! [`crate::heuristics`] are therefore not optimal in general; this module
//! provides an exponential-time exact solver for *small* instances so that
//! tests and experiments can measure how far the heuristics are from the true
//! optimum (the paper lists such an absolute-quality assessment as future
//! work).
//!
//! The search enumerates, at every step where the resident files do not fit,
//! the subsets of evictable files that cover the deficit (pruned to subsets
//! that are minimal with respect to removal of any single file), and explores
//! them in a best-first manner with the divisible-relaxation lower bound for
//! pruning.

use treemem::tree::{NodeId, Size, Tree};
use treemem::Traversal;

use crate::heuristics::{divisible_lower_bound, schedule_io, EvictionPolicy, MinIoError};

/// Hard cap on the number of evictable candidates per step accepted by the
/// exact solver; beyond this the enumeration would be hopeless anyway.
pub const MAX_EXACT_CANDIDATES: usize = 20;

/// Result of the exact search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactMinIo {
    /// The minimum I/O volume achievable for the given traversal and memory.
    pub io_volume: Size,
    /// Number of branch-and-bound nodes explored (a measure of difficulty).
    pub explored: usize,
}

/// State of the simulation at a given step of the traversal.
#[derive(Debug, Clone)]
struct SearchState {
    step: usize,
    /// For every node: is its (produced) input file currently resident?
    resident: Vec<bool>,
    resident_total: Size,
    io_so_far: Size,
}

/// Exact minimum I/O volume of `traversal` on `tree` with main memory
/// `memory`, by branch and bound.  Only meant for small trees (the search is
/// exponential in the worst case).
///
/// Returns [`MinIoError::InsufficientMemory`] when some node cannot be
/// executed even alone, and [`MinIoError::InvalidTraversal`] when the
/// traversal is not a valid ordering of the tree.
pub fn exact_min_io(
    tree: &Tree,
    traversal: &Traversal,
    memory: Size,
) -> Result<ExactMinIo, MinIoError> {
    traversal.check_precedence(tree)?;
    for i in tree.nodes() {
        if tree.mem_req(i) > memory {
            return Err(MinIoError::InsufficientMemory {
                node: i,
                required: tree.mem_req(i),
                memory,
            });
        }
    }
    // Upper bound from the best heuristic (the search never needs to do
    // worse, and a good incumbent makes the pruning effective).
    let mut incumbent = Size::MAX;
    for policy in [
        EvictionPolicy::FirstFit,
        EvictionPolicy::BestKCombination { k: 6 },
        EvictionPolicy::LastScheduledNodeFirst,
    ] {
        incumbent = incumbent.min(schedule_io(tree, traversal, memory, policy)?.io_volume);
    }
    let lower = divisible_lower_bound(tree, traversal, memory)?;
    if incumbent == lower {
        // The heuristic already matches the divisible bound: it is optimal.
        return Ok(ExactMinIo {
            io_volume: incumbent,
            explored: 0,
        });
    }

    let positions = traversal.positions(tree.len())?;
    let order = traversal.order();
    let root = tree.root();
    let mut initial_resident = vec![false; tree.len()];
    initial_resident[root] = true;
    let initial = SearchState {
        step: 0,
        resident: initial_resident,
        resident_total: tree.f(root),
        io_so_far: 0,
    };

    let mut explored = 0usize;
    let mut best = incumbent;
    let mut stack = vec![initial];
    while let Some(state) = stack.pop() {
        explored += 1;
        if state.io_so_far >= best {
            continue;
        }
        // Advance through steps that need no eviction decision.
        let mut state = state;
        let mut needs_decision = false;
        while state.step < order.len() {
            let node = order[state.step];
            // Read the input file back if it was evicted earlier (it is not
            // resident but its parent has executed).
            if !state.resident[node] {
                state.resident[node] = true;
                state.resident_total += tree.f(node);
            }
            let during = state.resident_total + tree.n(node) + tree.children_file_sum(node);
            if during > memory {
                needs_decision = true;
                break;
            }
            // Execute the node.
            state.resident[node] = false;
            state.resident_total -= tree.f(node);
            for &child in tree.children(node) {
                state.resident[child] = true;
                state.resident_total += tree.f(child);
            }
            state.step += 1;
        }
        if !needs_decision {
            best = best.min(state.io_so_far);
            continue;
        }

        // An eviction decision is needed before executing `order[state.step]`.
        let node = order[state.step];
        let during = state.resident_total + tree.n(node) + tree.children_file_sum(node);
        let deficit = during - memory;
        let mut candidates: Vec<NodeId> = tree
            .nodes()
            .filter(|&i| i != node && state.resident[i] && tree.f(i) > 0)
            .collect();
        // Latest-used first, as in the heuristics (the order only matters for
        // the enumeration, not for correctness).
        candidates.sort_by(|&a, &b| positions[b].cmp(&positions[a]));
        if candidates.len() > MAX_EXACT_CANDIDATES {
            return Err(MinIoError::InstanceTooLarge {
                candidates: candidates.len(),
                limit: MAX_EXACT_CANDIDATES,
            });
        }
        // Enumerate minimal covering subsets: a subset is only kept if
        // removing any single element makes it insufficient.
        let total_candidates: Size = candidates.iter().map(|&i| tree.f(i)).sum();
        debug_assert!(total_candidates >= deficit);
        let count = candidates.len();
        for mask in 1u32..(1u32 << count) {
            let mut freed: Size = 0;
            for (bit, &i) in candidates.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    freed += tree.f(i);
                }
            }
            if freed < deficit {
                continue;
            }
            // Minimality: dropping any selected file must violate the deficit.
            let minimal = (0..count)
                .all(|bit| mask & (1 << bit) == 0 || freed - tree.f(candidates[bit]) < deficit);
            if !minimal {
                continue;
            }
            let io = state.io_so_far + freed;
            if io >= best {
                continue;
            }
            let mut next = state.clone();
            next.io_so_far = io;
            for (bit, &i) in candidates.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    next.resident[i] = false;
                    next.resident_total -= tree.f(i);
                }
            }
            stack.push(next);
        }
    }

    Ok(ExactMinIo {
        io_volume: best,
        explored,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ALL_POLICIES;
    use treemem::gadgets::{harpoon, two_partition_gadget};
    use treemem::minmem::min_mem;
    use treemem::postorder::best_postorder;
    use treemem::random::random_attachment_tree;

    #[test]
    fn exact_matches_divisible_bound_when_heuristics_do() {
        let tree = harpoon(4, 400, 1);
        let po = best_postorder(&tree);
        let memory = tree.max_mem_req();
        let exact = exact_min_io(&tree, &po.traversal, memory).unwrap();
        let bound = divisible_lower_bound(&tree, &po.traversal, memory).unwrap();
        assert!(exact.io_volume >= bound);
        for policy in ALL_POLICIES {
            let run = schedule_io(&tree, &po.traversal, memory, policy).unwrap();
            assert!(run.io_volume >= exact.io_volume, "{policy}");
        }
    }

    #[test]
    fn exact_finds_the_two_partition_split() {
        let gadget = two_partition_gadget(&[3, 5, 2, 4, 6, 4]);
        let tree = &gadget.tree;
        let mut order = vec![
            tree.root(),
            gadget.big_node,
            tree.children(gadget.big_node)[0],
        ];
        for &item in &gadget.item_nodes {
            order.push(item);
            order.push(tree.children(item)[0]);
        }
        let traversal = Traversal::new(order);
        let exact = exact_min_io(tree, &traversal, gadget.memory).unwrap();
        assert_eq!(
            exact.io_volume, gadget.io_bound,
            "the optimum is exactly S/2"
        );
    }

    #[test]
    fn exact_detects_unsolvable_partitions() {
        let gadget = two_partition_gadget(&[1, 1, 4]);
        let tree = &gadget.tree;
        let mut order = vec![
            tree.root(),
            gadget.big_node,
            tree.children(gadget.big_node)[0],
        ];
        for &item in &gadget.item_nodes {
            order.push(item);
            order.push(tree.children(item)[0]);
        }
        let traversal = Traversal::new(order);
        let exact = exact_min_io(tree, &traversal, gadget.memory).unwrap();
        assert!(exact.io_volume > gadget.io_bound, "no perfect split exists");
    }

    #[test]
    fn heuristics_are_never_better_than_exact_on_random_trees() {
        for seed in 0..8 {
            let tree = random_attachment_tree(14, 30, 4, seed);
            let opt = min_mem(&tree);
            let lower = tree.max_mem_req();
            if lower >= opt.peak {
                continue;
            }
            let memory = lower + (opt.peak - lower) / 3;
            let exact = match exact_min_io(&tree, &opt.traversal, memory) {
                Ok(exact) => exact,
                Err(_) => continue,
            };
            let bound = divisible_lower_bound(&tree, &opt.traversal, memory).unwrap();
            assert!(exact.io_volume >= bound, "seed {seed}");
            for policy in ALL_POLICIES {
                let run = schedule_io(&tree, &opt.traversal, memory, policy).unwrap();
                assert!(
                    run.io_volume >= exact.io_volume,
                    "seed {seed} policy {policy}"
                );
            }
        }
    }

    #[test]
    fn infeasible_memory_is_rejected() {
        let tree = harpoon(3, 300, 1);
        let po = best_postorder(&tree);
        assert!(matches!(
            exact_min_io(&tree, &po.traversal, tree.max_mem_req() - 1),
            Err(MinIoError::InsufficientMemory { .. })
        ));
    }
}
