//! Out-of-core traversal schedules and their validation (Algorithm 2 and
//! Definition 3 of the paper).
//!
//! An out-of-core traversal is a node ordering `σ` together with an eviction
//! map `τ`: `τ(i)` is the step (just before which) the input file of node `i`
//! is written to secondary memory, or `None` if the file never leaves main
//! memory.  A file can only be evicted after it has been produced
//! (`σ(parent(i)) < τ(i)`) and before its owner executes (`τ(i) < σ(i)`); it
//! is read back right before its owner executes, so every file is written at
//! most once and read at most once.

use treemem::error::TraversalError;
use treemem::traversal::Traversal;
use treemem::tree::{NodeId, Size, Tree};

/// Eviction schedule: for every node, the step (0-based index into the
/// traversal) just before which its input file is written to secondary
/// memory, or `None` if it stays in main memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoSchedule {
    evict_before_step: Vec<Option<usize>>,
}

impl IoSchedule {
    /// A schedule with no eviction at all (feasible only when the memory is
    /// at least the peak of the traversal).
    pub fn empty(num_nodes: usize) -> Self {
        IoSchedule {
            evict_before_step: vec![None; num_nodes],
        }
    }

    /// Build a schedule from an explicit `τ` map (`evict_before_step[i]` is
    /// the 0-based step before which node `i`'s file is evicted).
    pub fn from_map(evict_before_step: Vec<Option<usize>>) -> Self {
        IoSchedule { evict_before_step }
    }

    /// The step before which node `i`'s file is evicted, if any.
    pub fn eviction_step(&self, i: NodeId) -> Option<usize> {
        self.evict_before_step.get(i).copied().flatten()
    }

    /// Mark node `i`'s file as evicted just before `step`.
    pub fn set_eviction(&mut self, i: NodeId, step: usize) {
        self.evict_before_step[i] = Some(step);
    }

    /// Number of evicted files.
    pub fn eviction_count(&self) -> usize {
        self.evict_before_step
            .iter()
            .filter(|e| e.is_some())
            .count()
    }

    /// Nodes whose file is evicted, together with the step of the eviction.
    pub fn evictions(&self) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        self.evict_before_step
            .iter()
            .enumerate()
            .filter_map(|(node, step)| step.map(|s| (node, s)))
    }

    /// Total volume written to secondary memory (`IO = Σ_{τ(i) ≠ ∞} f(i)`).
    pub fn io_volume(&self, tree: &Tree) -> Size {
        self.evictions().map(|(node, _)| tree.f(node)).sum()
    }
}

/// Result of a successful [`check_out_of_core`] validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfCoreCheck {
    /// Total volume written to secondary memory.
    pub io_volume: Size,
    /// Peak main-memory usage of the schedule (always `≤ memory`).
    pub peak_memory: Size,
}

/// Algorithm 2 of the paper: check that `(traversal, schedule)` is a feasible
/// out-of-core execution of `tree` within `memory`, and return the I/O
/// volume.
///
/// The check verifies, step by step, that
///
/// * evicted files have already been produced and are still resident when
///   they are evicted,
/// * files are evicted strictly before their owner executes,
/// * precedence constraints hold, and
/// * the resident memory (after evictions and the read-back of the executed
///   node's input file) never exceeds `memory`.
pub fn check_out_of_core(
    tree: &Tree,
    traversal: &Traversal,
    schedule: &IoSchedule,
    memory: Size,
) -> Result<OutOfCoreCheck, TraversalError> {
    traversal.check_precedence(tree)?;
    let positions = traversal.positions(tree.len())?;
    check_out_of_core_with_positions(tree, traversal, &positions, schedule, memory)
}

/// [`check_out_of_core`] with the traversal's position map supplied by the
/// caller, who must already have validated the traversal's precedence (the
/// out-of-core simulator computes the positions once per run and passes them
/// through here instead of recomputing the permutation twice).
pub fn check_out_of_core_with_positions(
    tree: &Tree,
    traversal: &Traversal,
    positions: &[usize],
    schedule: &IoSchedule,
    memory: Size,
) -> Result<OutOfCoreCheck, TraversalError> {
    debug_assert_eq!(positions.len(), tree.len());

    // evictions grouped by step.
    let mut evictions_at_step: Vec<Vec<NodeId>> = vec![Vec::new(); traversal.len() + 1];
    for (node, step) in schedule.evictions() {
        if step > traversal.len() {
            return Err(TraversalError::FileNotProduced { node });
        }
        evictions_at_step[step].push(node);
    }

    let root = tree.root();
    let mut resident = vec![false; tree.len()];
    resident[root] = true;
    let mut written = vec![false; tree.len()];
    let mut resident_total = tree.f(root);
    let mut io_volume: Size = 0;
    let mut peak: Size = tree.f(root);

    for (step, &node) in traversal.order().iter().enumerate() {
        // Evictions scheduled just before this step.
        for &evicted in &evictions_at_step[step] {
            // The file must have been produced: its parent executed earlier
            // (or it is the root file, produced "by the outside world").
            let produced = match tree.parent(evicted) {
                Some(par) => positions[par] < step,
                None => true,
            };
            if !produced {
                return Err(TraversalError::FileNotProduced { node: evicted });
            }
            // It must still be resident and not already consumed: its owner
            // executes strictly later.
            if !resident[evicted] || positions[evicted] < step {
                return Err(TraversalError::FileNotResident { node: evicted });
            }
            resident[evicted] = false;
            written[evicted] = true;
            resident_total -= tree.f(evicted);
            io_volume += tree.f(evicted);
        }

        // Read the input file back if it had been evicted.
        if written[node] && !resident[node] {
            resident[node] = true;
            resident_total += tree.f(node);
        }
        debug_assert!(
            resident[node],
            "input file of the executed node must be resident"
        );

        // Execute the node.
        let during = resident_total + tree.n(node) + tree.children_file_sum(node);
        peak = peak.max(during);
        if during > memory {
            return Err(TraversalError::OutOfMemory {
                step,
                node,
                required: during,
                available: memory,
            });
        }
        resident[node] = false;
        resident_total -= tree.f(node);
        for &child in tree.children(node) {
            resident[child] = true;
            resident_total += tree.f(child);
        }
    }

    Ok(OutOfCoreCheck {
        io_volume,
        peak_memory: peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use treemem::tree::TreeBuilder;

    /// Root with two children of size 6 and 4, each with a leaf child.
    fn small_tree() -> Tree {
        let mut b = TreeBuilder::new();
        let r = b.add_root(0, 0);
        let a = b.add_child(r, 6, 0);
        b.add_child(a, 2, 0);
        let c = b.add_child(r, 4, 0);
        b.add_child(c, 3, 0);
        b.build().unwrap()
    }

    #[test]
    fn empty_schedule_matches_in_core_check() {
        let tree = small_tree();
        let traversal = Traversal::new(vec![0, 1, 2, 3, 4]);
        let peak = traversal.peak_memory(&tree).unwrap();
        let schedule = IoSchedule::empty(tree.len());
        let check = check_out_of_core(&tree, &traversal, &schedule, peak).unwrap();
        assert_eq!(check.io_volume, 0);
        assert_eq!(check.peak_memory, peak);
        assert!(check_out_of_core(&tree, &traversal, &schedule, peak - 1).is_err());
    }

    #[test]
    fn evicting_a_file_lowers_the_peak() {
        let tree = small_tree();
        // Traversal: root, a, leaf of a, c, leaf of c.
        let traversal = Traversal::new(vec![0, 1, 2, 3, 4]);
        // Without IO, the peak is 10 (processing root produces 6 + 4), and
        // while a executes, c's file (4) is resident: 6 + 2 + 4 = 12.
        assert_eq!(traversal.peak_memory(&tree).unwrap(), 12);
        // Evict c's file right after the root has executed (before step 1)
        // and read it back when c executes (step 3).
        let mut schedule = IoSchedule::empty(tree.len());
        schedule.set_eviction(3, 1);
        let check = check_out_of_core(&tree, &traversal, &schedule, 10).unwrap();
        assert_eq!(check.io_volume, 4);
        assert!(check.peak_memory <= 10);
    }

    #[test]
    fn eviction_before_production_is_rejected() {
        let tree = small_tree();
        let traversal = Traversal::new(vec![0, 1, 2, 3, 4]);
        let mut schedule = IoSchedule::empty(tree.len());
        // Node 2 (leaf of a) is produced by step 1; evicting before step 0 is invalid.
        schedule.set_eviction(2, 0);
        assert_eq!(
            check_out_of_core(&tree, &traversal, &schedule, 100),
            Err(TraversalError::FileNotProduced { node: 2 })
        );
    }

    #[test]
    fn eviction_after_consumption_is_rejected() {
        let tree = small_tree();
        let traversal = Traversal::new(vec![0, 1, 2, 3, 4]);
        let mut schedule = IoSchedule::empty(tree.len());
        // Node 1 executes at step 1; evicting its file before step 3 is too late.
        schedule.set_eviction(1, 3);
        assert_eq!(
            check_out_of_core(&tree, &traversal, &schedule, 100),
            Err(TraversalError::FileNotResident { node: 1 })
        );
    }

    #[test]
    fn io_volume_accounts_every_eviction() {
        let tree = small_tree();
        let mut schedule = IoSchedule::empty(tree.len());
        schedule.set_eviction(3, 1);
        schedule.set_eviction(4, 4);
        assert_eq!(schedule.eviction_count(), 2);
        assert_eq!(schedule.io_volume(&tree), 4 + 3);
        let evictions: Vec<_> = schedule.evictions().collect();
        assert!(evictions.contains(&(3, 1)) && evictions.contains(&(4, 4)));
    }
}
