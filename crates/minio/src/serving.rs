//! Bridge from the simulation-oriented [`Policy`] trait to an
//! online cache.
//!
//! The nine registered eviction policies were written for the MinIO
//! *simulator*: they select victims from an [`EvictionContext`] describing a
//! tree traversal whose future is fully known (`positions` says exactly when
//! every resident file will be used next).  An online serving cache knows no
//! future — only the past (insertion time, last access, hit counts) — but the
//! two worlds line up once the cache *predicts* a next-use distance per
//! resident entry and presents the prediction in the shape the policies
//! already understand.
//!
//! [`select_victims`] does exactly that.  For one eviction decision it:
//!
//! 1. predicts a next-use distance for every resident entry from its
//!    recency/frequency history (stale, rarely-hit entries are predicted to be
//!    used furthest in the future),
//! 2. lays the entries out as the leaves of a synthetic one-level "star" tree
//!    whose traversal consumes them in predicted order (furthest-predicted
//!    leaf scheduled last — i.e. first in the latest-use-first candidate
//!    order the policies require),
//! 3. runs the policy's [`EvictionSession`](crate::EvictionSession) over that context exactly as the
//!    simulator would, and
//! 4. completes any shortfall with [`lsnf_fill`], mirroring the simulator's
//!    engine-side completion, so every registered policy is safe to drive a
//!    real cache.
//!
//! The bridged decision is deterministic: ties in the predicted ordering are
//! broken by slot id, and the synthetic tree is rebuilt from scratch per call
//! so no state leaks between decisions.  Stateful policies (S3-FIFO keeps
//! per-node residency queues keyed by the synthetic node ids) degrade to
//! their fallback behaviour under this bridge; callers that want their full
//! behaviour online should implement a native serving policy instead and
//! reserve the bridge for the stateless heuristics.

use crate::policy::{lsnf_fill, Candidate, EvictionContext, Policy};
use treemem::traversal::Traversal;
use treemem::tree::{NodeId, Size, Tree};

/// One resident cache entry offered to a bridged eviction decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentFile {
    /// Caller-stable identifier returned in the victim list.
    pub slot: u64,
    /// Byte footprint of the entry (clamped to at least one byte).
    pub bytes: u64,
    /// Monotonic tick at which the entry was inserted.
    pub inserted_tick: u64,
    /// Monotonic tick of the most recent access (insert counts as an access).
    pub last_access_tick: u64,
    /// Number of cache hits the entry has served.
    pub hits: u64,
}

impl ResidentFile {
    /// Predicted steps until the next use, from recency and frequency: the
    /// staleness (ticks since last access) scaled down for frequently hit
    /// entries, the classic inter-arrival estimate.  Larger means "used
    /// further in the future", i.e. a better eviction victim.
    fn predicted_distance(&self, now_tick: u64) -> u64 {
        let staleness = now_tick.saturating_sub(self.last_access_tick);
        staleness / (self.hits + 1)
    }
}

/// Ask a simulation policy for eviction victims among `residents`, freeing at
/// least `deficit_bytes`.  Returns the chosen entries' `slot` ids.
///
/// The selection is completed with the latest-scheduled-node-first rule when
/// the policy's own picks fall short (exactly like the MinIO simulator), so
/// the result always frees at least `deficit_bytes` whenever the residents
/// collectively hold that much.  An empty resident list returns no victims.
pub fn select_victims(
    policy: &dyn Policy,
    residents: &[ResidentFile],
    now_tick: u64,
    deficit_bytes: u64,
) -> Vec<u64> {
    if residents.is_empty() || deficit_bytes == 0 {
        return Vec::new();
    }

    // Latest-predicted-use first, the candidate order the policies contract
    // on.  Ties fall back to plain staleness, then slot id for determinism.
    let mut ordered: Vec<&ResidentFile> = residents.iter().collect();
    ordered.sort_by(|a, b| {
        let da = a.predicted_distance(now_tick);
        let db = b.predicted_distance(now_tick);
        db.cmp(&da)
            .then_with(|| {
                let sa = now_tick.saturating_sub(a.last_access_tick);
                let sb = now_tick.saturating_sub(b.last_access_tick);
                sb.cmp(&sa)
            })
            .then_with(|| a.slot.cmp(&b.slot))
    });

    // `produced_at` is what LRU-style policies age by in the simulator: the
    // step the file appeared.  Online, the closest analogue is the last
    // access, so candidates are ranked by it (oldest access = rank 0).
    let mut access_rank: Vec<usize> = (0..ordered.len()).collect();
    access_rank.sort_by(|&a, &b| {
        ordered[a]
            .last_access_tick
            .cmp(&ordered[b].last_access_tick)
            .then_with(|| ordered[a].slot.cmp(&ordered[b].slot))
    });
    let mut produced_at = vec![0usize; ordered.len()];
    for (rank, &idx) in access_rank.iter().enumerate() {
        produced_at[idx] = rank;
    }

    // Synthetic star tree: every resident entry is a leaf, one root consumes
    // them all.  The traversal schedules the leaves in *reverse* candidate
    // order so candidate 0 (furthest predicted use) executes last among the
    // leaves, making the simulator's `distance_to_use` agree with the
    // predicted ordering.
    let k = ordered.len();
    let root: NodeId = k;
    let mut parents: Vec<Option<NodeId>> = vec![Some(root); k];
    parents.push(None);
    let mut files: Vec<Size> = ordered
        .iter()
        .map(|r| Size::try_from(r.bytes.max(1)).unwrap_or(Size::MAX))
        .collect();
    files.push(0);
    let weights: Vec<Size> = vec![1; k + 1];
    let tree = match Tree::from_parents(&parents, &files, &weights) {
        Ok(tree) => tree,
        // Unreachable for a star tree; fall back to the universal rule so a
        // serving cache can never be left without victims.
        Err(_) => return fallback_lsnf(&ordered, deficit_bytes),
    };
    let mut order: Vec<NodeId> = (0..k).rev().collect();
    order.push(root);
    let traversal = Traversal::new(order);
    let positions = match traversal.positions(tree.len()) {
        Ok(positions) => positions,
        Err(_) => return fallback_lsnf(&ordered, deficit_bytes),
    };

    let candidates: Vec<Candidate> = ordered
        .iter()
        .enumerate()
        .map(|(i, r)| Candidate {
            node: i,
            size: Size::try_from(r.bytes.max(1)).unwrap_or(Size::MAX),
            produced_at: produced_at[i],
        })
        .collect();
    let deficit = Size::try_from(deficit_bytes).unwrap_or(Size::MAX).max(1);
    let ctx = EvictionContext {
        tree: &tree,
        positions: &positions,
        step: 0,
        node: root,
        deficit,
        candidates: &candidates,
    };

    let mut session = policy.session(&tree, &traversal);
    let raw = session.select(&ctx);

    // Sanitize exactly like the simulator: drop out-of-range and duplicate
    // indices, then complete any shortfall latest-use-first.
    let mut taken = vec![false; k];
    let mut selected = Vec::new();
    let mut freed: Size = 0;
    for idx in raw {
        if idx < k && !taken[idx] {
            taken[idx] = true;
            freed = freed.saturating_add(candidates[idx].size);
            selected.push(idx);
        }
    }
    if freed < deficit {
        let skip: Vec<usize> = selected.clone();
        for idx in lsnf_fill(&candidates, deficit - freed, &skip) {
            if idx < k && !taken[idx] {
                taken[idx] = true;
                selected.push(idx);
            }
        }
    }
    selected.into_iter().map(|idx| ordered[idx].slot).collect()
}

/// Last-resort completion when the synthetic context cannot be built: walk
/// the predicted-furthest-first ordering directly.
fn fallback_lsnf(ordered: &[&ResidentFile], deficit_bytes: u64) -> Vec<u64> {
    let mut freed: u64 = 0;
    let mut victims = Vec::new();
    for r in ordered {
        if freed >= deficit_bytes {
            break;
        }
        freed = freed.saturating_add(r.bytes.max(1));
        victims.push(r.slot);
    }
    victims
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyRegistry;

    fn resident(slot: u64, bytes: u64, last_access: u64, hits: u64) -> ResidentFile {
        ResidentFile {
            slot,
            bytes,
            inserted_tick: 0,
            last_access_tick: last_access,
            hits,
        }
    }

    #[test]
    fn lsnf_bridge_evicts_stalest_first() {
        let registry = PolicyRegistry::with_builtin();
        let lsnf = registry.get("LSNF").unwrap();
        // Slot 1 is stalest (last access 0), slot 3 hottest.
        let residents = vec![
            resident(1, 100, 0, 0),
            resident(2, 100, 50, 0),
            resident(3, 100, 90, 0),
        ];
        let victims = select_victims(lsnf, &residents, 100, 150);
        assert_eq!(victims, vec![1, 2]);
    }

    #[test]
    fn frequency_protects_recently_useful_entries() {
        let registry = PolicyRegistry::with_builtin();
        let lsnf = registry.get("LSNF").unwrap();
        // Equal staleness, but slot 2 has served many hits: its predicted
        // next use is sooner, so slot 1 goes first.
        let residents = vec![resident(1, 100, 40, 0), resident(2, 100, 40, 9)];
        let victims = select_victims(lsnf, &residents, 100, 50);
        assert_eq!(victims, vec![1]);
    }

    #[test]
    fn first_fit_picks_a_single_covering_entry() {
        let registry = PolicyRegistry::with_builtin();
        let first_fit = registry.get("FirstFit").unwrap();
        // The stalest entry is too small to cover the deficit alone; FirstFit
        // should jump to the first one that does.
        let residents = vec![
            resident(1, 10, 0, 0),
            resident(2, 500, 20, 0),
            resident(3, 10, 90, 0),
        ];
        let victims = select_victims(first_fit, &residents, 100, 400);
        assert_eq!(victims, vec![2]);
    }

    #[test]
    fn every_builtin_policy_frees_the_deficit() {
        let registry = PolicyRegistry::with_builtin();
        let residents: Vec<ResidentFile> = (0..20)
            .map(|i| resident(i, 64 + 32 * (i % 5), i * 3, i % 4))
            .collect();
        let total: u64 = residents.iter().map(|r| r.bytes).sum();
        for policy in registry.iter() {
            for &deficit in &[1u64, 100, 500, total] {
                let victims = select_victims(policy, &residents, 100, deficit);
                let freed: u64 = victims
                    .iter()
                    .map(|slot| {
                        residents
                            .iter()
                            .find(|r| r.slot == *slot)
                            .map(|r| r.bytes)
                            .unwrap_or(0)
                    })
                    .sum();
                assert!(
                    freed >= deficit.min(total),
                    "policy {} freed {freed} of deficit {deficit}",
                    policy.name()
                );
                // No duplicates.
                let mut sorted = victims.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), victims.len(), "policy {}", policy.name());
            }
        }
    }

    #[test]
    fn empty_residents_and_zero_deficit_are_no_ops() {
        let registry = PolicyRegistry::with_builtin();
        let lsnf = registry.get("LSNF").unwrap();
        assert!(select_victims(lsnf, &[], 10, 100).is_empty());
        let residents = vec![resident(1, 100, 0, 0)];
        assert!(select_victims(lsnf, &residents, 10, 0).is_empty());
    }
}
