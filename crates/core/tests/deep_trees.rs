//! Regression tests for very deep and very large trees.
//!
//! The exact solvers used to recurse along the height of the tree, which
//! overflowed the (2 MiB) test-thread stack on chain-like inputs well below
//! the 10⁵-node scale of real nested-dissection assembly trees.  These tests
//! run every solver on a 100 000-node chain and a 50 000-node random tree on
//! a plain test thread — no big-stack helper — so any reintroduction of
//! height-deep recursion (or of the quadratic traversal-concatenation the
//! iterative rewrite removed) shows up as an overflow or a timeout here.

use treemem::liu::liu_exact;
use treemem::minmem::min_mem;
use treemem::postorder::{best_postorder, natural_postorder};
use treemem::random::{random_attachment_tree, random_chain};

#[test]
fn all_solvers_handle_a_100k_node_chain() {
    let tree = random_chain(100_000, 100, 0xdeec);
    assert_eq!(tree.height(), 99_999);

    let natural = natural_postorder(&tree);
    let best = best_postorder(&tree);
    let liu = liu_exact(&tree);
    let opt = min_mem(&tree);

    // A chain has a unique traversal: every solver must agree, and the peak
    // is the largest single-node requirement.
    let expected = tree.max_mem_req();
    assert_eq!(natural.peak, expected);
    assert_eq!(best.peak, expected);
    assert_eq!(liu.peak, expected);
    assert_eq!(opt.peak, expected);

    assert_eq!(opt.traversal.len(), tree.len());
    assert_eq!(liu.traversal.len(), tree.len());
    assert!(opt.traversal.check_in_core(&tree, opt.peak).is_ok());
}

#[test]
fn all_solvers_agree_on_a_50k_node_random_tree() {
    let tree = random_attachment_tree(50_000, 1000, 20, 0xdeec);

    let natural = natural_postorder(&tree);
    let best = best_postorder(&tree);
    let liu = liu_exact(&tree);
    let opt = min_mem(&tree);

    // The two exact solvers must agree; no postorder may beat them.
    assert_eq!(liu.peak, opt.peak, "Liu and MinMem disagree");
    assert!(best.peak >= opt.peak);
    assert!(natural.peak >= best.peak);

    // Every produced traversal is feasible at its reported peak.
    for (label, traversal, peak) in [
        ("natural", &natural.traversal, natural.peak),
        ("postorder", &best.traversal, best.peak),
        ("liu", &liu.traversal, liu.peak),
        ("minmem", &opt.traversal, opt.peak),
    ] {
        assert_eq!(
            traversal.peak_memory(&tree).unwrap(),
            peak,
            "{label} peak mismatch"
        );
    }
}

#[test]
fn explore_survives_a_deep_chain_with_insufficient_memory() {
    // MinMem on a chain that needs several Explore restarts: the saved cut /
    // traversal state must round-trip through the iterative driver.
    let tree = random_chain(100_000, 1_000_000, 7);
    let opt = min_mem(&tree);
    assert_eq!(opt.peak, tree.max_mem_req());
    assert!(opt.iterations >= 1);
}
