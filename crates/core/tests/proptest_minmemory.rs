//! Property-based tests for the MinMemory algorithms.
//!
//! The key invariants, checked on randomly generated trees:
//!
//! * the two polynomial exact algorithms (`MinMem` and Liu's hill–valley
//!   algorithm) always agree, and on small trees they agree with the
//!   exponential brute-force oracle;
//! * the exact value is never larger than the best postorder, which in turn
//!   is never larger than the natural postorder;
//! * every algorithm returns a traversal whose directly-evaluated peak equals
//!   the value it reports;
//! * the exact value is at least `max_i MemReq(i)` and at most the sum of all
//!   file sizes plus the largest execution file.

use proptest::prelude::*;

use treemem::brute::brute_force_peak;
use treemem::liu::liu_exact;
use treemem::minmem::min_mem;
use treemem::postorder::{best_postorder, natural_postorder};
use treemem::tree::{Size, Tree};
use treemem::variants::{bottom_up_peak, from_replacement_model};

/// Strategy: a random tree described by random parent indices and weights.
fn arbitrary_tree(max_nodes: usize, max_file: Size, max_exec: Size) -> impl Strategy<Value = Tree> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            (
                proptest::collection::vec(0..1_000_000usize, n - 1),
                proptest::collection::vec(0..=max_file, n),
                proptest::collection::vec(0..=max_exec, n),
            )
        })
        .prop_map(|(parent_picks, files, execs)| {
            let n = files.len();
            let mut parents: Vec<Option<usize>> = vec![None; n];
            for i in 1..n {
                parents[i] = Some(parent_picks[i - 1] % i);
            }
            Tree::from_parents(&parents, &files, &execs).expect("construction is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn exact_algorithms_agree_with_brute_force(tree in arbitrary_tree(12, 30, 6)) {
        let brute = brute_force_peak(&tree);
        let mm = min_mem(&tree);
        let liu = liu_exact(&tree);
        prop_assert_eq!(mm.peak, brute, "MinMem disagrees with brute force");
        prop_assert_eq!(liu.peak, brute, "Liu disagrees with brute force");
    }

    #[test]
    fn exact_algorithms_agree_on_larger_trees(tree in arbitrary_tree(120, 1_000, 50)) {
        let mm = min_mem(&tree);
        let liu = liu_exact(&tree);
        prop_assert_eq!(mm.peak, liu.peak, "MinMem and Liu must agree");
    }

    #[test]
    fn ordering_of_the_algorithms(tree in arbitrary_tree(60, 500, 20)) {
        let exact = min_mem(&tree).peak;
        let best_po = best_postorder(&tree);
        let natural_po = natural_postorder(&tree);
        prop_assert!(exact <= best_po.peak);
        prop_assert!(best_po.peak <= natural_po.peak);
        prop_assert!(exact >= tree.max_mem_req());
        prop_assert!(exact <= tree.memory_upper_bound());
    }

    #[test]
    fn reported_peaks_match_the_traversals(tree in arbitrary_tree(60, 500, 20)) {
        let mm = min_mem(&tree);
        prop_assert_eq!(mm.peak, mm.traversal.peak_memory(&tree).unwrap());
        let liu = liu_exact(&tree);
        prop_assert_eq!(liu.peak, liu.traversal.peak_memory(&tree).unwrap());
        let po = best_postorder(&tree);
        prop_assert_eq!(po.peak, po.traversal.peak_memory(&tree).unwrap());
        // Traversals are feasible with exactly their peak and infeasible with one unit less
        // (unless the peak is already the trivial lower bound... even then removing one unit
        // must fail somewhere).
        prop_assert!(mm.traversal.check_in_core(&tree, mm.peak).is_ok());
        prop_assert!(mm.traversal.check_in_core(&tree, mm.peak - 1).is_err());
    }

    #[test]
    fn reversal_preserves_the_peak(tree in arbitrary_tree(60, 500, 20)) {
        // In-tree <-> out-tree equivalence (Section III-C): reversing a valid
        // top-down traversal gives a bottom-up traversal with the same peak.
        let mm = min_mem(&tree);
        let reversed = mm.traversal.reversed();
        prop_assert_eq!(bottom_up_peak(&tree, &reversed).unwrap(), mm.peak);
    }

    #[test]
    fn replacement_model_is_consistent(tree in arbitrary_tree(40, 200, 0)) {
        // Applying the replacement transformation can only lower MemReq
        // (max(f, out) <= f + out), hence also the optimum.
        let converted = from_replacement_model(&tree);
        let original = min_mem(&tree).peak;
        let replaced = min_mem(&converted).peak;
        prop_assert!(replaced <= original);
        prop_assert!(replaced >= converted.max_mem_req());
    }

    #[test]
    fn postorder_subtree_peaks_are_monotone(tree in arbitrary_tree(60, 500, 20)) {
        // The postorder peak of a subtree is at least the peak of each child
        // subtree (processing the child is part of processing the parent).
        let po = best_postorder(&tree);
        for i in tree.nodes() {
            for &c in tree.children(i) {
                prop_assert!(po.subtree_peaks[i] >= po.subtree_peaks[c]);
            }
        }
    }
}
