//! Property-based tests for the MinMemory algorithms.
//!
//! The environment is offline, so instead of `proptest` these tests draw a
//! deterministic battery of random instances from the `prng` crate: every
//! case is reproducible from its seed, printed in assertion messages.
//!
//! The key invariants, checked on randomly generated trees:
//!
//! * the two polynomial exact algorithms (`MinMem` and Liu's hill–valley
//!   algorithm) always agree, and on small trees they agree with the
//!   exponential brute-force oracle;
//! * the exact value is never larger than the best postorder, which in turn
//!   is never larger than the natural postorder;
//! * every algorithm returns a traversal whose directly-evaluated peak equals
//!   the value it reports;
//! * the exact value is at least `max_i MemReq(i)` and at most the sum of all
//!   file sizes plus the largest execution file.

use prng::{Rng, StdRng};

use treemem::brute::brute_force_peak;
use treemem::liu::liu_exact;
use treemem::minmem::min_mem;
use treemem::postorder::{best_postorder, natural_postorder};
use treemem::solver::SolverRegistry;
use treemem::tree::{Size, Tree};
use treemem::variants::{bottom_up_peak, from_replacement_model};

/// A random tree with random parent links and weights, reproducible from the
/// seed (mirrors the proptest strategy this file used to define).
fn arbitrary_tree(seed: u64, max_nodes: usize, max_file: Size, max_exec: Size) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..=max_nodes);
    let mut parents: Vec<Option<usize>> = vec![None; n];
    for (i, parent) in parents.iter_mut().enumerate().skip(1) {
        *parent = Some(rng.gen_range(0..i));
    }
    let files: Vec<Size> = (0..n).map(|_| rng.gen_range(0..=max_file)).collect();
    let execs: Vec<Size> = (0..n).map(|_| rng.gen_range(0..=max_exec)).collect();
    Tree::from_parents(&parents, &files, &execs).expect("construction is valid")
}

#[test]
fn exact_algorithms_agree_with_brute_force() {
    for seed in 0..96 {
        let tree = arbitrary_tree(seed, 12, 30, 6);
        let brute = brute_force_peak(&tree);
        let mm = min_mem(&tree);
        let liu = liu_exact(&tree);
        assert_eq!(
            mm.peak, brute,
            "seed {seed}: MinMem disagrees with brute force"
        );
        assert_eq!(
            liu.peak, brute,
            "seed {seed}: Liu disagrees with brute force"
        );
    }
}

#[test]
fn exact_algorithms_agree_on_larger_trees() {
    for seed in 100..196 {
        let tree = arbitrary_tree(seed, 120, 1_000, 50);
        let mm = min_mem(&tree);
        let liu = liu_exact(&tree);
        assert_eq!(mm.peak, liu.peak, "seed {seed}: MinMem and Liu must agree");
    }
}

#[test]
fn ordering_of_the_algorithms() {
    for seed in 200..296 {
        let tree = arbitrary_tree(seed, 60, 500, 20);
        let exact = min_mem(&tree).peak;
        let best_po = best_postorder(&tree);
        let natural_po = natural_postorder(&tree);
        assert!(exact <= best_po.peak, "seed {seed}");
        assert!(best_po.peak <= natural_po.peak, "seed {seed}");
        assert!(exact >= tree.max_mem_req(), "seed {seed}");
        assert!(exact <= tree.memory_upper_bound(), "seed {seed}");
    }
}

#[test]
fn reported_peaks_match_the_traversals() {
    for seed in 300..396 {
        let tree = arbitrary_tree(seed, 60, 500, 20);
        // The solver registry covers all four algorithms generically.
        for solver in SolverRegistry::with_builtin()
            .iter()
            .filter(|s| s.supports(&tree))
        {
            let result = solver.solve(&tree);
            assert_eq!(
                result.peak,
                result.traversal.peak_memory(&tree).unwrap(),
                "seed {seed}, solver {}",
                solver.name()
            );
        }
        // Traversals are feasible with exactly their peak and infeasible with
        // one unit less.
        let mm = min_mem(&tree);
        assert!(
            mm.traversal.check_in_core(&tree, mm.peak).is_ok(),
            "seed {seed}"
        );
        assert!(
            mm.traversal.check_in_core(&tree, mm.peak - 1).is_err(),
            "seed {seed}"
        );
    }
}

#[test]
fn reversal_preserves_the_peak() {
    for seed in 400..496 {
        let tree = arbitrary_tree(seed, 60, 500, 20);
        // In-tree <-> out-tree equivalence (Section III-C): reversing a valid
        // top-down traversal gives a bottom-up traversal with the same peak.
        let mm = min_mem(&tree);
        let reversed = mm.traversal.reversed();
        assert_eq!(
            bottom_up_peak(&tree, &reversed).unwrap(),
            mm.peak,
            "seed {seed}"
        );
    }
}

#[test]
fn replacement_model_is_consistent() {
    for seed in 500..596 {
        let tree = arbitrary_tree(seed, 40, 200, 0);
        // Applying the replacement transformation can only lower MemReq
        // (max(f, out) <= f + out), hence also the optimum.
        let converted = from_replacement_model(&tree);
        let original = min_mem(&tree).peak;
        let replaced = min_mem(&converted).peak;
        assert!(replaced <= original, "seed {seed}");
        assert!(replaced >= converted.max_mem_req(), "seed {seed}");
    }
}

#[test]
fn postorder_subtree_peaks_are_monotone() {
    for seed in 600..696 {
        let tree = arbitrary_tree(seed, 60, 500, 20);
        // The postorder peak of a subtree is at least the peak of each child
        // subtree (processing the child is part of processing the parent).
        let po = best_postorder(&tree);
        for i in tree.nodes() {
            for &c in tree.children(i) {
                assert!(po.subtree_peaks[i] >= po.subtree_peaks[c], "seed {seed}");
            }
        }
    }
}
