//! Brute-force optimal traversal for small trees.
//!
//! The MinMemory problem can be solved exactly by dynamic programming over
//! the *states* of a traversal: a state is the set of already-executed nodes
//! (a "downward-closed" set containing the root), and the resident memory of
//! a state is fully determined by it.  The number of states is exponential in
//! general, so this module is only meant as an **oracle for tests** (it
//! refuses trees with more than 63 nodes); the polynomial exact algorithms
//! are in [`crate::minmem`] and [`crate::liu`].

use std::collections::HashMap;

use crate::traversal::Traversal;
use crate::tree::{NodeId, Size, Tree};
use crate::TraversalResult;

/// Maximum number of nodes accepted by the brute-force oracle.
pub const MAX_BRUTE_FORCE_NODES: usize = 63;

struct Solver<'a> {
    tree: &'a Tree,
    children_sum: Vec<Size>,
    // executed-set bitmask -> minimal peak needed to finish the traversal
    // from that state (not counting memory used before reaching the state).
    memo: HashMap<u64, Size>,
}

impl<'a> Solver<'a> {
    fn new(tree: &'a Tree) -> Self {
        let children_sum = tree.nodes().map(|i| tree.children_file_sum(i)).collect();
        Solver {
            tree,
            children_sum,
            memo: HashMap::new(),
        }
    }

    fn resident(&self, executed: u64) -> Size {
        let mut total = 0;
        for i in self.tree.nodes() {
            if executed & (1 << i) != 0 {
                continue;
            }
            let ready = match self.tree.parent(i) {
                None => true,
                Some(par) => executed & (1 << par) != 0,
            };
            if ready {
                total += self.tree.f(i);
            }
        }
        total
    }

    fn ready_nodes(&self, executed: u64) -> Vec<NodeId> {
        self.tree
            .nodes()
            .filter(|&i| {
                executed & (1 << i) == 0
                    && match self.tree.parent(i) {
                        None => true,
                        Some(par) => executed & (1 << par) != 0,
                    }
            })
            .collect()
    }

    fn solve(&mut self, executed: u64, resident: Size) -> Size {
        debug_assert_eq!(
            resident,
            self.resident(executed),
            "resident memory tracked incrementally"
        );
        if executed.count_ones() as usize == self.tree.len() {
            return 0;
        }
        if let Some(&cached) = self.memo.get(&executed) {
            return cached;
        }
        let mut best = Size::MAX;
        for i in self.ready_nodes(executed) {
            let during = resident + self.tree.n(i) + self.children_sum[i];
            let next_resident = resident - self.tree.f(i) + self.children_sum[i];
            let rest = self.solve(executed | (1 << i), next_resident);
            best = best.min(during.max(rest));
        }
        self.memo.insert(executed, best);
        best
    }

    fn reconstruct(&mut self, target: Size) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.tree.len());
        let mut executed = 0u64;
        let mut resident = self.tree.f(self.tree.root());
        // The root has no executed parent but is always ready; `resident`
        // starts at its input-file size, matching Algorithm 1.
        while (executed.count_ones() as usize) < self.tree.len() {
            let ready = self.ready_nodes(executed);
            let mut chosen = None;
            for &i in &ready {
                let during = resident + self.tree.n(i) + self.children_sum[i];
                if during > target {
                    continue;
                }
                let next_resident = resident - self.tree.f(i) + self.children_sum[i];
                let rest = self.solve(executed | (1 << i), next_resident);
                if during.max(rest) <= target {
                    chosen = Some((i, next_resident));
                    break;
                }
            }
            let (i, next_resident) =
                chosen.expect("reconstruction must succeed with the optimal target");
            order.push(i);
            executed |= 1 << i;
            resident = next_resident;
        }
        order
    }
}

/// Compute the exact MinMemory value and an optimal traversal by exhaustive
/// dynamic programming over traversal states.
///
/// # Panics
/// Panics if the tree has more than [`MAX_BRUTE_FORCE_NODES`] nodes.
pub fn brute_force_optimal(tree: &Tree) -> TraversalResult {
    assert!(
        tree.len() <= MAX_BRUTE_FORCE_NODES,
        "brute force oracle only supports up to {MAX_BRUTE_FORCE_NODES} nodes, got {}",
        tree.len()
    );
    let mut solver = Solver::new(tree);
    let initial_resident = tree.f(tree.root());
    let peak = solver.solve(0, initial_resident);
    let order = solver.reconstruct(peak);
    let traversal = Traversal::new(order);
    debug_assert_eq!(traversal.peak_memory(tree).unwrap(), peak);
    TraversalResult { traversal, peak }
}

/// Compute only the optimal peak (slightly cheaper than
/// [`brute_force_optimal`] because the traversal is not reconstructed).
pub fn brute_force_peak(tree: &Tree) -> Size {
    assert!(tree.len() <= MAX_BRUTE_FORCE_NODES);
    let mut solver = Solver::new(tree);
    let initial_resident = tree.f(tree.root());
    solver.solve(0, initial_resident)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::harpoon;
    use crate::minmem::min_mem;
    use crate::postorder::best_postorder;
    use crate::tree::TreeBuilder;

    #[test]
    fn brute_force_matches_hand_computation() {
        // Same two-branch tree as in traversal.rs: the best order processes
        // the (c, d) branch first and peaks at 9 (during c: files of a and c
        // resident plus the output for d).
        let mut b = TreeBuilder::new();
        let r = b.add_root(1, 0);
        let a = b.add_child(r, 2, 0);
        b.add_child(a, 6, 0);
        let c = b.add_child(r, 3, 0);
        b.add_child(c, 4, 0);
        let tree = b.build().unwrap();
        let result = brute_force_optimal(&tree);
        assert_eq!(result.peak, 9);
        assert_eq!(result.peak, result.traversal.peak_memory(&tree).unwrap());
    }

    #[test]
    fn brute_force_agrees_with_min_mem_on_the_harpoon() {
        let tree = harpoon(3, 30, 1);
        assert_eq!(brute_force_peak(&tree), min_mem(&tree).peak);
    }

    #[test]
    fn brute_force_is_a_lower_bound_for_postorder() {
        let tree = harpoon(4, 40, 1);
        let brute = brute_force_peak(&tree);
        let po = best_postorder(&tree);
        assert!(brute <= po.peak);
        assert_eq!(brute, 44);
        assert_eq!(po.peak, 40 + 1 + 3 * 10);
    }

    #[test]
    #[should_panic(expected = "brute force oracle")]
    fn brute_force_rejects_large_trees() {
        let tree = harpoon(30, 300, 1); // 91 nodes
        brute_force_optimal(&tree);
    }
}
