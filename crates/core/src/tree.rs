//! The tree-workflow model of the paper (Section III-A).
//!
//! A [`Tree`] is a rooted tree in the **out-tree** orientation: the root is
//! executed first and every other node can only be executed after its parent.
//! Node `i` carries two weights:
//!
//! * `f(i)` — the size of its *input file*, produced by its parent (or coming
//!   from the outside world for the root);
//! * `n(i)` — the size of its *execution file*, resident only while `i` runs.
//!
//! Executing `i` requires `MemReq(i) = f(i) + n(i) + Σ_{j ∈ children(i)} f(j)`
//! units of main memory in addition to the other resident frontier files.
//!
//! Execution-file sizes are signed ([`Size`] is `i64`) because the model
//! transformations of Section III-C (see [`crate::variants`]) introduce
//! negative execution weights; input files are always non-negative.

use crate::error::TreeError;

/// Index of a node inside a [`Tree`]. Nodes are numbered `0..tree.len()`.
pub type NodeId = usize;

/// File and memory sizes. Signed so that the model variants of the paper
/// (which use negative execution-file sizes) can be represented exactly.
pub type Size = i64;

/// Sentinel for "no peak / unbounded" used by the exact algorithms.
pub const INFINITE: Size = Size::MAX;

/// A rooted tree workflow with per-node input-file and execution-file sizes.
///
/// The structure is immutable once built (via [`TreeBuilder`] or one of the
/// `from_*` constructors); all algorithms in this crate borrow it.
///
/// # Storage layout
///
/// Children are stored in a flat CSR (compressed sparse row) layout: the
/// children of node `i` are `child_list[child_starts[i]..child_starts[i+1]]`,
/// in increasing node-id order (which is also their insertion order, since
/// node ids are assigned in construction order).  This keeps the whole
/// adjacency in two contiguous arrays — one cache line per small family —
/// instead of one heap allocation per node, which matters for the exact
/// solvers and the out-of-core simulator on trees with 10⁵–10⁶ nodes.
///
/// The per-node derived quantities that every hot loop needs —
/// `Σ_{j ∈ children(i)} f(j)`, `MemReq(i)` and `max_i MemReq(i)` — are
/// precomputed once at construction, so [`Tree::children_file_sum`],
/// [`Tree::mem_req`] and [`Tree::max_mem_req`] are O(1) lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    parent: Vec<Option<NodeId>>,
    /// CSR offsets: children of `i` live at `child_list[child_starts[i]..child_starts[i + 1]]`.
    child_starts: Vec<usize>,
    /// CSR payload: all child ids, grouped by parent.
    child_list: Vec<NodeId>,
    f: Vec<Size>,
    n: Vec<Size>,
    /// Precomputed `Σ_{j ∈ children(i)} f(j)` per node.
    children_file_sum: Vec<Size>,
    /// Precomputed `MemReq(i) = f(i) + n(i) + children_file_sum(i)` per node.
    mem_req: Vec<Size>,
    /// Precomputed `max_i MemReq(i)`.
    max_mem_req: Size,
    root: NodeId,
}

impl Tree {
    /// Build a tree from parent pointers and node weights.
    ///
    /// `parents[i]` is the parent of node `i` (`None` for the root, which must
    /// be unique), `files[i]` is `f(i)` and `weights[i]` is `n(i)`.
    pub fn from_parents(
        parents: &[Option<NodeId>],
        files: &[Size],
        weights: &[Size],
    ) -> Result<Self, TreeError> {
        if parents.is_empty() {
            return Err(TreeError::Empty);
        }
        if parents.len() != files.len() || parents.len() != weights.len() {
            return Err(TreeError::LengthMismatch {
                parents: parents.len(),
                files: files.len(),
                weights: weights.len(),
            });
        }
        let p = parents.len();
        let mut root = None;
        // CSR construction by counting sort: one pass counts the children of
        // every node, a prefix sum turns the counts into offsets, and a final
        // pass (in increasing child id, preserving insertion order) scatters
        // the child ids into the flat list.
        let mut child_starts = vec![0usize; p + 1];
        for (i, &par) in parents.iter().enumerate() {
            match par {
                None => match root {
                    None => root = Some(i),
                    Some(r) => return Err(TreeError::MultipleRoots(r, i)),
                },
                Some(par) => {
                    if par >= p {
                        return Err(TreeError::InvalidParent {
                            node: i,
                            parent: par,
                        });
                    }
                    child_starts[par + 1] += 1;
                }
            }
        }
        let root = root.ok_or(TreeError::NoRoot)?;
        for (i, &fi) in files.iter().enumerate() {
            if fi < 0 {
                return Err(TreeError::NegativeFileSize { node: i, size: fi });
            }
        }
        for i in 0..p {
            child_starts[i + 1] += child_starts[i];
        }
        let mut cursor = child_starts.clone();
        let mut child_list = vec![0 as NodeId; p - 1];
        for (i, &par) in parents.iter().enumerate() {
            if let Some(par) = par {
                child_list[cursor[par]] = i;
                cursor[par] += 1;
            }
        }
        let mut tree = Tree {
            parent: parents.to_vec(),
            child_starts,
            child_list,
            f: files.to_vec(),
            n: weights.to_vec(),
            children_file_sum: Vec::new(),
            mem_req: Vec::new(),
            max_mem_req: 0,
            root,
        };
        tree.check_acyclic()?;
        tree.recompute_derived();
        Ok(tree)
    }

    /// Recompute the precomputed per-node quantities (`children_file_sum`,
    /// `mem_req`, `max_mem_req`) from the topology and the current weights.
    fn recompute_derived(&mut self) {
        let p = self.parent.len();
        let sums: Vec<Size> = (0..p)
            .map(|i| {
                self.child_list[self.child_starts[i]..self.child_starts[i + 1]]
                    .iter()
                    .map(|&j| self.f[j])
                    .sum()
            })
            .collect();
        let reqs: Vec<Size> = (0..p).map(|i| self.f[i] + self.n[i] + sums[i]).collect();
        self.max_mem_req = reqs.iter().copied().max().unwrap_or(0);
        self.children_file_sum = sums;
        self.mem_req = reqs;
    }

    /// Verify that following parent pointers from every node reaches the root
    /// (i.e. the parent structure is a tree, not a forest with cycles).
    fn check_acyclic(&self) -> Result<(), TreeError> {
        let p = self.len();
        // 0 = unvisited, 1 = on current path, 2 = known good.
        let mut state = vec![0u8; p];
        state[self.root] = 2;
        for start in 0..p {
            if state[start] != 0 {
                continue;
            }
            let mut path = Vec::new();
            let mut cur = start;
            loop {
                if state[cur] == 2 {
                    break;
                }
                if state[cur] == 1 {
                    return Err(TreeError::Cycle(cur));
                }
                state[cur] = 1;
                path.push(cur);
                match self.parent[cur] {
                    Some(par) => cur = par,
                    None => break,
                }
            }
            for v in path {
                state[v] = 2;
            }
        }
        Ok(())
    }

    /// Approximate heap footprint of the tree in bytes: the summed capacity
    /// of its CSR arrays and per-node aggregates.  Used by the serving
    /// caches to charge plans byte-accurate footprints.
    pub fn heap_bytes(&self) -> u64 {
        use std::mem::size_of;
        let options = self.parent.len() * size_of::<Option<NodeId>>();
        let indices = (self.child_starts.len() + self.child_list.len()) * size_of::<usize>();
        let sizes =
            (self.f.len() + self.n.len() + self.children_file_sum.len() + self.mem_req.len())
                * size_of::<Size>();
        (options + indices + sizes) as u64
    }

    /// Number of nodes in the tree (written `p` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the tree has no nodes. Always `false` for a constructed tree.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root node (the unique node without a parent).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `i`, or `None` for the root.
    #[inline]
    pub fn parent(&self, i: NodeId) -> Option<NodeId> {
        self.parent[i]
    }

    /// Children of `i`, in insertion order (a slice of the flat CSR list).
    #[inline]
    pub fn children(&self, i: NodeId) -> &[NodeId] {
        &self.child_list[self.child_starts[i]..self.child_starts[i + 1]]
    }

    /// Input-file size `f(i)`.
    #[inline]
    pub fn f(&self, i: NodeId) -> Size {
        self.f[i]
    }

    /// Execution-file size `n(i)`.
    #[inline]
    pub fn n(&self, i: NodeId) -> Size {
        self.n[i]
    }

    /// Whether `i` is a leaf.
    #[inline]
    pub fn is_leaf(&self, i: NodeId) -> bool {
        self.child_starts[i] == self.child_starts[i + 1]
    }

    /// Number of children of `i`.
    #[inline]
    pub fn child_count(&self, i: NodeId) -> usize {
        self.child_starts[i + 1] - self.child_starts[i]
    }

    /// Total size of the output files of `i` (`Σ_{j ∈ children(i)} f(j)`).
    /// Precomputed at construction; O(1).
    #[inline]
    pub fn children_file_sum(&self, i: NodeId) -> Size {
        self.children_file_sum[i]
    }

    /// Memory requirement of node `i`:
    /// `MemReq(i) = f(i) + n(i) + Σ_{j ∈ children(i)} f(j)` (Equation (1)).
    /// Precomputed at construction; O(1).
    #[inline]
    pub fn mem_req(&self, i: NodeId) -> Size {
        self.mem_req[i]
    }

    /// Largest memory requirement over all nodes — a lower bound on the
    /// memory needed by *any* traversal.  Precomputed at construction; O(1).
    #[inline]
    pub fn max_mem_req(&self) -> Size {
        self.max_mem_req
    }

    /// Sum of all input-file sizes — a trivial upper bound on the memory
    /// needed by any traversal (plus the largest execution file).
    pub fn total_file_size(&self) -> Size {
        self.f.iter().sum()
    }

    /// An upper bound on the memory needed by any reasonable traversal:
    /// the sum of every input file plus the largest execution file.  Used by
    /// tests and as a sanity cap in the exact algorithms.
    pub fn memory_upper_bound(&self) -> Size {
        self.total_file_size() + self.n.iter().copied().max().unwrap_or(0).max(0)
    }

    /// Nodes in a depth-first top-down order (parent before children).
    /// Children are visited in their stored order.
    pub fn dfs_topdown(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.len());
        let mut stack = vec![self.root];
        while let Some(i) = stack.pop() {
            order.push(i);
            // Push children in reverse so the first child is popped first.
            for &c in self.children(i).iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// Nodes in a bottom-up order (children before parent), i.e. a postorder
    /// of the tree in its stored child order.
    pub fn dfs_bottomup(&self) -> Vec<NodeId> {
        let mut order = self.dfs_topdown();
        order.reverse();
        order
    }

    /// Number of nodes in the subtree rooted at each node.
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![1usize; self.len()];
        for &i in self.dfs_bottomup().iter() {
            if let Some(par) = self.parent[i] {
                sizes[par] += sizes[i];
            }
        }
        sizes
    }

    /// Depth of each node (root has depth 0).
    pub fn depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.len()];
        for &i in self.dfs_topdown().iter() {
            if let Some(par) = self.parent[i] {
                depth[i] = depth[par] + 1;
            }
        }
        depth
    }

    /// Height of the tree: the maximum depth over all nodes.
    pub fn height(&self) -> usize {
        self.depths().into_iter().max().unwrap_or(0)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        (0..self.len()).filter(|&i| self.is_leaf(i)).count()
    }

    /// Maximum number of children over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.len())
            .map(|i| self.child_count(i))
            .max()
            .unwrap_or(0)
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.len()
    }

    /// Return a copy of the tree with new weights but the same topology.
    ///
    /// # Panics
    /// Panics if the weight vectors do not have `self.len()` entries or if an
    /// input-file size is negative.
    pub fn with_weights(&self, files: Vec<Size>, weights: Vec<Size>) -> Tree {
        assert_eq!(files.len(), self.len(), "files length mismatch");
        assert_eq!(weights.len(), self.len(), "weights length mismatch");
        assert!(
            files.iter().all(|&f| f >= 0),
            "input files must be non-negative"
        );
        let mut tree = Tree {
            parent: self.parent.clone(),
            child_starts: self.child_starts.clone(),
            child_list: self.child_list.clone(),
            f: files,
            n: weights,
            children_file_sum: Vec::new(),
            mem_req: Vec::new(),
            max_mem_req: 0,
            root: self.root,
        };
        tree.recompute_derived();
        tree
    }

    /// The raw CSR adjacency: `(child_starts, child_list)` with the children
    /// of node `i` at `child_list[child_starts[i]..child_starts[i + 1]]`.
    ///
    /// Exposed for algorithms that want to walk the whole adjacency without
    /// per-node bounds arithmetic (custom solvers and eviction policies).
    pub fn csr_children(&self) -> (&[usize], &[NodeId]) {
        (&self.child_starts, &self.child_list)
    }

    /// Parent-pointer representation (useful for serialization and tests).
    pub fn parents(&self) -> &[Option<NodeId>] {
        &self.parent
    }

    /// All input-file sizes.
    pub fn files(&self) -> &[Size] {
        &self.f
    }

    /// All execution-file sizes.
    pub fn weights(&self) -> &[Size] {
        &self.n
    }

    /// Render the tree in Graphviz DOT format (node labels show `f`/`n`).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph tree {\n  node [shape=box];\n");
        for i in 0..self.len() {
            let _ = writeln!(
                out,
                "  n{i} [label=\"{i}\\nf={} n={}\"];",
                self.f[i], self.n[i]
            );
        }
        for i in 0..self.len() {
            if let Some(par) = self.parent[i] {
                let _ = writeln!(out, "  n{par} -> n{i};");
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Incremental construction of a [`Tree`].
///
/// ```
/// use treemem::TreeBuilder;
/// let mut b = TreeBuilder::new();
/// let root = b.add_root(0, 0);
/// let child = b.add_child(root, 5, 1);
/// b.add_child(child, 7, 2);
/// let tree = b.build().unwrap();
/// assert_eq!(tree.len(), 3);
/// assert_eq!(tree.mem_req(root), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TreeBuilder {
    parents: Vec<Option<NodeId>>,
    files: Vec<Size>,
    weights: Vec<Size>,
}

impl TreeBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            parents: Vec::with_capacity(capacity),
            files: Vec::with_capacity(capacity),
            weights: Vec::with_capacity(capacity),
        }
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Whether no node has been added yet.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Add the root node with input-file size `f` and execution size `n`.
    /// Returns its id.
    pub fn add_root(&mut self, f: Size, n: Size) -> NodeId {
        self.push(None, f, n)
    }

    /// Add a child of `parent` with input-file size `f` and execution size
    /// `n`. Returns its id.
    pub fn add_child(&mut self, parent: NodeId, f: Size, n: Size) -> NodeId {
        self.push(Some(parent), f, n)
    }

    fn push(&mut self, parent: Option<NodeId>, f: Size, n: Size) -> NodeId {
        let id = self.parents.len();
        self.parents.push(parent);
        self.files.push(f);
        self.weights.push(n);
        id
    }

    /// Finish construction and validate the tree.
    pub fn build(self) -> Result<Tree, TreeError> {
        Tree::from_parents(&self.parents, &self.files, &self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(sizes: &[Size]) -> Tree {
        let mut b = TreeBuilder::new();
        let mut prev = b.add_root(sizes[0], 0);
        for &s in &sizes[1..] {
            prev = b.add_child(prev, s, 0);
        }
        b.build().unwrap()
    }

    #[test]
    fn builder_and_accessors() {
        let mut b = TreeBuilder::new();
        let r = b.add_root(1, 2);
        let a = b.add_child(r, 3, 4);
        let c = b.add_child(r, 5, 6);
        let d = b.add_child(a, 7, 8);
        let tree = b.build().unwrap();
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.root(), r);
        assert_eq!(tree.parent(a), Some(r));
        assert_eq!(tree.parent(r), None);
        assert_eq!(tree.children(r), &[a, c]);
        assert_eq!(tree.f(d), 7);
        assert_eq!(tree.n(d), 8);
        assert!(tree.is_leaf(c));
        assert!(!tree.is_leaf(r));
        assert_eq!(tree.children_file_sum(r), 8);
        assert_eq!(tree.mem_req(r), 1 + 2 + 8);
        assert_eq!(tree.mem_req(d), 15);
        assert_eq!(tree.max_mem_req(), 15);
        assert_eq!(tree.leaf_count(), 2);
        assert_eq!(tree.max_degree(), 2);
        assert_eq!(tree.height(), 2);
    }

    #[test]
    fn from_parents_roundtrip() {
        let parents = [None, Some(0), Some(0), Some(1)];
        let files = [0, 2, 3, 4];
        let weights = [1, 1, 1, 1];
        let tree = Tree::from_parents(&parents, &files, &weights).unwrap();
        assert_eq!(tree.parents(), &parents);
        assert_eq!(tree.files(), &files);
        assert_eq!(tree.weights(), &weights);
        assert_eq!(tree.root(), 0);
        assert_eq!(tree.subtree_sizes(), vec![4, 2, 1, 1]);
        assert_eq!(tree.depths(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn rejects_bad_structure() {
        assert_eq!(Tree::from_parents(&[], &[], &[]), Err(TreeError::Empty));
        assert_eq!(
            Tree::from_parents(&[None, None], &[0, 0], &[0, 0]),
            Err(TreeError::MultipleRoots(0, 1))
        );
        assert_eq!(
            Tree::from_parents(&[Some(1), Some(0)], &[0, 0], &[0, 0]),
            Err(TreeError::NoRoot)
        );
        assert_eq!(
            Tree::from_parents(&[None, Some(5)], &[0, 0], &[0, 0]),
            Err(TreeError::InvalidParent { node: 1, parent: 5 })
        );
        assert_eq!(
            Tree::from_parents(&[None, Some(0)], &[0, -3], &[0, 0]),
            Err(TreeError::NegativeFileSize { node: 1, size: -3 })
        );
        assert_eq!(
            Tree::from_parents(&[None], &[0, 1], &[0]),
            Err(TreeError::LengthMismatch {
                parents: 1,
                files: 2,
                weights: 1
            })
        );
    }

    #[test]
    fn negative_execution_size_is_allowed() {
        let tree = Tree::from_parents(&[None, Some(0)], &[4, 2], &[-2, 0]).unwrap();
        assert_eq!(tree.mem_req(0), 4 - 2 + 2);
    }

    #[test]
    fn dfs_orders_respect_parent_child_relation() {
        let mut b = TreeBuilder::new();
        let r = b.add_root(0, 0);
        let a = b.add_child(r, 1, 0);
        let c = b.add_child(r, 1, 0);
        let d = b.add_child(a, 1, 0);
        let e = b.add_child(c, 1, 0);
        let tree = b.build().unwrap();
        let top = tree.dfs_topdown();
        assert_eq!(top.len(), 5);
        let pos: Vec<usize> = {
            let mut pos = vec![0; 5];
            for (idx, &node) in top.iter().enumerate() {
                pos[node] = idx;
            }
            pos
        };
        for i in [a, c, d, e] {
            assert!(pos[tree.parent(i).unwrap()] < pos[i]);
        }
        let bottom = tree.dfs_bottomup();
        let mut rev = top.clone();
        rev.reverse();
        assert_eq!(bottom, rev);
    }

    #[test]
    fn chain_statistics() {
        let tree = chain(&[1, 2, 3, 4, 5]);
        assert_eq!(tree.height(), 4);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.max_degree(), 1);
        assert_eq!(tree.total_file_size(), 15);
        assert_eq!(tree.max_mem_req(), 4 + 5);
        assert_eq!(tree.memory_upper_bound(), 15);
    }

    #[test]
    fn csr_layout_matches_the_parent_pointers() {
        let parents = [None, Some(0), Some(0), Some(1), Some(0), Some(1)];
        let files = [0, 1, 2, 3, 4, 5];
        let weights = [0; 6];
        let tree = Tree::from_parents(&parents, &files, &weights).unwrap();
        assert_eq!(tree.children(0), &[1, 2, 4]);
        assert_eq!(tree.children(1), &[3, 5]);
        assert_eq!(tree.children(2), &[] as &[NodeId]);
        let (starts, list) = tree.csr_children();
        assert_eq!(starts.len(), tree.len() + 1);
        assert_eq!(list.len(), tree.len() - 1);
        assert_eq!(starts[tree.len()], list.len());
        // Precomputed quantities agree with a direct evaluation.
        for i in tree.nodes() {
            let direct: Size = tree.children(i).iter().map(|&j| tree.f(j)).sum();
            assert_eq!(tree.children_file_sum(i), direct);
            assert_eq!(tree.mem_req(i), tree.f(i) + tree.n(i) + direct);
            assert_eq!(tree.child_count(i), tree.children(i).len());
        }
        assert_eq!(
            tree.max_mem_req(),
            tree.nodes().map(|i| tree.mem_req(i)).max().unwrap()
        );
    }

    #[test]
    fn with_weights_recomputes_derived_quantities() {
        let tree = chain(&[1, 2, 3]);
        let tree2 = tree.with_weights(vec![5, 6, 7], vec![1, 1, 1]);
        assert_eq!(tree2.children_file_sum(0), 6);
        assert_eq!(tree2.mem_req(1), 6 + 1 + 7);
        assert_eq!(tree2.max_mem_req(), 14);
    }

    #[test]
    fn with_weights_preserves_topology() {
        let tree = chain(&[1, 2, 3]);
        let tree2 = tree.with_weights(vec![5, 5, 5], vec![1, 1, 1]);
        assert_eq!(tree2.parents(), tree.parents());
        assert_eq!(tree2.f(1), 5);
        assert_eq!(tree2.n(2), 1);
    }

    #[test]
    fn dot_output_mentions_every_node() {
        let tree = chain(&[1, 2, 3]);
        let dot = tree.to_dot();
        for i in 0..3 {
            assert!(dot.contains(&format!("n{i} ")));
        }
        assert!(dot.contains("->"));
    }
}
