//! Liu's exact algorithm for MinMemory (Liu, 1987: *An application of
//! generalized tree pebbling to sparse matrix factorization*), used by the
//! paper as the reference exact algorithm.
//!
//! The algorithm works bottom-up on the in-tree orientation, which is the
//! natural orientation of assembly trees.  The optimal traversal of every
//! subtree is summarised by its *hill–valley cost sequence*: a list of
//! segments `(h₁, v₁), (h₂, v₂), …` where `hₜ` is the memory peak while the
//! segment runs and `vₜ` the resident memory when it ends (a point where the
//! traversal may be interrupted to switch to a sibling subtree).  The
//! sequences are kept in *normal form*:
//!
//! * valleys are non-decreasing (`v₁ ≤ v₂ ≤ …`), and
//! * the differences `hₜ − vₜ` are non-increasing.
//!
//! Liu's combination theorem states that, given the normal-form sequences of
//! the children of a node, an optimal traversal of the node's subtree is
//! obtained by merging all child segments in non-increasing order of
//! `h − v` (which respects each child's internal order), appending the
//! node's own execution, and re-normalising.
//!
//! The top-down traversal returned by [`liu_exact`] is the reverse of the
//! bottom-up traversal, by the in-tree ↔ out-tree equivalence of
//! Section III-C of the paper; its peak memory is identical.
//!
//! The worst-case complexity is `O(p²)` (the paper notes that reaching this
//! bound requires a sophisticated multi-way merge; this implementation uses a
//! simple stable sort, which is `O(p² log p)` in the worst case but close to
//! `O(p log p)` on realistic assembly trees).

use crate::traversal::Traversal;
use crate::tree::{NodeId, Size, Tree};
use crate::TraversalResult;

/// One hill–valley segment of a (bottom-up) subtree traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Memory peak while the segment runs (absolute, within the subtree).
    pub hill: Size,
    /// Resident memory when the segment ends.
    pub valley: Size,
    /// Nodes executed by the segment, in bottom-up execution order.
    pub nodes: Vec<NodeId>,
}

impl Segment {
    fn key(&self) -> Size {
        self.hill - self.valley
    }
}

/// Result of [`liu_exact`].
#[derive(Debug, Clone)]
pub struct LiuResult {
    /// An optimal traversal (top-down order, root first).
    pub traversal: Traversal,
    /// The minimum memory for an in-core traversal of the tree.
    pub peak: Size,
    /// The normal-form hill–valley sequence of the whole tree (bottom-up
    /// orientation), useful for diagnostics and for the experiments.
    pub segments: Vec<Segment>,
}

impl From<LiuResult> for TraversalResult {
    fn from(value: LiuResult) -> Self {
        TraversalResult {
            traversal: value.traversal,
            peak: value.peak,
        }
    }
}

/// Append `segment` to `sequence`, merging segments as needed to restore the
/// normal form (valleys non-decreasing, `h − v` non-increasing).
fn push_normalized(sequence: &mut Vec<Segment>, segment: Segment) {
    sequence.push(segment);
    while sequence.len() >= 2 {
        let last = &sequence[sequence.len() - 1];
        let prev = &sequence[sequence.len() - 2];
        let valley_violated = last.valley < prev.valley;
        let slope_violated = last.key() > prev.key();
        if !valley_violated && !slope_violated {
            break;
        }
        let last = sequence.pop().expect("length checked");
        let prev = sequence.last_mut().expect("length checked");
        prev.hill = prev.hill.max(last.hill);
        prev.valley = last.valley;
        prev.nodes.extend(last.nodes);
    }
}

/// Compute the normal-form hill–valley sequence of the subtree rooted at
/// `node`, consuming the sequences of its children.
fn combine(tree: &Tree, node: NodeId, child_sequences: Vec<Vec<Segment>>) -> Vec<Segment> {
    // Merge all child segments by non-increasing (hill - valley).  A stable
    // sort preserves the relative order of the segments of a single child
    // because their keys are non-increasing by construction.
    let mut tagged: Vec<(usize, Segment)> = Vec::new();
    for (child_idx, sequence) in child_sequences.into_iter().enumerate() {
        for segment in sequence {
            tagged.push((child_idx, segment));
        }
    }
    tagged.sort_by_key(|(_, segment)| std::cmp::Reverse(segment.key()));

    let num_children = tree.children(node).len();
    let mut residual = vec![0 as Size; num_children];
    let mut total_residual: Size = 0;
    let mut combined: Vec<Segment> = Vec::with_capacity(tagged.len() + 1);
    for (child_idx, segment) in tagged {
        let others = total_residual - residual[child_idx];
        let absolute = Segment {
            hill: segment.hill + others,
            valley: segment.valley + others,
            nodes: segment.nodes,
        };
        total_residual = others + segment.valley;
        residual[child_idx] = segment.valley;
        push_normalized(&mut combined, absolute);
    }
    debug_assert_eq!(total_residual, tree.children_file_sum(node));

    // The node itself executes last (bottom-up orientation): all child files
    // are resident, it adds its execution file and produces its output file.
    let own = Segment {
        hill: tree.children_file_sum(node) + tree.n(node) + tree.f(node),
        valley: tree.f(node),
        nodes: vec![node],
    };
    push_normalized(&mut combined, own);
    combined
}

/// Compute the minimum in-core memory of `tree` and an optimal traversal
/// using Liu's exact algorithm.
///
/// ```
/// use treemem::{gadgets::harpoon, liu::liu_exact, minmem::min_mem};
/// let tree = harpoon(3, 300, 1);
/// assert_eq!(liu_exact(&tree).peak, min_mem(&tree).peak);
/// ```
pub fn liu_exact(tree: &Tree) -> LiuResult {
    let mut sequences: Vec<Option<Vec<Segment>>> = vec![None; tree.len()];
    for &i in tree.dfs_bottomup().iter() {
        let child_sequences: Vec<Vec<Segment>> = tree
            .children(i)
            .iter()
            .map(|&c| {
                sequences[c]
                    .take()
                    .expect("children processed before their parent")
            })
            .collect();
        sequences[i] = Some(combine(tree, i, child_sequences));
    }
    let root_sequence = sequences[tree.root()]
        .take()
        .expect("root sequence computed");
    let peak = root_sequence.iter().map(|s| s.hill).max().unwrap_or(0);
    let mut bottom_up: Vec<NodeId> = Vec::with_capacity(tree.len());
    for segment in &root_sequence {
        bottom_up.extend_from_slice(&segment.nodes);
    }
    debug_assert_eq!(bottom_up.len(), tree.len());
    bottom_up.reverse();
    let traversal = Traversal::new(bottom_up);
    debug_assert_eq!(
        traversal
            .peak_memory(tree)
            .expect("Liu produced an invalid traversal"),
        peak,
        "hill-valley peak must match the direct evaluation of the traversal"
    );
    LiuResult {
        traversal,
        peak,
        segments: root_sequence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_peak;
    use crate::gadgets::{harpoon, harpoon_tower};
    use crate::minmem::min_mem;
    use crate::postorder::best_postorder;
    use crate::tree::TreeBuilder;

    #[test]
    fn single_node_sequence() {
        let mut b = TreeBuilder::new();
        b.add_root(3, 4);
        let tree = b.build().unwrap();
        let result = liu_exact(&tree);
        assert_eq!(result.peak, 7);
        assert_eq!(result.segments.len(), 1);
        assert_eq!(result.segments[0].hill, 7);
        assert_eq!(result.segments[0].valley, 3);
    }

    #[test]
    fn chain_peak_is_max_mem_req() {
        let mut b = TreeBuilder::new();
        let mut prev = b.add_root(1, 0);
        for f in [5, 2, 9, 3] {
            prev = b.add_child(prev, f, 0);
        }
        let tree = b.build().unwrap();
        assert_eq!(liu_exact(&tree).peak, tree.max_mem_req());
    }

    #[test]
    fn normal_form_invariants_hold_at_the_root() {
        let tree = harpoon_tower(3, 300, 2, 2);
        let result = liu_exact(&tree);
        for pair in result.segments.windows(2) {
            assert!(
                pair[0].valley <= pair[1].valley,
                "valleys must be non-decreasing"
            );
            assert!(
                pair[0].hill - pair[0].valley >= pair[1].hill - pair[1].valley,
                "h - v must be non-increasing"
            );
        }
    }

    #[test]
    fn agrees_with_min_mem_and_brute_force() {
        let trees = [
            harpoon(2, 20, 1),
            harpoon(4, 40, 3),
            harpoon_tower(2, 16, 1, 2),
            {
                let mut b = TreeBuilder::new();
                let r = b.add_root(2, 1);
                let a = b.add_child(r, 3, 2);
                b.add_child(a, 7, 1);
                b.add_child(a, 5, 0);
                let c = b.add_child(r, 4, 0);
                let d = b.add_child(c, 6, 3);
                b.add_child(d, 2, 2);
                b.build().unwrap()
            },
        ];
        for (idx, tree) in trees.iter().enumerate() {
            let liu = liu_exact(tree);
            let mm = min_mem(tree);
            let brute = brute_force_peak(tree);
            assert_eq!(liu.peak, brute, "tree #{idx}: Liu vs brute force");
            assert_eq!(mm.peak, brute, "tree #{idx}: MinMem vs brute force");
        }
    }

    #[test]
    fn never_worse_than_the_best_postorder() {
        for branches in 2..6 {
            let tree = harpoon(branches, 120, 2);
            assert!(liu_exact(&tree).peak <= best_postorder(&tree).peak);
        }
    }

    #[test]
    fn segments_cover_every_node_exactly_once() {
        let tree = harpoon_tower(3, 30, 1, 2);
        let result = liu_exact(&tree);
        let mut seen = vec![false; tree.len()];
        for segment in &result.segments {
            for &node in &segment.nodes {
                assert!(!seen[node], "node {node} appears twice");
                seen[node] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }
}
