//! Liu's exact algorithm for MinMemory (Liu, 1987: *An application of
//! generalized tree pebbling to sparse matrix factorization*), used by the
//! paper as the reference exact algorithm.
//!
//! The algorithm works bottom-up on the in-tree orientation, which is the
//! natural orientation of assembly trees.  The optimal traversal of every
//! subtree is summarised by its *hill–valley cost sequence*: a list of
//! segments `(h₁, v₁), (h₂, v₂), …` where `hₜ` is the memory peak while the
//! segment runs and `vₜ` the resident memory when it ends (a point where the
//! traversal may be interrupted to switch to a sibling subtree).  The
//! sequences are kept in *normal form*:
//!
//! * valleys are non-decreasing (`v₁ ≤ v₂ ≤ …`), and
//! * the differences `hₜ − vₜ` are non-increasing.
//!
//! Liu's combination theorem states that, given the normal-form sequences of
//! the children of a node, an optimal traversal of the node's subtree is
//! obtained by merging all child segments in non-increasing order of
//! `h − v` (which respects each child's internal order), appending the
//! node's own execution, and re-normalising.
//!
//! The top-down traversal returned by [`liu_exact`] is the reverse of the
//! bottom-up traversal, by the in-tree ↔ out-tree equivalence of
//! Section III-C of the paper; its peak memory is identical.
//!
//! The combination step is a heap-based k-way merge over per-child segment
//! cursors (each child's sequence is already sorted by non-increasing
//! `h − v`), and segment node lists are linked chains inside a single arena
//! that supports O(1) concatenation — the full node order is materialised
//! exactly once, at the root.  The overall complexity is
//! `O(p log p)`-ish (`O(Σ segments · log degree)` for the merges plus `O(p)`
//! for the flatten), whereas the previous implementation re-sorted every
//! child segment with a stable sort and copied `Segment::nodes` vectors on
//! every merge, which degenerated to `O(p²)` on chain-like trees.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::traversal::Traversal;
use crate::tree::{NodeId, Size, Tree};
use crate::TraversalResult;

/// One hill–valley segment of a (bottom-up) subtree traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Memory peak while the segment runs (absolute, within the subtree).
    pub hill: Size,
    /// Resident memory when the segment ends.
    pub valley: Size,
    /// Nodes executed by the segment, in bottom-up execution order.
    pub nodes: Vec<NodeId>,
}

/// Sentinel for "end of chain" in [`NodeArena`].
const NIL: usize = usize::MAX;

/// Arena-backed singly linked chains of node ids.  Every node of the tree is
/// appended exactly once over the whole run, and two chains concatenate in
/// O(1), which is what lets segment merges avoid copying node vectors.
#[derive(Debug, Default)]
struct NodeArena {
    /// `(node, next-entry-index)`; `NIL` terminates a chain.
    entries: Vec<(NodeId, usize)>,
}

impl NodeArena {
    fn with_capacity(capacity: usize) -> Self {
        NodeArena {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// A one-node chain; returns its entry index (head == tail).
    fn singleton(&mut self, node: NodeId) -> usize {
        self.entries.push((node, NIL));
        self.entries.len() - 1
    }

    /// Append chain `(b_head, ..)` after chain `(.., a_tail)`.
    fn link(&mut self, a_tail: usize, b_head: usize) {
        self.entries[a_tail].1 = b_head;
    }

    /// Collect a chain into `out`, in order.
    fn collect_into(&self, head: usize, out: &mut Vec<NodeId>) {
        let mut cursor = head;
        while cursor != NIL {
            let (node, next) = self.entries[cursor];
            out.push(node);
            cursor = next;
        }
    }
}

/// Internal hill–valley segment: like [`Segment`] but the executed nodes are
/// an arena chain (`head`/`tail` entry indices) instead of an owned vector.
#[derive(Debug, Clone, Copy)]
struct Seg {
    hill: Size,
    valley: Size,
    head: usize,
    tail: usize,
}

impl Seg {
    fn key(&self) -> Size {
        self.hill - self.valley
    }
}

/// Result of [`liu_exact`].
#[derive(Debug, Clone)]
pub struct LiuResult {
    /// An optimal traversal (top-down order, root first).
    pub traversal: Traversal,
    /// The minimum memory for an in-core traversal of the tree.
    pub peak: Size,
    /// The normal-form hill–valley sequence of the whole tree (bottom-up
    /// orientation), useful for diagnostics and for the experiments.
    pub segments: Vec<Segment>,
}

impl From<LiuResult> for TraversalResult {
    fn from(value: LiuResult) -> Self {
        TraversalResult {
            traversal: value.traversal,
            peak: value.peak,
        }
    }
}

/// Append `segment` to `sequence`, merging segments as needed to restore the
/// normal form (valleys non-decreasing, `h − v` non-increasing).  Merging two
/// segments concatenates their node chains in O(1) through the arena.
fn push_normalized(sequence: &mut Vec<Seg>, segment: Seg, arena: &mut NodeArena) {
    sequence.push(segment);
    while sequence.len() >= 2 {
        let last = sequence[sequence.len() - 1];
        let prev = &sequence[sequence.len() - 2];
        let valley_violated = last.valley < prev.valley;
        let slope_violated = last.key() > prev.key();
        if !valley_violated && !slope_violated {
            break;
        }
        sequence.pop().expect("length checked");
        let prev = sequence.last_mut().expect("length checked");
        prev.hill = prev.hill.max(last.hill);
        prev.valley = last.valley;
        arena.link(prev.tail, last.head);
        prev.tail = last.tail;
    }
}

/// Compute the normal-form hill–valley sequence of the subtree rooted at
/// `node`, consuming the sequences of its children.
///
/// The children's sequences each have non-increasing keys `h − v` by
/// construction, so the global non-increasing order is obtained with a
/// k-way merge: a max-heap holds one cursor per child, keyed by the current
/// segment's key with ties broken by the smallest child index.  This is
/// exactly the order the previous stable sort produced (segments were
/// appended child by child, so equal keys kept ascending child index), but
/// costs `O(segments · log degree)` instead of a full re-sort.
fn combine(
    tree: &Tree,
    node: NodeId,
    own: Seg,
    mut child_sequences: Vec<Vec<Seg>>,
    arena: &mut NodeArena,
) -> Vec<Seg> {
    let mut residual = vec![0 as Size; child_sequences.len()];
    let mut total_residual: Size = 0;

    // Reusable-prefix fast path: if the *longest* child sequence's minimum
    // key dominates every other child's maximum key, all of its segments
    // form a prefix of the merge with zero offset (no other child has
    // deposited residual memory yet), so its vector is reused in place and
    // only the other children's segments are merged onto its tail.  The
    // stable order breaks key ties by ascending child index, so a
    // smaller-indexed child needs *strictly* smaller keys to merge after
    // the prefix, while a larger-indexed one may tie.  This is what keeps
    // caterpillar/comb-shaped trees — a long spine with small side subtrees
    // at every level — linear instead of copying the spine sequence once
    // per level.
    let longest = (0..child_sequences.len())
        .max_by_key(|&i| child_sequences[i].len())
        .expect("combine is called with at least two children");
    let prefix_key = child_sequences[longest].last().map(|segment| segment.key());
    let mut combined: Vec<Seg> = match prefix_key {
        Some(min_key)
            if child_sequences.iter().enumerate().all(|(i, sequence)| {
                i == longest
                    || sequence.first().is_none_or(|first| {
                        if i < longest {
                            first.key() < min_key
                        } else {
                            first.key() <= min_key
                        }
                    })
            }) =>
        {
            let sequence = std::mem::take(&mut child_sequences[longest]);
            total_residual = sequence.last().map(|s| s.valley).unwrap_or(0);
            residual[longest] = total_residual;
            sequence
        }
        _ => Vec::new(),
    };

    let mut cursors: Vec<(Vec<Seg>, usize)> = child_sequences
        .into_iter()
        .map(|sequence| (sequence, 0))
        .collect();
    let mut heap: BinaryHeap<(Size, Reverse<usize>)> = BinaryHeap::with_capacity(cursors.len());
    for (child_idx, (sequence, _)) in cursors.iter().enumerate() {
        if let Some(first) = sequence.first() {
            heap.push((first.key(), Reverse(child_idx)));
        }
    }

    while let Some((_, Reverse(child_idx))) = heap.pop() {
        let (sequence, position) = &mut cursors[child_idx];
        let segment = sequence[*position];
        *position += 1;
        if let Some(next) = sequence.get(*position) {
            heap.push((next.key(), Reverse(child_idx)));
        }
        let others = total_residual - residual[child_idx];
        let absolute = Seg {
            hill: segment.hill + others,
            valley: segment.valley + others,
            head: segment.head,
            tail: segment.tail,
        };
        total_residual = others + segment.valley;
        residual[child_idx] = segment.valley;
        push_normalized(&mut combined, absolute, arena);
    }
    debug_assert_eq!(total_residual, tree.children_file_sum(node));

    // The node itself executes last (bottom-up orientation): all child files
    // are resident, it adds its execution file and produces its output file.
    push_normalized(&mut combined, own, arena);
    combined
}

/// Compute the minimum in-core memory of `tree` and an optimal traversal
/// using Liu's exact algorithm.
///
/// ```
/// use treemem::{gadgets::harpoon, liu::liu_exact, minmem::min_mem};
/// let tree = harpoon(3, 300, 1);
/// assert_eq!(liu_exact(&tree).peak, min_mem(&tree).peak);
/// ```
pub fn liu_exact(tree: &Tree) -> LiuResult {
    let mut arena = NodeArena::with_capacity(tree.len());
    let mut sequences: Vec<Option<Vec<Seg>>> = vec![None; tree.len()];
    for &i in tree.dfs_bottomup().iter() {
        let children = tree.children(i);
        let own = {
            let entry = arena.singleton(i);
            Seg {
                hill: tree.children_file_sum(i) + tree.n(i) + tree.f(i),
                valley: tree.f(i),
                head: entry,
                tail: entry,
            }
        };
        let sequence = match children {
            // Leaf: the sequence is the node's own segment.
            [] => vec![own],
            // Single child (every node of a chain, the spine of amalgamated
            // assembly trees): the merge offsets are identically zero, so the
            // child's sequence is extended *in place* — O(1) amortised
            // instead of the O(sequence) copy a general merge costs, which
            // is what keeps chain-like trees linear overall.
            [child] => {
                let mut sequence = sequences[*child]
                    .take()
                    .expect("children processed before their parent");
                debug_assert_eq!(
                    sequence.last().map(|s| s.valley),
                    Some(tree.children_file_sum(i))
                );
                push_normalized(&mut sequence, own, &mut arena);
                sequence
            }
            _ => {
                let child_sequences: Vec<Vec<Seg>> = children
                    .iter()
                    .map(|&c| {
                        sequences[c]
                            .take()
                            .expect("children processed before their parent")
                    })
                    .collect();
                combine(tree, i, own, child_sequences, &mut arena)
            }
        };
        sequences[i] = Some(sequence);
    }
    let root_internal = sequences[tree.root()]
        .take()
        .expect("root sequence computed");
    // Flatten the arena chains exactly once: materialise the public segments
    // (with owned node vectors) and the bottom-up execution order.
    let mut root_sequence: Vec<Segment> = Vec::with_capacity(root_internal.len());
    let mut bottom_up: Vec<NodeId> = Vec::with_capacity(tree.len());
    for seg in &root_internal {
        let mut nodes = Vec::new();
        arena.collect_into(seg.head, &mut nodes);
        bottom_up.extend_from_slice(&nodes);
        root_sequence.push(Segment {
            hill: seg.hill,
            valley: seg.valley,
            nodes,
        });
    }
    let peak = root_sequence.iter().map(|s| s.hill).max().unwrap_or(0);
    debug_assert_eq!(bottom_up.len(), tree.len());
    bottom_up.reverse();
    let traversal = Traversal::new(bottom_up);
    debug_assert_eq!(
        traversal
            .peak_memory(tree)
            .expect("Liu produced an invalid traversal"),
        peak,
        "hill-valley peak must match the direct evaluation of the traversal"
    );
    LiuResult {
        traversal,
        peak,
        segments: root_sequence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_peak;
    use crate::gadgets::{harpoon, harpoon_tower};
    use crate::minmem::min_mem;
    use crate::postorder::best_postorder;
    use crate::tree::TreeBuilder;

    #[test]
    fn single_node_sequence() {
        let mut b = TreeBuilder::new();
        b.add_root(3, 4);
        let tree = b.build().unwrap();
        let result = liu_exact(&tree);
        assert_eq!(result.peak, 7);
        assert_eq!(result.segments.len(), 1);
        assert_eq!(result.segments[0].hill, 7);
        assert_eq!(result.segments[0].valley, 3);
    }

    #[test]
    fn chain_peak_is_max_mem_req() {
        let mut b = TreeBuilder::new();
        let mut prev = b.add_root(1, 0);
        for f in [5, 2, 9, 3] {
            prev = b.add_child(prev, f, 0);
        }
        let tree = b.build().unwrap();
        assert_eq!(liu_exact(&tree).peak, tree.max_mem_req());
    }

    #[test]
    fn normal_form_invariants_hold_at_the_root() {
        let tree = harpoon_tower(3, 300, 2, 2);
        let result = liu_exact(&tree);
        for pair in result.segments.windows(2) {
            assert!(
                pair[0].valley <= pair[1].valley,
                "valleys must be non-decreasing"
            );
            assert!(
                pair[0].hill - pair[0].valley >= pair[1].hill - pair[1].valley,
                "h - v must be non-increasing"
            );
        }
    }

    #[test]
    fn agrees_with_min_mem_and_brute_force() {
        let trees = [
            harpoon(2, 20, 1),
            harpoon(4, 40, 3),
            harpoon_tower(2, 16, 1, 2),
            {
                let mut b = TreeBuilder::new();
                let r = b.add_root(2, 1);
                let a = b.add_child(r, 3, 2);
                b.add_child(a, 7, 1);
                b.add_child(a, 5, 0);
                let c = b.add_child(r, 4, 0);
                let d = b.add_child(c, 6, 3);
                b.add_child(d, 2, 2);
                b.build().unwrap()
            },
        ];
        for (idx, tree) in trees.iter().enumerate() {
            let liu = liu_exact(tree);
            let mm = min_mem(tree);
            let brute = brute_force_peak(tree);
            assert_eq!(liu.peak, brute, "tree #{idx}: Liu vs brute force");
            assert_eq!(mm.peak, brute, "tree #{idx}: MinMem vs brute force");
        }
    }

    #[test]
    fn never_worse_than_the_best_postorder() {
        for branches in 2..6 {
            let tree = harpoon(branches, 120, 2);
            assert!(liu_exact(&tree).peak <= best_postorder(&tree).peak);
        }
    }

    #[test]
    fn segments_cover_every_node_exactly_once() {
        let tree = harpoon_tower(3, 30, 1, 2);
        let result = liu_exact(&tree);
        let mut seen = vec![false; tree.len()];
        for segment in &result.segments {
            for &node in &segment.nodes {
                assert!(!seen[node], "node {node} appears twice");
                seen[node] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }
}
