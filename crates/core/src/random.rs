//! Random tree generation and re-weighting.
//!
//! Two kinds of randomness are needed by the experiments:
//!
//! * random **topologies** ([`random_attachment_tree`], [`random_kary_tree`],
//!   [`caterpillar`], [`spider`]) used by the unit and property tests of the
//!   algorithms;
//! * random **weights on an existing topology** ([`reweight_uniform`],
//!   [`reweight_paper`]) — Section VI-E of the paper keeps the structure of
//!   every assembly tree and draws the node weights uniformly in
//!   `[1, N/500]` and the edge weights uniformly in `[1, N]`, where `N` is
//!   the number of nodes.
//!
//! All generators take an explicit seed so experiments are reproducible.

use prng::{Rng, StdRng};

use crate::tree::{Size, Tree, TreeBuilder};

/// Generate a random tree by *random attachment*: node `i` picks its parent
/// uniformly among the nodes `0..i`.  Input files are drawn uniformly in
/// `[1, max_file]` and execution files in `[0, max_exec]`.
///
/// # Panics
/// Panics if `num_nodes == 0` or `max_file == 0`.
pub fn random_attachment_tree(num_nodes: usize, max_file: Size, max_exec: Size, seed: u64) -> Tree {
    assert!(num_nodes > 0, "tree must have at least one node");
    assert!(max_file > 0, "maximum file size must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TreeBuilder::with_capacity(num_nodes);
    builder.add_root(
        rng.gen_range(1..=max_file),
        rng.gen_range(0..=max_exec.max(0)),
    );
    for i in 1..num_nodes {
        let parent = rng.gen_range(0..i);
        builder.add_child(
            parent,
            rng.gen_range(1..=max_file),
            rng.gen_range(0..=max_exec.max(0)),
        );
    }
    builder
        .build()
        .expect("random attachment always builds a valid tree")
}

/// Generate a random tree in which every node has at most `max_children`
/// children: node `i` retries a uniformly random parent until one with a free
/// slot is found (the root always accepts as a fallback, so the bound may be
/// exceeded by the root only when every other node is full).
pub fn random_bounded_degree_tree(
    num_nodes: usize,
    max_children: usize,
    max_file: Size,
    max_exec: Size,
    seed: u64,
) -> Tree {
    assert!(num_nodes > 0 && max_children > 0 && max_file > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TreeBuilder::with_capacity(num_nodes);
    let mut child_count = vec![0usize; num_nodes];
    builder.add_root(
        rng.gen_range(1..=max_file),
        rng.gen_range(0..=max_exec.max(0)),
    );
    for i in 1..num_nodes {
        let mut parent = rng.gen_range(0..i);
        let mut attempts = 0;
        while child_count[parent] >= max_children && attempts < 4 * i {
            parent = rng.gen_range(0..i);
            attempts += 1;
        }
        if child_count[parent] >= max_children {
            // Fall back deterministically to the first node with a free slot,
            // or to the root when all are full.
            parent = (0..i).find(|&p| child_count[p] < max_children).unwrap_or(0);
        }
        child_count[parent] += 1;
        builder.add_child(
            parent,
            rng.gen_range(1..=max_file),
            rng.gen_range(0..=max_exec.max(0)),
        );
    }
    builder
        .build()
        .expect("bounded-degree construction always builds a valid tree")
}

/// Complete `k`-ary tree of the given `depth` (depth 0 is a single node),
/// with constant weights.
pub fn random_kary_tree(
    depth: usize,
    arity: usize,
    max_file: Size,
    max_exec: Size,
    seed: u64,
) -> Tree {
    assert!(arity > 0 && max_file > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TreeBuilder::new();
    let root = builder.add_root(
        rng.gen_range(1..=max_file),
        rng.gen_range(0..=max_exec.max(0)),
    );
    let mut frontier = vec![root];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * arity);
        for &node in &frontier {
            for _ in 0..arity {
                next.push(builder.add_child(
                    node,
                    rng.gen_range(1..=max_file),
                    rng.gen_range(0..=max_exec.max(0)),
                ));
            }
        }
        frontier = next;
    }
    builder
        .build()
        .expect("k-ary construction always builds a valid tree")
}

/// A caterpillar: a spine of `spine_length` nodes, each with `legs` leaf
/// children, random weights.
pub fn caterpillar(spine_length: usize, legs: usize, max_file: Size, seed: u64) -> Tree {
    assert!(spine_length > 0 && max_file > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TreeBuilder::new();
    let mut spine = builder.add_root(rng.gen_range(1..=max_file), 0);
    for _ in 0..legs {
        builder.add_child(spine, rng.gen_range(1..=max_file), 0);
    }
    for _ in 1..spine_length {
        spine = builder.add_child(spine, rng.gen_range(1..=max_file), 0);
        for _ in 0..legs {
            builder.add_child(spine, rng.gen_range(1..=max_file), 0);
        }
    }
    builder
        .build()
        .expect("caterpillar construction always builds a valid tree")
}

/// A spider: `legs` chains of length `leg_length` attached to the root,
/// random weights.
pub fn spider(legs: usize, leg_length: usize, max_file: Size, seed: u64) -> Tree {
    assert!(legs > 0 && leg_length > 0 && max_file > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TreeBuilder::new();
    let root = builder.add_root(rng.gen_range(1..=max_file), 0);
    for _ in 0..legs {
        let mut prev = root;
        for _ in 0..leg_length {
            prev = builder.add_child(prev, rng.gen_range(1..=max_file), 0);
        }
    }
    builder
        .build()
        .expect("spider construction always builds a valid tree")
}

/// A chain of `length` nodes with input files drawn uniformly in
/// `[1, max_file]` and zero execution files — the degenerate tree shape that
/// RCM and natural orderings produce, and the canonical stress test for
/// recursion depth (its height is `length − 1`).
pub fn random_chain(length: usize, max_file: Size, seed: u64) -> Tree {
    assert!(length > 0 && max_file > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TreeBuilder::with_capacity(length);
    let mut prev = builder.add_root(rng.gen_range(1..=max_file), 0);
    for _ in 1..length {
        prev = builder.add_child(prev, rng.gen_range(1..=max_file), 0);
    }
    builder
        .build()
        .expect("chain construction always builds a valid tree")
}

/// A *comb*: a spine of `spine_length` nodes where each spine node has one
/// leaf child stored **after** the next spine node.  The natural (stored
/// child order) postorder therefore descends the whole spine first and only
/// then consumes the leaves, so the leaf files — drawn uniformly in
/// `[1, max_leaf_file]` — accumulate in memory on the way down.  Running
/// that traversal with a memory budget below its peak produces one eviction
/// deficit per spine step, which makes the comb the canonical stress test
/// for the out-of-core simulator.
pub fn comb(spine_length: usize, max_leaf_file: Size, seed: u64) -> Tree {
    assert!(spine_length > 0 && max_leaf_file > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TreeBuilder::with_capacity(2 * spine_length + 1);
    let mut spine = builder.add_root(1, 0);
    for _ in 0..spine_length {
        let next = builder.add_child(spine, 1, 0);
        builder.add_child(spine, rng.gen_range(1..=max_leaf_file), 0);
        spine = next;
    }
    builder
        .build()
        .expect("comb construction always builds a valid tree")
}

/// A synthetic nested-dissection elimination tree with exactly `num_nodes`
/// nodes: the shape a 2D nested-dissection ordering produces on a mesh,
/// without running a symbolic pipeline.  A region of `m` vertices
/// contributes a separator *chain* of `⌈√m⌉` nodes at the top of its
/// subtree, below which the two halves of the region recurse; input files
/// are proportional to the separator width (plus jitter), so the large
/// frontal matrices sit near the root exactly as in real assembly trees.
pub fn nested_dissection_etree(num_nodes: usize, seed: u64) -> Tree {
    assert!(num_nodes > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TreeBuilder::with_capacity(num_nodes);

    // Weight of a node belonging to a separator of `width` vertices.
    let mut node_file = |width: usize| -> Size {
        let base = width as Size;
        base + rng.gen_range(0..=base.max(1))
    };

    let root_width = (num_nodes as f64).sqrt().ceil() as usize;
    let root = builder.add_root(node_file(root_width), 1);

    // Explicit work stack (region size, attachment node); the halving depth
    // is logarithmic but there is no reason to recurse at all.
    let mut work: Vec<(usize, crate::tree::NodeId)> = Vec::new();
    let mut remaining = num_nodes - 1;
    // The root already consumed one separator vertex; the rest of the root
    // separator continues as a chain below it.
    let mut top = root;
    let sep_rest = root_width.saturating_sub(1).min(remaining);
    for _ in 0..sep_rest {
        top = builder.add_child(top, node_file(root_width), 1);
    }
    remaining -= sep_rest;
    let half = remaining / 2;
    work.push((remaining - half, top));
    work.push((half, top));

    while let Some((m, attach)) = work.pop() {
        if m == 0 {
            continue;
        }
        let sep = ((m as f64).sqrt().ceil() as usize).clamp(1, m);
        let mut bottom = attach;
        for _ in 0..sep {
            bottom = builder.add_child(bottom, node_file(sep), 1);
        }
        let rest = m - sep;
        let half = rest / 2;
        work.push((rest - half, bottom));
        work.push((half, bottom));
    }

    let tree = builder
        .build()
        .expect("nested-dissection construction always builds a valid tree");
    debug_assert_eq!(tree.len(), num_nodes);
    tree
}

/// Re-weight an existing topology with uniformly random weights: input files
/// in `[1, max_file]`, execution files in `[0, max_exec]`.
pub fn reweight_uniform(tree: &Tree, max_file: Size, max_exec: Size, seed: u64) -> Tree {
    assert!(max_file > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let files: Vec<Size> = tree.nodes().map(|_| rng.gen_range(1..=max_file)).collect();
    let weights: Vec<Size> = tree
        .nodes()
        .map(|_| rng.gen_range(0..=max_exec.max(0)))
        .collect();
    tree.with_weights(files, weights)
}

/// The random re-weighting of Section VI-E of the paper: keep the tree
/// structure, draw execution files uniformly in `[1, N/500]` and input files
/// uniformly in `[1, N]`, where `N` is the number of nodes (both ranges are
/// clamped to be at least `[1, 1]` for very small trees).
pub fn reweight_paper(tree: &Tree, seed: u64) -> Tree {
    let n = tree.len() as Size;
    let max_exec = (n / 500).max(1);
    let max_file = n.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let files: Vec<Size> = tree.nodes().map(|_| rng.gen_range(1..=max_file)).collect();
    let weights: Vec<Size> = tree.nodes().map(|_| rng.gen_range(1..=max_exec)).collect();
    tree.with_weights(files, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_attachment_is_reproducible_and_valid() {
        let a = random_attachment_tree(50, 100, 10, 42);
        let b = random_attachment_tree(50, 100, 10, 42);
        let c = random_attachment_tree(50, 100, 10, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
        assert!(a.files().iter().all(|&f| (1..=100).contains(&f)));
        assert!(a.weights().iter().all(|&n| (0..=10).contains(&n)));
    }

    #[test]
    fn bounded_degree_respects_the_bound() {
        let tree = random_bounded_degree_tree(200, 3, 50, 5, 7);
        assert_eq!(tree.len(), 200);
        for i in tree.nodes() {
            if i != tree.root() {
                assert!(
                    tree.children(i).len() <= 3,
                    "node {i} has too many children"
                );
            }
        }
    }

    #[test]
    fn kary_tree_has_expected_size() {
        let tree = random_kary_tree(3, 2, 10, 0, 1);
        assert_eq!(tree.len(), 1 + 2 + 4 + 8);
        assert_eq!(tree.height(), 3);
        assert_eq!(tree.max_degree(), 2);
    }

    #[test]
    fn caterpillar_and_spider_shapes() {
        let cat = caterpillar(5, 3, 10, 0);
        assert_eq!(cat.len(), 5 * 4);
        assert_eq!(cat.leaf_count(), 5 * 3); // every leg is a leaf, every spine node has children
        let sp = spider(4, 3, 10, 0);
        assert_eq!(sp.len(), 1 + 4 * 3);
        assert_eq!(sp.children(sp.root()).len(), 4);
        assert_eq!(sp.height(), 3);
    }

    #[test]
    fn random_chain_shape() {
        let tree = random_chain(500, 40, 9);
        assert_eq!(tree.len(), 500);
        assert_eq!(tree.height(), 499);
        assert_eq!(tree.leaf_count(), 1);
        assert!(tree.files().iter().all(|&f| (1..=40).contains(&f)));
        assert_eq!(tree, random_chain(500, 40, 9));
    }

    #[test]
    fn comb_stores_the_leaf_after_the_spine_child() {
        let tree = comb(50, 30, 2);
        assert_eq!(tree.len(), 101);
        // Every spine node: first child continues the spine, second is a leaf.
        let mut spine = tree.root();
        for _ in 0..50 {
            let kids = tree.children(spine);
            assert_eq!(kids.len(), 2);
            assert!(tree.is_leaf(kids[1]));
            spine = kids[0];
        }
        assert!(tree.is_leaf(spine));
    }

    #[test]
    fn nested_dissection_etree_has_exact_size_and_shallow_height() {
        for n in [1usize, 2, 10, 1000, 20_000] {
            let tree = nested_dissection_etree(n, 5);
            assert_eq!(tree.len(), n);
            assert!(tree.files().iter().all(|&f| f >= 1));
            if n >= 1000 {
                // Separator chains make the height Θ(√n), far below n.
                assert!(tree.height() < n / 4, "n={n} height={}", tree.height());
            }
        }
        assert_eq!(
            nested_dissection_etree(5000, 7),
            nested_dissection_etree(5000, 7)
        );
    }

    #[test]
    fn reweighting_keeps_the_topology() {
        let tree = random_attachment_tree(80, 100, 10, 3);
        let reweighted = reweight_paper(&tree, 11);
        assert_eq!(reweighted.parents(), tree.parents());
        let n = tree.len() as Size;
        assert!(reweighted.files().iter().all(|&f| f >= 1 && f <= n));
        assert!(reweighted
            .weights()
            .iter()
            .all(|&w| w >= 1 && w <= (n / 500).max(1)));
        // Different seeds give different weights.
        assert_ne!(reweight_paper(&tree, 11), reweight_paper(&tree, 12));
    }

    #[test]
    fn reweight_uniform_ranges() {
        let tree = spider(3, 3, 10, 0);
        let reweighted = reweight_uniform(&tree, 7, 2, 5);
        assert!(reweighted.files().iter().all(|&f| (1..=7).contains(&f)));
        assert!(reweighted.weights().iter().all(|&w| (0..=2).contains(&w)));
    }
}
